//! Offline stand-in for the parts of `proptest` this workspace uses:
//! strategies over ranges and tuples, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, `prop::collection::vec`, `BoxedStrategy`, and the
//! `proptest!` / `prop_assert!` macros. Cases are generated from a
//! deterministic RNG; failing cases are reported with their case index but
//! are **not shrunk**.

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG (xoshiro256++, deterministic per test).
// ---------------------------------------------------------------------------

/// Deterministic test RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn deterministic(seed: u64) -> TestRng {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for w in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = x ^ (x >> 31);
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy.
// ---------------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no shrinking; a
/// strategy is just a cloneable sampler.
pub trait Strategy: Clone + 'static {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone + 'static,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `depth` levels of `expand` applied over the
    /// leaf, mixing in the leaf at every level. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = expand(cur).boxed();
            // Half leaves, half recursions keeps sizes bounded.
            cur = OneOf::new(vec![(1, leaf.clone()), (1, expanded)]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        let me = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| me.sample(rng)))
    }
}

/// Type-erased cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone + 'static,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union of strategies (backing `prop_oneof!`).
pub struct OneOf<T> {
    arms: Rc<Vec<(u32, BoxedStrategy<T>)>>,
    total: u32,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        OneOf { arms: Rc::new(arms), total }
    }
}

impl<T: 'static> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in self.arms.iter() {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.end > self.start, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.end > self.start, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident : $i:tt),*) => {
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A:0, B:1);
impl_tuple_strategy!(A:0, B:1, C:2);
impl_tuple_strategy!(A:0, B:1, C:2, D:3);

pub mod collection {
    use super::*;

    /// Strategy for vectors with lengths drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.end > self.len.start {
                self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize
            } else {
                self.len.start
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Runtime configuration for `proptest!` blocks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_shrink_iters: 0, seed: 0x9E37_79B9 }
    }
}

/// Error type carried by `prop_assert!` failures.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, OneOf, ProptestConfig, Strategy, TestCaseError, TestRng};

    /// `prop::collection::vec(...)` etc.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            let __msg = format!($($fmt)*);
            return Err($crate::TestCaseError(format!(
                "{__msg}: {:?} vs {:?}", __a, __b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Test-block macro: each `fn name(arg in strategy) { body }` becomes a
/// `#[test]` that samples `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($arg:pat in $strat:expr) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $config;
                let __strategy = $strat;
                let mut __rng = $crate::TestRng::deterministic(
                    __cfg.seed ^ {
                        // Per-test stream: hash the test name.
                        let mut h = 0xcbf2_9ce4_8422_2325u64;
                        for b in stringify!($name).bytes() {
                            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                        }
                        h
                    }
                );
                for __case in 0..__cfg.cases {
                    let __input = $crate::Strategy::sample(&__strategy, &mut __rng);
                    let __result: Result<(), $crate::TestCaseError> = (|| {
                        let $arg = __input;
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!("proptest case {}/{} failed: {}", __case + 1, __cfg.cases, e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($arg:pat in $strat:expr) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($arg in $strat) $body
            )*
        }
    };
}
