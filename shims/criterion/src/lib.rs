//! Offline stand-in for the parts of `criterion` this workspace's bench
//! targets use. Each benchmark runs `sample_size` timed iterations and
//! prints min/mean wall-clock times — no warmup, outlier analysis, or
//! HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement configuration (a tiny subset of criterion's).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        report(id, &b.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b.samples);
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{param}"))
    }
}

/// Throughput annotation (accepted, not reported).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs the closure under test and records sample durations.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed shakedown iteration, then the timed samples.
        let _ = black_box(f());
        for _ in 0..default_iters() {
            let t0 = Instant::now();
            let _ = black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn default_iters() -> usize {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Opaque value sink, like `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {id:<40} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!("bench {id:<40} min {:>10.3?}  mean {:>10.3?}  ({} samples)", min, mean, samples.len());
}

/// Declares the benchmark groups; both criterion invocation forms are
/// accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}
