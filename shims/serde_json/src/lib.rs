//! Offline stand-in for the parts of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, and the `Value`/`Error`
//! types. Rendering and parsing live in the serde shim's `json` module so
//! map keys can embed JSON without a circular dependency.

pub use serde::Error;
pub use serde::Value;

use serde::{json, Deserialize, Serialize};

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::to_string(&value.serialize_value()))
}

/// Serialize a value to pretty-printed JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::to_string_pretty(&value.serialize_value()))
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize_value(&json::parse(text)?)
}

/// Parse arbitrary JSON into a [`Value`].
pub fn value_from_str(text: &str) -> Result<Value, Error> {
    json::parse(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn containers_roundtrip() {
        let mut m: HashMap<(u32, u32), u64> = HashMap::new();
        m.insert((1, 2), 10);
        m.insert((3, 4), 20);
        let s = to_string(&m).unwrap();
        let back: HashMap<(u32, u32), u64> = from_str(&s).unwrap();
        assert_eq!(back, m);

        let v: Vec<Option<i64>> = vec![Some(-5), None, Some(7)];
        let s = to_string(&v).unwrap();
        let back: Vec<Option<i64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
