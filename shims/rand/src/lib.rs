//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, API-compatible subset: `SmallRng`/`StdRng` (both xoshiro256++
//! seeded through SplitMix64), `SeedableRng::{seed_from_u64, from_seed}`,
//! and `Rng::gen_range` over half-open and inclusive integer/float ranges.
//! Streams are deterministic per seed, which is all the workspace relies
//! on; they intentionally do not match upstream `rand`'s output.

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
            sm = splitmix64(sm);
        }
        Self::from_seed(seed)
    }
}

/// One round of SplitMix64 — also used to expand seeds.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state shared by both named RNGs.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_bytes(seed: &[u8; 32]) -> Xoshiro256 {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *w = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::*;

    /// Small fast RNG (deterministic, not cryptographic).
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    /// "Standard" RNG — here the same generator under a different name.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> SmallRng {
            SmallRng(Xoshiro256::from_bytes(&seed))
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> StdRng {
            StdRng(Xoshiro256::from_bytes(&seed))
        }
    }
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Sized {
    fn sample_range(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut dyn FnMut() -> u64, lo: $t, hi: $t, inclusive: bool) -> $t {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range");
                let r = rng() as u128 % span as u128;
                (lo_w + r as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut dyn FnMut() -> u64, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(hi > lo, "cannot sample from empty range");
                let unit = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + ((hi - lo) as f64 * unit) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(0..17u64);
            assert!(v < 17);
            let w: u8 = r.gen_range(b'a'..=b'e');
            assert!((b'a'..=b'e').contains(&w));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
    }
}
