//! Offline stand-in for `serde` + `serde_derive`.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal self-consistent serialization framework under the same crate
//! name. Unlike real serde's visitor architecture, this shim serializes
//! through an owned [`Value`] tree and renders/parses JSON from it (see the
//! sibling `serde_json` shim). The derive macros generate impls of the two
//! traits below and support the `#[serde(skip)]` attribute used in this
//! workspace. The JSON wire format matches serde_json's defaults for every
//! shape the workspace uses (maps for named structs, transparent newtypes,
//! `"Variant"` / `{"Variant": ...}` enum encoding), except that non-string
//! map keys are encoded as embedded JSON strings.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned JSON-like value tree: the serialization interchange format.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map; keys are strings (non-string keys are
    /// embedded as JSON text).
    Map(Vec<(String, Value)>),
}

/// Serialization error (currently only produced on deserialize).
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field key is absent from the
    /// map. Defaults to an error; `Option<T>` overrides it to `None`,
    /// mirroring serde's tolerant handling of omitted optional fields.
    fn deserialize_missing(ty: &str, field: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{field}` while deserializing {ty}")))
    }
}

impl Value {
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::Str(ref s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Look up a key in a map value.
pub fn map_get<'v>(m: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Encode `{"Variant": value}`.
pub fn variant(tag: &str, value: Value) -> Value {
    Value::Map(vec![(tag.to_string(), value)])
}

/// Decode `{"Variant": value}` into `(tag, value)`.
pub fn as_variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Map(m) if m.len() == 1 => Some((m[0].0.as_str(), &m[0].1)),
        _ => None,
    }
}

/// Fetch element `i` of a tuple-variant payload that may be a bare value
/// (arity 1) or a sequence (arity > 1).
pub fn seq_elem(v: &Value, i: usize, arity: usize) -> Result<&Value, Error> {
    if arity == 1 {
        return Ok(v);
    }
    match v.as_seq() {
        Some(s) if s.len() == arity => Ok(&s[i]),
        _ => Err(Error::expected("tuple payload", v)),
    }
}

// ---------------------------------------------------------------------------
// Primitive / container impls.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error(format!("integer {raw} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::expected("float", v))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<f32, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("float", v))? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<String, Error> {
        Ok(v.as_str().ok_or_else(|| Error::expected("string", v))?.to_string())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<char, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Box<T>, Error> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }

    fn deserialize_missing(_ty: &str, _field: &str) -> Result<Option<T>, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident : $i:tt),*) => {
        impl<$($t: Serialize),*> Serialize for ($($t,)*) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.serialize_value()),*])
            }
        }
        impl<$($t: Deserialize),*> Deserialize for ($($t,)*) {
            fn deserialize_value(v: &Value) -> Result<($($t,)*), Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("tuple", v))?;
                if s.len() != $n {
                    return Err(Error(format!("expected tuple of {}, got {}", $n, s.len())));
                }
                Ok(($($t::deserialize_value(&s[$i])?,)*))
            }
        }
    };
}

impl_tuple!(2 => A:0, B:1);
impl_tuple!(3 => A:0, B:1, C:2);
impl_tuple!(4 => A:0, B:1, C:2, D:3);

/// Serialize a map key: string keys pass through, anything else is
/// embedded as compact JSON.
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.serialize_value() {
        Value::Str(s) => s,
        other => json::to_string(&other),
    }
}

/// Deserialize a map key produced by [`key_to_string`].
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    let direct = Value::Str(s.to_string());
    if let Ok(k) = K::deserialize_value(&direct) {
        return Ok(k);
    }
    let parsed = json::parse(s)?;
    K::deserialize_value(&parsed)
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize + Ord,
    V: Serialize,
{
    fn serialize_value(&self) -> Value {
        // Deterministic key order so serialized output is reproducible.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (key_to_string(k), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<HashMap<K, V, S>, Error> {
        let m = v.as_map().ok_or_else(|| Error::expected("map", v))?;
        let mut out = HashMap::with_capacity_and_hasher(m.len(), S::default());
        for (k, val) in m {
            out.insert(key_from_string(k)?, V::deserialize_value(val)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (key_to_string(k), v.serialize_value())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        let m = v.as_map().ok_or_else(|| Error::expected("map", v))?;
        let mut out = BTreeMap::new();
        for (k, val) in m {
            out.insert(key_from_string(k)?, V::deserialize_value(val)?);
        }
        Ok(out)
    }
}

impl<T, S> Serialize for std::collections::HashSet<T, S>
where
    T: Serialize + Ord,
{
    fn serialize_value(&self) -> Value {
        // Deterministic element order so serialized output is reproducible.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::serialize_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<std::collections::HashSet<T, S>, Error> {
        let s = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
        let mut out = std::collections::HashSet::with_capacity_and_hasher(s.len(), S::default());
        for item in s {
            out.insert(T::deserialize_value(item)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<std::collections::BTreeSet<T>, Error> {
        let s = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
        s.iter().map(T::deserialize_value).collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// JSON rendering/parsing of the value tree (used by the serde_json shim).
// ---------------------------------------------------------------------------

pub mod json {
    use super::{Error, Value};
    use std::fmt::Write;

    /// Render compact JSON.
    pub fn to_string(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, None, 0);
        out
    }

    /// Render human-readable JSON with two-space indentation.
    pub fn to_string_pretty(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, Some(2), 0);
        out
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(x) => write_f64(out, *x),
            Value::Str(s) => write_string(out, s),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_value(out, item, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth + 1);
                }
                if !entries.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * depth {
                out.push(' ');
            }
        }
    }

    fn write_f64(out: &mut String, x: f64) {
        if x.is_nan() {
            out.push_str("\"NaN\"");
        } else if x == f64::INFINITY {
            out.push_str("\"inf\"");
        } else if x == f64::NEG_INFINITY {
            out.push_str("\"-inf\"");
        } else {
            // `{}` prints the shortest decimal that round-trips exactly.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                // Keep a float marker so 1.0 doesn't re-parse as an integer
                // when the target type is an untyped `Value`.
                out.push_str(".0");
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parse a JSON document into a [`Value`].
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error(format!(
                    "expected '{}' at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                )))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'{') => self.map(),
                Some(b'[') => self.seq(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.lit("true", Value::Bool(true)),
                Some(b'f') => self.lit("false", Value::Bool(false)),
                Some(b'n') => self.lit("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(Error(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos))),
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(Error(format!("invalid literal at byte {}", self.pos)))
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut is_float = false;
            while let Some(c) = self.peek() {
                match c {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error("invalid utf8 in number".into()))?;
            if is_float {
                text.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|e| Error(format!("bad float {text}: {e}")))
            } else if text.starts_with('-') {
                text.parse::<i64>()
                    .map(Value::I64)
                    .map_err(|e| Error(format!("bad integer {text}: {e}")))
            } else {
                match text.parse::<u64>() {
                    Ok(v) => Ok(Value::U64(v)),
                    Err(_) => text
                        .parse::<f64>()
                        .map(Value::F64)
                        .map_err(|e| Error(format!("bad number {text}: {e}"))),
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let Some(c) = self.peek() else {
                    return Err(Error("unterminated string".into()));
                };
                self.pos += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(esc) = self.peek() else {
                            return Err(Error("unterminated escape".into()));
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|s| std::str::from_utf8(s).ok())
                                    .ok_or_else(|| Error("bad \\u escape".into()))?;
                                let code = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
                                self.pos += 4;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => return Err(Error(format!("bad escape \\{}", other as char))),
                        }
                    }
                    _ => {
                        // Re-decode the UTF-8 sequence starting here.
                        let start = self.pos - 1;
                        let len = utf8_len(c);
                        let end = start + len;
                        let s = self
                            .bytes
                            .get(start..end)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or_else(|| Error("invalid utf8 in string".into()))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }

        fn seq(&mut self) -> Result<Value, Error> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    other => {
                        return Err(Error(format!(
                            "expected ',' or ']' at byte {}, found {:?}",
                            self.pos,
                            other.map(|c| c as char)
                        )))
                    }
                }
            }
        }

        fn map(&mut self) -> Result<Value, Error> {
            self.eat(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                let val = self.value()?;
                entries.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    other => {
                        return Err(Error(format!(
                            "expected ',' or '}}' at byte {}, found {:?}",
                            self.pos,
                            other.map(|c| c as char)
                        )))
                    }
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip() {
            let v = Value::Map(vec![
                ("a".into(), Value::Seq(vec![Value::I64(-3), Value::U64(7), Value::F64(1.5)])),
                ("s".into(), Value::Str("he\"llo\n".into())),
                ("n".into(), Value::Null),
                ("b".into(), Value::Bool(true)),
            ]);
            let s = to_string(&v);
            assert_eq!(parse(&s).unwrap(), v);
            let p = to_string_pretty(&v);
            assert_eq!(parse(&p).unwrap(), v);
        }

        #[test]
        fn float_roundtrip_is_exact() {
            for x in [0.1, 1.0 / 3.0, 1e300, -2.5e-300, 12345.6789, 1.0] {
                let s = to_string(&Value::F64(x));
                match parse(&s).unwrap() {
                    Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{s}"),
                    other => panic!("expected float from {s}, got {other:?}"),
                }
            }
        }
    }
}
