//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the container image
//! has no `syn`/`quote`), which is feasible because the workspace only
//! derives on non-generic named structs, tuple structs, and enums whose
//! variants are unit, tuple, or struct-like. Supported field attributes:
//! `#[serde(skip)]` (omit on serialize, `Default::default()` on
//! deserialize) and `#[serde(default)]` (serialize normally,
//! `Default::default()` when the field is absent on deserialize).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Token-level parsing.
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip outer attributes, reporting which `#[serde(...)]` flags were
    /// present as `(skip, default)`.
    fn skip_attrs(&mut self) -> (bool, bool) {
        let mut skip = false;
        let mut default = false;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if let Some(TokenTree::Group(g)) = self.next() {
                        let (s, d) = serde_attr_flags(&g.stream());
                        skip |= s;
                        default |= d;
                    }
                }
                _ => return (skip, default),
            }
        }
    }

    /// Skip a `pub` / `pub(crate)` visibility prefix.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected {what}, got {other:?}"),
        }
    }

    /// Consume tokens of a type (or discriminant expression) until a
    /// top-level comma, tracking `<...>` depth. Parens/brackets/braces are
    /// single Group tokens, so only angle brackets need manual depth.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle == 0 => return,
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    _ => {}
                }
            }
            self.next();
        }
    }
}

fn serde_attr_flags(stream: &TokenStream) -> (bool, bool) {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            let mut skip = false;
            let mut default = false;
            for t in args.stream() {
                if let TokenTree::Ident(id) = &t {
                    match id.to_string().as_str() {
                        "skip" => skip = true,
                        "default" => default = true,
                        _ => {}
                    }
                }
            }
            (skip, default)
        }
        _ => (false, false),
    }
}

/// Parse the fields of a `{ ... }` group (named struct or struct variant).
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (skip, default) = c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after field `{name}`, got {other:?}"),
        }
        c.skip_until_comma();
        c.next(); // the comma, if present
        fields.push(Field { name, skip, default });
    }
    fields
}

/// Count the fields of a `( ... )` tuple group at top level.
fn parse_tuple_arity(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut arity = 0;
    while c.peek().is_some() {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        c.skip_until_comma();
        c.next();
        arity += 1;
    }
    arity
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                c.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        c.skip_until_comma();
        c.next();
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    // Generic parameters are not supported (none exist in this workspace);
    // skip them if present so the error surfaces in generated code instead.
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            let mut depth = 0;
            while let Some(t) = c.next() {
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    match kw.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: parse_tuple_arity(g.stream()) }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), serde::Serialize::serialize_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> serde::Value {{\n\
                         let mut __m: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl serde::Serialize for {name} {{\n\
                         fn serialize_value(&self) -> serde::Value {{\n\
                             serde::Serialize::serialize_value(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!(
                    "impl serde::Serialize for {name} {{\n\
                         fn serialize_value(&self) -> serde::Value {{\n\
                             serde::Value::Seq(vec![{}])\n\
                         }}\n\
                     }}",
                    items.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => serde::variant(\"{vname}\", serde::Serialize::serialize_value(__f0)),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serde::variant(\"{vname}\", serde::Value::Seq(vec![{}])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), serde::Serialize::serialize_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => serde::variant(\"{vname}\", serde::Value::Map(vec![{}])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("serde shim derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: Default::default(),\n", f.name));
                } else if f.default {
                    inits.push_str(&format!(
                        "{0}: match serde::map_get(__m, \"{0}\") {{\n\
                             Some(__v) => serde::Deserialize::deserialize_value(__v)?,\n\
                             None => Default::default(),\n\
                         }},\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: match serde::map_get(__m, \"{0}\") {{\n\
                             Some(__v) => serde::Deserialize::deserialize_value(__v)?,\n\
                             None => serde::Deserialize::deserialize_missing(\"{name}\", \"{0}\")?,\n\
                         }},\n",
                        f.name
                    ));
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &serde::Value) -> Result<{name}, serde::Error> {{\n\
                         let __m = __v.as_map().ok_or_else(|| serde::Error::expected(\"map for {name}\", __v))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                         fn deserialize_value(__v: &serde::Value) -> Result<{name}, serde::Error> {{\n\
                             Ok({name}(serde::Deserialize::deserialize_value(__v)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Deserialize::deserialize_value(serde::seq_elem(__v, {i}, {arity})?)?"))
                    .collect();
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                         fn deserialize_value(__v: &serde::Value) -> Result<{name}, serde::Error> {{\n\
                             Ok({name}({}))\n\
                         }}\n\
                     }}",
                    items.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn deserialize_value(_: &serde::Value) -> Result<{name}, serde::Error> {{ Ok({name}) }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n")),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::deserialize_value(serde::seq_elem(__payload, {i}, {arity})?)?"
                                )
                            })
                            .collect();
                        tagged_arms
                            .push_str(&format!("\"{vname}\" => return Ok({name}::{vname}({})),\n", items.join(", ")));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let missing = if f.default {
                                "Default::default()".to_string()
                            } else {
                                format!("serde::Deserialize::deserialize_missing(\"{name}::{vname}\", \"{}\")?", f.name)
                            };
                            inits.push_str(&format!(
                                "{0}: match serde::map_get(__fm, \"{0}\") {{\n\
                                     Some(__fv) => serde::Deserialize::deserialize_value(__fv)?,\n\
                                     None => {missing},\n\
                                 }},\n",
                                f.name
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __fm = __payload.as_map().ok_or_else(|| serde::Error::expected(\"map for {name}::{vname}\", __payload))?;\n\
                                 return Ok({name}::{vname} {{\n{inits}}});\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &serde::Value) -> Result<{name}, serde::Error> {{\n\
                         if let Some(__s) = __v.as_str() {{\n\
                             match __s {{\n{unit_arms}_ => {{}}\n}}\n\
                         }}\n\
                         if let Some((__tag, __payload)) = serde::as_variant(__v) {{\n\
                             match __tag {{\n{tagged_arms}_ => {{}}\n}}\n\
                         }}\n\
                         Err(serde::Error::expected(\"variant of {name}\", __v))\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("serde shim derive: generated Deserialize impl must parse")
}
