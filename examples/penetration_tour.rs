//! Penetration tour: five micro-programs, one per root-cause category of
//! the paper's §5.2, each showing (a) the vulnerable assembly the plain
//! instruction-duplication pass produces and (b) what Flowery changes.
//!
//! ```sh
//! cargo run --release --example penetration_tour
//! ```

use flowery::backend::mir::{AKind, AOp};
use flowery::backend::{compile_module, AsmRole, BackendConfig};
use flowery::ir::{InstKind, Module};
use flowery::passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};

fn protect(src: &str) -> Module {
    let mut m = flowery::lang::compile("tour", src).expect("compile");
    let plan = ProtectionPlan::full(&m);
    duplicate_module(&mut m, &plan, &DupConfig::default());
    m
}

fn count_sites(m: &Module, pred: impl Fn(&flowery::backend::AInst) -> bool) -> usize {
    let prog = compile_module(m, &BackendConfig::default());
    prog.insts.iter().filter(|i| pred(i)).count()
}

fn main() {
    let cfg = FloweryConfig::default();

    // ---- 1. Store penetration -------------------------------------------
    println!("== 1. store penetration (paper Figures 4/5) ==");
    let src = "int main() { int a = 5; int b = a * 7; output(b); return b; }";
    let m = protect(src);
    let is_store_reload = |i: &flowery::backend::AInst| {
        i.role == AsmRole::OperandReload
            && matches!(i.kind, AKind::Mov { src: AOp::Mem(_), dst: AOp::Reg(_), .. })
            && i.prov.is_some()
    };
    let before = count_sites(&m, is_store_reload);
    let mut fixed = m.clone();
    apply_flowery(&mut fixed, &cfg);
    let after = count_sites(&fixed, is_store_reload);
    println!("  unprotected reload movs feeding checked values: {before} -> {after} after eager store\n");

    // ---- 2. Branch penetration ------------------------------------------
    println!("== 2. branch penetration (paper Figures 6/7) ==");
    let src = "int main() { int x = 9; int r = 0; if (x > 4) { r = 1; } output(r); return r; }";
    let m = protect(src);
    let is_test = |i: &flowery::backend::AInst| matches!(i.kind, AKind::Test { .. });
    let tests = count_sites(&m, is_test);
    let mut fixed = m.clone();
    let stats = apply_flowery(&mut fixed, &cfg);
    println!(
        "  flag-setting `test` instructions on protected branches: {tests}; \
         Flowery wrapped {} branches with postponed direction checks\n",
        stats.checked_branches
    );

    // ---- 3. Comparison penetration --------------------------------------
    println!("== 3. comparison penetration (paper Figures 8/9) ==");
    let src = "int main() { int a = 3; int b = 9; if (a < b) { output(1); } else { output(2); } return 0; }";
    let m = protect(src);
    let surviving_before = flowery::passes::flowery::anti_cmp::surviving_compare_checkers(&m);
    let mut fixed = m.clone();
    apply_flowery(&mut fixed, &cfg);
    let surviving_after = flowery::passes::flowery::anti_cmp::surviving_compare_checkers(&fixed);
    println!(
        "  comparison checkers surviving backend folding: {surviving_before} -> {surviving_after} \
         after anti-comparison isolation\n"
    );

    // ---- 4. Call penetration --------------------------------------------
    println!("== 4. call penetration (paper Figures 10/11) ==");
    let src = "int add3(int a, int b, int c) { return a + b + c; }\n\
               int main() { return add3(1, 2, 3); }";
    let m = protect(src);
    let argmoves = count_sites(&m, |i| i.role == AsmRole::ArgMove);
    println!(
        "  unprotected argument-register moves: {argmoves} \
         (no LLVM-level fix exists; paper §6.3 last paragraph)\n"
    );

    // ---- 5. Mapping penetration -----------------------------------------
    println!("== 5. mapping penetration (paper Figure 12) ==");
    let m = protect("int id(int x) { return x; } int main() { return id(7); }");
    let prologue = count_sites(&m, |i| matches!(i.role, AsmRole::Prologue | AsmRole::Epilogue));
    println!(
        "  prologue/epilogue instructions with no IR counterpart: {prologue} \
         (push/pop/ret; unfixable at IR level)\n"
    );

    // ---- bonus: what the store penetration looks like in the listing -----
    println!("== assembly excerpt around a checker-split store ==");
    let m = protect("int main() { int a = 5; int b = a * 7; output(b); return b; }");
    let prog = compile_module(&m, &BackendConfig::default());
    let mut shown = 0;
    for (i, inst) in prog.insts.iter().enumerate() {
        let feeding_store = inst.role == AsmRole::OperandReload
            && inst
                .prov
                .map(|(f, id)| matches!(m.functions[f.index()].inst(id).kind, InstKind::Store { .. }))
                .unwrap_or(false);
        if feeding_store && shown < 2 {
            for j in i.saturating_sub(2)..(i + 2).min(prog.insts.len()) {
                let marker = if j == i {
                    "  <-- unprotected reload (store penetration)"
                } else {
                    ""
                };
                println!("  .L{j}: {}{marker}", prog.insts[j].kind);
            }
            println!();
            shown += 1;
        }
    }
}
