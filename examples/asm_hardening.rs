//! Extension experiment: assembly-level read-back hardening on top of
//! Flowery — the implementation option the paper mentions (§8) but leaves
//! unbuilt because "one rarely has a convenient backend compiler".
//! This repository has one, so here is the ladder:
//!
//!   ID  ->  ID+Flowery  ->  ID+Flowery+AsmHarden  (vs the ID-IR bound)
//!
//! ```sh
//! cargo run --release --example asm_hardening -- [trials] [bench...]
//! ```

use flowery_core::extension::{asm_hardening_study, render_hardening};
use flowery_core::ExperimentConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let names: Vec<&str> = args.iter().skip(2).map(|s| s.as_str()).collect();
    let names = if names.is_empty() {
        vec!["quicksort", "is", "needle", "patricia"]
    } else {
        names
    };

    let cfg = ExperimentConfig { trials, verbose: true, ..Default::default() };

    let rows = asm_hardening_study(&names, &cfg);
    println!("{}", render_hardening(&rows));
}
