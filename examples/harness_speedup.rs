//! Wall-clock comparison: the per-campaign baseline (each campaign runs
//! behind its own thread-pool barrier, the pre-harness architecture)
//! versus the flowery-harness engine (one work-stealing scheduler over
//! all campaigns' batches). Also cross-checks that both produce exactly
//! the same counts — the scheduler changes timing, never results.
//!
//! Run with `cargo run --release --example harness_speedup`.

use flowery::harness::{build_matrix, run_units, GoldenCache, HarnessConfig, Layer, MatrixSpec, RunOptions};
use flowery::inject::{run_asm_campaign, run_ir_campaign, CampaignConfig, OutcomeCounts};
use flowery::workloads::Scale;
use std::time::Instant;

fn main() {
    let trials = 2000u64;
    let spec = MatrixSpec {
        benches: vec!["crc32".into(), "is".into(), "quicksort".into(), "pathfinder".into()],
        scale: Scale::Tiny,
        levels: vec![1.0],
        ..Default::default()
    };
    let units = build_matrix(&spec);
    let seed = 0x51C2_3001;
    println!(
        "{} units x {} trials, {} threads\n",
        units.len(),
        trials,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // Baseline: campaigns one after another, each parallel internally.
    // Every campaign ends with a barrier — at its tail, most cores idle
    // while the last chunk finishes; goldens are recomputed per campaign.
    let mut ccfg = CampaignConfig::with_trials(trials);
    ccfg.seed = seed;
    let t0 = Instant::now();
    let mut baseline: Vec<OutcomeCounts> = Vec::new();
    for u in &units {
        baseline.push(match u.key.layer {
            Layer::Ir => run_ir_campaign(&u.module, &ccfg).counts,
            Layer::Asm => run_asm_campaign(&u.module, u.program.as_ref().unwrap(), &ccfg).counts,
        });
    }
    let base = t0.elapsed();
    println!("per-campaign baseline: {base:>8.2?}");

    // Harness: all batches of all campaigns drain under one scheduler.
    let hcfg = HarnessConfig {
        max_trials: trials,
        ci_target: None,
        seed,
        ..Default::default()
    };
    let cache = GoldenCache::new();
    let t0 = Instant::now();
    let report = run_units(&units, &hcfg, &cache, RunOptions::default());
    let engine = t0.elapsed();
    println!("harness engine:        {engine:>8.2?}");
    println!(
        "speedup: {:.2}x | golden cache: {} hits / {} lookups",
        base.as_secs_f64() / engine.as_secs_f64(),
        report.metrics.cache_hits,
        report.metrics.cache_hits + report.metrics.cache_misses,
    );

    for (u, b) in report.units.iter().zip(&baseline) {
        assert_eq!(u.counts, *b, "{}: engine and baseline disagree", u.key);
    }
    println!("\nall {} units: counts identical to the baseline", units.len());

    // Adaptive trial counts: stop each unit once the 95% Wilson CI on its
    // SDC rate is within 2 percentage points. Low-variance units (e.g.
    // fully protected programs with ~0% SDC) finish in a fraction of the
    // fixed schedule; the trials saved are pure wall-clock profit on any
    // number of cores.
    let adaptive = HarnessConfig { ci_target: Some(0.02), min_trials: 500, ..hcfg };
    let cache = GoldenCache::new();
    let t0 = Instant::now();
    let report2 = run_units(&units, &adaptive, &cache, RunOptions::default());
    let ad = t0.elapsed();
    let total: u64 = report2.units.iter().map(|u| u.trials).sum();
    println!(
        "\nadaptive (ci <= 2pp):  {ad:>8.2?}  ({total} of {} scheduled trials, {:.2}x vs fixed engine)",
        trials * units.len() as u64,
        engine.as_secs_f64() / ad.as_secs_f64(),
    );
    for u in &report2.units {
        // Units that exhaust max_trials may stay above the target — the
        // cap wins; every early stop must have met it.
        if u.stopped_early {
            assert!(u.sdc.ci95 <= 0.02, "{}: half-width {} above target", u.key, u.sdc.ci95);
        }
    }
    let early = report2.units.iter().filter(|u| u.stopped_early).count();
    println!("{early}/{} units stopped early, each with CI half-width <= 2pp", units.len());
}
