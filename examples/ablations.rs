//! Ablation sweep: switch off each backend mechanism behind the paper's
//! penetrations and watch the corresponding category respond.
//!
//! ```sh
//! cargo run --release --example ablations -- [trials] [bench ...]
//! ```

use flowery_core::ablation::{ablation_study, render_ablation};
use flowery_core::ExperimentConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(800);
    let names: Vec<&str> = args.iter().skip(2).map(|s| s.as_str()).collect();
    let cfg = ExperimentConfig { trials, verbose: true, ..Default::default() };
    let rows = ablation_study(&names, &cfg);
    println!("{}", render_ablation(&rows));
    println!(
        "reading guide: no-fold must zero cmp%; no-fuse raises branch%;\n\
         no-reg-cache / gpr-4 shift the store-penetration surface; coverage responds accordingly."
    );
}
