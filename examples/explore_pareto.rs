//! Extension experiment: the protection design space as a Pareto problem.
//!
//! The paper fixes one fault model (single-bit register) and one detector
//! budget (none) and compares ID against Flowery. This example sweeps the
//! axes the paper holds still — fault model × protection (variant, level)
//! × modeled hardware detector set — and reduces each workload to its
//! cost/coverage Pareto frontier: which configurations are worth paying
//! for once register parity or control-flow signatures are on the table?
//!
//! ```sh
//! cargo run --release --example explore_pareto -- [trials] [bench ...]
//! ```
//!
//! The frontiers print as tables and land in `BENCH_explore.json` as a
//! machine-readable record.

use flowery_faultmodel::{DetectorSpec, ModelSpec};
use flowery_harness::{explore, render_table, ExploreSpec, GoldenCache};
use flowery_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let names: Vec<String> = args.iter().skip(2).cloned().collect();
    let benches = if names.is_empty() {
        vec!["crc32".into(), "quicksort".into(), "is".into()]
    } else {
        names
    };

    let spec = ExploreSpec {
        benches,
        scale: Scale::Standard,
        models: vec![
            ModelSpec::SingleBitReg,
            ModelSpec::MultiBit(4),
            ModelSpec::FlagsPc,
            ModelSpec::ControlFlow,
        ],
        detector_sets: vec![
            vec![],
            vec![DetectorSpec::Parity],
            vec![DetectorSpec::CfSig],
            vec![DetectorSpec::Parity, DetectorSpec::CfSig],
        ],
        levels: vec![1.0],
        trials,
        ..Default::default()
    };
    eprintln!(
        "[explore_pareto] {} bench(es) x {} model(s) x {} detector set(s), {trials} trials each",
        spec.benches.len(),
        spec.models.len(),
        spec.detector_sets.len()
    );
    let report = explore(&spec, &GoldenCache::new());
    print!("{}", render_table(&report));

    let json = flowery::serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_explore.json", json + "\n").expect("write BENCH_explore.json");
    println!("wrote BENCH_explore.json");
    println!(
        "reading guide: under the single-bit model a 4%-cost parity detector\n\
         dominates bare ID (it catches the same register faults without the\n\
         duplication tax); 4-bit bursts put duplication back on the frontier\n\
         (even flip counts evade parity); control-flow faults are owned by the\n\
         7%-cost signature detector outright. No single design wins every\n\
         model — which is the point of sweeping."
    );
}
