//! The full paper study: every benchmark, every protection level, both
//! layers, all three configurations (ID-IR, ID-Assembly, Flowery), plus
//! root-cause classification and overhead — i.e. Table 1, Figures 2/3/17,
//! §7.2 and §7.3 in one run.
//!
//! ```sh
//! cargo run --release --example paper_study                 # 3000 trials (paper scale)
//! cargo run --release --example paper_study -- 500          # fewer trials
//! cargo run --release --example paper_study -- 500 out.json # also dump JSON
//! ```

use flowery_core::figures::{
    fig17, fig2, fig3, overhead, pass_time, render_fig17, render_fig2, render_fig3, render_overhead, render_pass_time,
    render_table1, table1,
};
use flowery_core::{run_study, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3000);
    let json_path = args.get(2);

    let cfg = ExperimentConfig {
        trials,
        profile_trials: (trials / 3).max(200),
        verbose: true,
        ..Default::default()
    };

    println!("=== Table 1: benchmarks (simulation scale) ===");
    let t1 = table1(&cfg);
    println!("{}", render_table1(&t1));

    eprintln!("running the full study ({trials} trials per configuration)...");
    let t0 = std::time::Instant::now();
    let study = run_study(&[], &cfg);
    eprintln!("study completed in {:.1}s", t0.elapsed().as_secs_f64());

    println!("\n=== Figure 2: ID coverage, IR vs assembly ===");
    println!("{}", render_fig2(&fig2(&study)));

    println!("\n=== Figure 3: penetration root causes (full protection) ===");
    let f3 = fig3(&study);
    println!("{}", render_fig3(&f3));
    println!("per-benchmark shares:");
    println!("{}", flowery_core::figures::render_fig3_per_bench(&f3));

    println!("\n=== Figure 17: Flowery vs ID ===");
    println!("{}", render_fig17(&fig17(&study)));

    println!("\n=== Outcome distributions (full protection) ===");
    println!("{}", flowery_core::figures::render_outcomes(&flowery_core::figures::outcomes(&study)));

    println!("\n=== §7.2: runtime overhead ===");
    println!("{}", render_overhead(&overhead(&study)));

    println!("\n=== §7.3: Flowery pass time ===");
    println!("{}", render_pass_time(&pass_time(&cfg)));

    println!(
        "headline: average cross-layer coverage gap {:.2}% (paper 31.21%); \
         average Flowery gain {:.2}%",
        study.average_gap() * 100.0,
        study.average_flowery_gain() * 100.0
    );

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&study).expect("serialize study");
        std::fs::write(path, json).expect("write JSON");
        eprintln!("wrote {path}");
    }
}
