//! Wall-clock comparison of the machine-layer execution engines: the
//! threaded-code executor (`--executor compiled`, the default) versus the
//! decode-and-dispatch interpreter (`--executor interp`), measured as
//! injection-trial throughput on all 16 workloads. Cross-checks that both
//! engines classify every trial identically — the engine switch changes
//! timing, never results.
//!
//! The numbers are written to `BENCH_exec.json` as a machine-readable
//! record. Run with `cargo run --release --example exec_speedup`.

use flowery::backend::{compile_module, BackendConfig, ExecMode};
use flowery::faultmodel::ModelSpec;
use flowery::inject::AsmTrialRunner;
use flowery::ir::interp::ExecConfig;
use flowery::workloads::{workload, Scale, NAMES};
use std::time::Instant;

const TRIALS: u64 = 250;
const REPS: usize = 3;
const SEED: u64 = 0x51C2_3001;

/// Time `TRIALS` single-bit trials under one engine; returns (seconds,
/// executed instructions, outcome fingerprint). The batch is repeated
/// [`REPS`] times and the fastest repetition is reported, which filters
/// scheduler and frequency-scaling noise out of short batches — every
/// repetition executes the identical deterministic trial stream.
fn run_engine(m: &flowery::ir::Module, prog: &flowery::backend::AsmProgram, mode: ExecMode) -> (f64, u64, u64) {
    let exec = ExecConfig { executor: mode, ..ExecConfig::default() };
    let mut runner = AsmTrialRunner::new(m, prog, &exec);
    let mut best = f64::INFINITY;
    let (mut insts, mut fp) = (0u64, 0u64);
    for _ in 0..REPS {
        insts = 0;
        fp = 0;
        let t0 = Instant::now();
        for i in 0..TRIALS {
            let t = runner.run_trial_model(SEED, i, ModelSpec::SingleBitReg, &[]);
            insts += t.exec_insts;
            // FNV-style fold of the observable trial stream.
            fp = fp
                .wrapping_mul(0x100000001b3)
                .wrapping_add(t.outcome as u64)
                .wrapping_mul(0x100000001b3)
                .wrapping_add(t.injected_inst.map_or(u64::MAX, u64::from))
                .wrapping_mul(0x100000001b3)
                .wrapping_add(t.exec_insts);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, insts, fp)
}

fn main() {
    println!("{TRIALS} single-bit trials per engine per workload (snapshots off)\n");
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>10} {:>10}",
        "bench", "interp", "compiled", "speedup", "interp", "compiled"
    );
    println!("{:<14} {:>10} {:>10} {:>9} {:>10} {:>10}", "", "secs", "secs", "", "MIPS", "MIPS");

    let mut rows = Vec::new();
    let (mut total_i, mut total_c) = (0.0f64, 0.0f64);
    let mut at_least_3x = 0usize;
    for name in NAMES {
        let m = workload(name, Scale::Standard).compile();
        let prog = compile_module(&m, &BackendConfig::default());

        let (d_i, insts_i, fp_i) = run_engine(&m, &prog, ExecMode::Interp);
        let (d_c, insts_c, fp_c) = run_engine(&m, &prog, ExecMode::Compiled);
        assert_eq!(insts_i, insts_c, "{name}: engines must execute identical instruction counts");
        assert_eq!(fp_i, fp_c, "{name}: engines must classify trials identically");

        let speedup = d_i / d_c;
        let mips_i = insts_i as f64 / d_i / 1e6;
        let mips_c = insts_c as f64 / d_c / 1e6;
        println!("{name:<14} {d_i:>9.2}s {d_c:>9.2}s {speedup:>8.2}x {mips_i:>10.1} {mips_c:>10.1}");
        rows.push(format!(
            "    {{\"bench\": \"{name}\", \"interp_secs\": {d_i:.4}, \"compiled_secs\": {d_c:.4}, \
             \"speedup\": {speedup:.3}, \"interp_mips\": {mips_i:.1}, \"compiled_mips\": {mips_c:.1}, \
             \"exec_insts\": {insts_i}}}"
        ));
        total_i += d_i;
        total_c += d_c;
        at_least_3x += usize::from(speedup >= 3.0);
    }

    let overall = total_i / total_c;
    println!(
        "\ntotal: {total_i:.2}s interp vs {total_c:.2}s compiled ({overall:.2}x); {at_least_3x}/{} workloads at >= 3x",
        NAMES.len()
    );

    let json = format!(
        "{{\n  \"trials_per_engine\": {TRIALS},\n  \"seed\": {SEED},\n  \"workloads\": [\n{}\n  ],\n  \
         \"total_interp_secs\": {total_i:.4},\n  \"total_compiled_secs\": {total_c:.4},\n  \
         \"overall_speedup\": {overall:.3},\n  \"workloads_at_3x\": {at_least_3x}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_exec.json", json).expect("write BENCH_exec.json");
    println!("wrote BENCH_exec.json");
}
