//! Extension experiment: does the cross-layer protection story survive the
//! emerging multi-bit fault model (paper §2.2 cites it and stays
//! single-bit)? Two random bits are flipped in the same destination.
//!
//! ```sh
//! cargo run --release --example multibit -- [trials] [bench ...]
//! ```

use flowery_core::extension::{multi_bit_study, render_multi_bit};
use flowery_core::ExperimentConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let names: Vec<&str> = args.iter().skip(2).map(|s| s.as_str()).collect();
    let names = if names.is_empty() {
        vec!["is", "quicksort", "needle"]
    } else {
        names
    };

    let cfg = ExperimentConfig { trials, verbose: true, ..Default::default() };
    let rows = multi_bit_study(&names, &cfg);
    println!("{}", render_multi_bit(&rows));
    println!(
        "reading guide: double-bit faults shift some SDCs into DUEs (lower raw SDC)\n\
         while Flowery's duplication checkers remain effective — the mitigation\n\
         is not specific to the single-bit model."
    );
}
