//! Quickstart: compile a MiniC program, protect it with instruction
//! duplication + Flowery, and watch a fault get caught at the assembly
//! level.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flowery::backend::{compile_module, AsmFaultSpec, BackendConfig, Machine};
use flowery::ir::interp::{decode_output, ExecConfig, ExecStatus, Interpreter};
use flowery::passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};

const PROGRAM: &str = r#"
// Dot product with a running checksum.
global int a[8] = {3, 1, 4, 1, 5, 9, 2, 6};
global int b[8] = {2, 7, 1, 8, 2, 8, 1, 8};

int main() {
    int i;
    int dot = 0;
    for (i = 0; i < 8; i = i + 1) {
        dot = dot + a[i] * b[i];
    }
    output(dot);
    return dot;
}
"#;

fn main() {
    // 1. Compile MiniC to the -O0-shaped IR.
    let mut module = flowery::lang::compile("quickstart", PROGRAM).expect("compile");
    println!("== IR ==\n{}", flowery::ir::printer::print_module(&module));

    // 2. Golden run on the IR interpreter (the paper's "LLVM level").
    let golden_ir = Interpreter::new(&module).run(&ExecConfig::default(), None);
    println!("golden IR run:  {:?}  output={:?}", golden_ir.status, decode_output(&golden_ir.output));

    // 3. Protect: full instruction duplication + the Flowery patches.
    let plan = ProtectionPlan::full(&module);
    let dup = duplicate_module(&mut module, &plan, &DupConfig::default());
    let fl = apply_flowery(&mut module, &FloweryConfig::default());
    println!("protection: {} shadows, {} checkers, flowery {fl:?}", dup.shadows, dup.checkers);

    // 4. Compile to the simulated x86-like ISA (the "assembly level").
    let program = compile_module(&module, &BackendConfig::default());
    println!(
        "machine program: {} instructions, {} static fault sites",
        program.insts.len(),
        program.static_sites
    );

    // 5. Golden run on the machine simulator — bit-identical to the IR run.
    let machine = Machine::new(&module, &program);
    let golden = machine.run(&ExecConfig::default(), None);
    assert_eq!(golden.output, golden_ir.output);
    println!(
        "golden asm run: {:?}  ({} dyn insts, {} cycles)",
        golden.status, golden.dyn_insts, golden.cycles
    );

    // 6. Inject a few single-bit faults into random dynamic instructions.
    println!("\n== fault injections ==");
    let exec = ExecConfig::with_budget_for(golden.dyn_insts);
    let mut shown = 0;
    for site in (0..golden.fault_sites).step_by((golden.fault_sites / 24).max(1) as usize) {
        let r = machine.run(&exec, Some(AsmFaultSpec::single(site, 17)));
        let verdict = match r.status {
            ExecStatus::Detected => "DETECTED by a duplication checker".to_string(),
            ExecStatus::Trapped(t) => format!("DUE ({t:?})"),
            ExecStatus::Completed(_) if r.output == golden.output => "benign".to_string(),
            ExecStatus::Completed(_) => {
                format!("SDC! output={:?}", decode_output(&r.output))
            }
        };
        println!("  fault @ dyn site {site:>5}: {verdict}");
        shown += 1;
        if shown >= 24 {
            break;
        }
    }
}
