//! Wall-clock comparison: injection campaigns with snapshot fast-forward
//! versus from-scratch execution of every trial, on workloads whose
//! golden runs are long enough that the average trial skips a large
//! prefix. Cross-checks that both modes produce exactly the same counts —
//! snapshots change timing, never results.
//!
//! Run with `cargo run --release --example snapshot_speedup`.

use flowery::backend::{compile_module, BackendConfig};
use flowery::inject::{run_asm_campaign, run_ir_campaign, CampaignConfig};
use flowery::workloads::{workload, Scale};
use std::time::Instant;

fn main() {
    let trials = 2000u64;
    let benches = ["crc32", "pathfinder", "quicksort", "fft2"];
    let mut cfg = CampaignConfig::with_trials(trials);
    cfg.seed = 0x51C2_3001;
    let mut off = cfg.clone();
    off.snapshots = false;

    println!(
        "{} trials per campaign, {} threads\n",
        trials,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>9} {:>8}",
        "bench", "layer", "scratch", "fast-fwd", "speedup", "skipped"
    );

    let (mut total_off, mut total_on) = (0.0f64, 0.0f64);
    for name in benches {
        let m = workload(name, Scale::Standard).compile();

        let t0 = Instant::now();
        let ir_off = run_ir_campaign(&m, &off);
        let d_off = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let ir_on = run_ir_campaign(&m, &cfg);
        let d_on = t0.elapsed().as_secs_f64();
        assert_eq!(ir_off.counts, ir_on.counts, "{name}: IR counts must not change");
        assert_eq!(ir_off.sdc_by_inst, ir_on.sdc_by_inst);
        let skipped = ir_on.ff_insts as f64 / (ir_on.ff_insts + ir_on.exec_insts).max(1) as f64;
        println!(
            "{:<12} {:>10} {:>11.2}s {:>11.2}s {:>8.2}x {:>7.0}%",
            name,
            "ir",
            d_off,
            d_on,
            d_off / d_on,
            skipped * 100.0
        );
        total_off += d_off;
        total_on += d_on;

        let prog = compile_module(&m, &BackendConfig::default());
        let t0 = Instant::now();
        let asm_off = run_asm_campaign(&m, &prog, &off);
        let d_off = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let asm_on = run_asm_campaign(&m, &prog, &cfg);
        let d_on = t0.elapsed().as_secs_f64();
        assert_eq!(asm_off.counts, asm_on.counts, "{name}: asm counts must not change");
        assert_eq!(asm_off.sdc_insts, asm_on.sdc_insts);
        let skipped = asm_on.ff_insts as f64 / (asm_on.ff_insts + asm_on.exec_insts).max(1) as f64;
        println!(
            "{:<12} {:>10} {:>11.2}s {:>11.2}s {:>8.2}x {:>7.0}%",
            name,
            "asm",
            d_off,
            d_on,
            d_off / d_on,
            skipped * 100.0
        );
        total_off += d_off;
        total_on += d_on;
    }

    println!(
        "\ntotal: {total_off:.2}s from scratch vs {total_on:.2}s fast-forwarded ({:.2}x)",
        total_off / total_on
    );
}
