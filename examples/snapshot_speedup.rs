//! Wall-clock comparison: injection campaigns with snapshot fast-forward
//! versus from-scratch execution of every trial, on workloads whose
//! golden runs are long enough that the average trial skips a large
//! prefix. Cross-checks that both modes produce exactly the same counts —
//! snapshots change timing, never results.
//!
//! A second section measures the v2 subsystem on the full Raw/ID/Flowery
//! matrix: cross-variant sharing (variants capture only the suffix past
//! the divergence point) and persistence (a resumed campaign loads every
//! set from the `.snaps` store instead of re-capturing). The numbers are
//! also written to `BENCH_snapshots.json` as a machine-readable record.
//!
//! Run with `cargo run --release --example snapshot_speedup`.

use flowery::backend::{compile_module, BackendConfig};
use flowery::harness::{build_matrix, run_units, GoldenCache, HarnessConfig, MatrixSpec, RunOptions, SnapshotStore};
use flowery::inject::{run_asm_campaign, run_ir_campaign, CampaignConfig};
use flowery::ir::interp::{ExecConfig, Interpreter};
use flowery::ir::Module;
use flowery::passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery::workloads::{workload, Scale};
use std::time::Instant;

fn main() {
    let trials = 2000u64;
    let benches = ["crc32", "pathfinder", "quicksort", "fft2"];
    let mut cfg = CampaignConfig::with_trials(trials);
    cfg.seed = 0x51C2_3001;
    let mut off = cfg.clone();
    off.snapshots = false;

    println!(
        "{} trials per campaign, {} threads\n",
        trials,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>9} {:>8}",
        "bench", "layer", "scratch", "fast-fwd", "speedup", "skipped"
    );

    let mut rows = Vec::new();
    let (mut total_off, mut total_on) = (0.0f64, 0.0f64);
    for name in benches {
        let m = workload(name, Scale::Standard).compile();

        let t0 = Instant::now();
        let ir_off = run_ir_campaign(&m, &off);
        let d_off = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let ir_on = run_ir_campaign(&m, &cfg);
        let d_on = t0.elapsed().as_secs_f64();
        assert_eq!(ir_off.counts, ir_on.counts, "{name}: IR counts must not change");
        assert_eq!(ir_off.sdc_by_inst, ir_on.sdc_by_inst);
        let skipped = ir_on.ff_insts as f64 / (ir_on.ff_insts + ir_on.exec_insts).max(1) as f64;
        println!(
            "{:<12} {:>10} {:>11.2}s {:>11.2}s {:>8.2}x {:>7.0}%",
            name,
            "ir",
            d_off,
            d_on,
            d_off / d_on,
            skipped * 100.0
        );
        rows.push(row(name, "ir", d_off, d_on, skipped));
        total_off += d_off;
        total_on += d_on;

        let prog = compile_module(&m, &BackendConfig::default());
        let t0 = Instant::now();
        let asm_off = run_asm_campaign(&m, &prog, &off);
        let d_off = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let asm_on = run_asm_campaign(&m, &prog, &cfg);
        let d_on = t0.elapsed().as_secs_f64();
        assert_eq!(asm_off.counts, asm_on.counts, "{name}: asm counts must not change");
        assert_eq!(asm_off.sdc_insts, asm_on.sdc_insts);
        let skipped = asm_on.ff_insts as f64 / (asm_on.ff_insts + asm_on.exec_insts).max(1) as f64;
        println!(
            "{:<12} {:>10} {:>11.2}s {:>11.2}s {:>8.2}x {:>7.0}%",
            name,
            "asm",
            d_off,
            d_on,
            d_off / d_on,
            skipped * 100.0
        );
        rows.push(row(name, "asm", d_off, d_on, skipped));
        total_off += d_off;
        total_on += d_on;
    }

    println!(
        "\ntotal: {total_off:.2}s from scratch vs {total_on:.2}s fast-forwarded ({:.2}x)",
        total_off / total_on
    );

    // ---- v2: cross-variant sharing + persistent store -----------------
    // The full matrix over the same benchmarks: Raw at both layers plus
    // ID (both layers) and Flowery (assembly) at full protection, with
    // raw twins attached so the cache can share golden prefixes.
    let spec = MatrixSpec {
        benches: benches.iter().map(|s| s.to_string()).collect(),
        ..MatrixSpec::default()
    };
    let units = build_matrix(&spec);
    let variant_units = units.iter().filter(|u| u.raw.is_some()).count();
    let hcfg = HarnessConfig {
        batch_size: 300,
        max_trials: 1200,
        min_trials: 1200,
        ci_target: None,
        seed: 0x51C2_3001,
        ..Default::default()
    };
    let mut hoff = hcfg.clone();
    hoff.snapshots = false;
    let store_dir = std::env::temp_dir().join(format!("flowery-bench-snaps-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    println!(
        "\nv2 matrix: {} units ({} variant) x {} trials",
        units.len(),
        variant_units,
        hcfg.max_trials
    );
    let t0 = Instant::now();
    let r_off = run_units(&units, &hoff, &GoldenCache::new(), RunOptions::default());
    let d_scratch = t0.elapsed().as_secs_f64();

    // Fresh campaign: raw units capture in full, variants capture only
    // their post-divergence suffix, every set lands in the store. Acquire
    // the sets up front so the capture cost is timed in isolation.
    let fresh_cache = GoldenCache::with_store(SnapshotStore::at(&store_dir));
    let d_capture = acquire_all(&units, &fresh_cache, &hcfg.exec);
    let t0 = Instant::now();
    let r_fresh = run_units(&units, &hcfg, &fresh_cache, RunOptions::default());
    let d_fresh = d_capture + t0.elapsed().as_secs_f64();
    let fresh = fresh_cache.stats();
    for (a, b) in r_off.units.iter().zip(&r_fresh.units) {
        assert_eq!(a.counts, b.counts, "{}: snapshots must not change results", a.key);
    }

    // Resume: every snapshot set (and hence every golden) loads back from
    // disk — zero capture executions. The acquisition delta is the
    // capture time a `--resume` saves.
    let resume_cache = GoldenCache::with_store(SnapshotStore::at(&store_dir));
    let d_load = acquire_all(&units, &resume_cache, &hcfg.exec);
    let resumed = resume_cache.stats();
    assert_eq!(resumed.snap_captures, 0, "resume must not re-capture: {resumed:?}");
    assert_eq!(resumed.goldens_run, 0, "resume must not re-run goldens: {resumed:?}");

    let saved = d_capture - d_load;
    println!(
        "  scratch (no snapshots): {d_scratch:.2}s, ff_ratio {:.0}%",
        r_off.metrics.ff_ratio * 100.0
    );
    println!(
        "  fresh campaign:         {d_fresh:.2}s, ff_ratio {:.0}%, {} captures ({} shared-prefix) in {d_capture:.2}s",
        r_fresh.metrics.ff_ratio * 100.0,
        fresh.snap_captures,
        fresh.snap_shared,
    );
    println!(
        "  store-backed resume:    {} sets loaded in {d_load:.2}s, capture time saved {saved:.2}s",
        resumed.snap_loads
    );

    // ---- v2: cross-variant sharing, late-phase protection --------------
    // At full protection the divergence point sits at the first protected
    // instruction, so the matrix above shares ~nothing — sharing pays off
    // when protection targets the late phase of a run (the paper's
    // selective plans when the vulnerable code executes late). Measure a
    // finalization-protected workload: variants reuse the raw set's
    // golden prefix and capture only the post-divergence suffix.
    let exec = ExecConfig::default();
    let raw = flowery::lang::compile("late", LATE_SRC).expect("late workload compiles");
    let raw_prog = compile_module(&raw, &BackendConfig::default());
    let mut id = raw.clone();
    duplicate_module(&mut id, &late_only(&raw), &DupConfig::default());
    let mut fl = id.clone();
    apply_flowery(&mut fl, &FloweryConfig::default());

    // Prime the raw sets outside the timed region so the suffix timings
    // charge only the variant captures themselves.
    let cache = GoldenCache::new();
    let _ = cache.ir_snapshots(&raw, &exec);
    let _ = cache.asm_snapshots(&raw, &raw_prog, &exec);
    let mut shared_sets = 0usize;
    let mut variant_sets = 0usize;
    let (mut d_full, mut d_suffix) = (0.0f64, 0.0f64);
    for m in [&id, &fl] {
        let p = compile_module(m, &BackendConfig::default());

        // Full captures (no twin) versus shared-suffix captures.
        let t0 = Instant::now();
        let _ = Interpreter::new(m).capture_snapshots_auto(&exec);
        d_full += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let s = cache.ir_snapshots_for(m, Some(&raw), &exec);
        d_suffix += t0.elapsed().as_secs_f64();
        variant_sets += 1;
        shared_sets += usize::from(s.shared_snaps() > 0);

        let t0 = Instant::now();
        let _ = flowery::backend::Machine::new(m, &p).capture_snapshots_auto(&exec);
        d_full += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let a = cache.asm_snapshots_for(m, &p, Some((&raw, &raw_prog)), &exec);
        d_suffix += t0.elapsed().as_secs_f64();
        variant_sets += 1;
        shared_sets += usize::from(a.shared_snaps() > 0);
    }
    let shared_rate = shared_sets as f64 / variant_sets.max(1) as f64;
    println!(
        "\nlate-phase protection ({} variant sets): {} shared-prefix ({:.0}%), full capture {:.2}s vs shared {:.2}s",
        variant_sets,
        shared_sets,
        shared_rate * 100.0,
        d_full,
        d_suffix
    );

    let json = format!(
        "{{\n  \"trials_per_campaign\": {trials},\n  \"campaigns\": [\n{}\n  ],\n  \"v2\": {{\n    \
         \"matrix_units\": {},\n    \"matrix_variant_units\": {variant_units},\n    \"trials_per_unit\": {},\n    \
         \"scratch_secs\": {d_scratch:.3},\n    \"fresh_secs\": {d_fresh:.3},\n    \
         \"capture_secs\": {d_capture:.3},\n    \"load_secs\": {d_load:.3},\n    \
         \"capture_saved_on_resume_secs\": {saved:.3},\n    \
         \"ff_ratio_without\": {:.4},\n    \"ff_ratio_with\": {:.4},\n    \
         \"snap_captures\": {},\n    \"snap_shared\": {},\n    \"snap_loads\": {},\n    \
         \"late_scenario\": {{\n      \"variant_sets\": {variant_sets},\n      \"shared_sets\": {shared_sets},\n      \
         \"shared_prefix_hit_rate\": {shared_rate:.4},\n      \"full_capture_secs\": {d_full:.3},\n      \
         \"shared_capture_secs\": {d_suffix:.3}\n    }}\n  }}\n}}\n",
        rows.join(",\n"),
        units.len(),
        hcfg.max_trials,
        r_off.metrics.ff_ratio,
        r_fresh.metrics.ff_ratio,
        fresh.snap_captures,
        fresh.snap_shared,
        resumed.snap_loads,
    );
    std::fs::write("BENCH_snapshots.json", json).expect("write BENCH_snapshots.json");
    println!("wrote BENCH_snapshots.json");
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// A checksum-style workload whose vulnerable phase (`finish`) runs after
/// a long unprotected prologue. `main` comes first so the protected tail
/// lands after it in the assembly stream and positional divergence stays
/// late at both layers.
const LATE_SRC: &str = "\
global int arr[16] = {7, 2, 9, 4, 1, 8, 3, 6, 5, 0, 11, 13, 12, 10, 15, 14};
int main() {
  int i; int s = 0;
  for (i = 0; i < 60000; i = i + 1) {
    s = s + arr[((s + i) % 16 + 16) % 16] * (i % 13 + 1);
  }
  output(s);
  s = finish(s);
  output(s);
  return s & 65535;
}
int finish(int x) {
  int j; int t = x;
  for (j = 0; j < 400; j = j + 1) {
    t = t + arr[(t % 16 + 16) % 16] * (j + 1);
    arr[((t + j) % 16 + 16) % 16] = t % 251;
  }
  return t;
}
";

/// Protect only `finish` — the paper's selective protection with the
/// budget on the late phase.
fn late_only(m: &Module) -> ProtectionPlan {
    let mut plan = ProtectionPlan::full(m);
    for (f, set) in m.functions.iter().zip(plan.per_func.iter_mut()) {
        if f.name != "finish" {
            set.clear();
        }
    }
    plan
}

/// Fetch every unit's snapshot set through the cache (captures on a fresh
/// store, loads on a populated one) and return the wall-clock cost.
fn acquire_all(units: &[flowery::harness::TrialUnit], cache: &GoldenCache, exec: &ExecConfig) -> f64 {
    let t0 = Instant::now();
    for u in units {
        match (&u.program, &u.raw_program) {
            (Some(p), rp) => {
                let raw = u.raw.as_deref().zip(rp.as_deref());
                let _ = cache.asm_snapshots_for(&u.module, p, raw, exec);
            }
            _ => {
                let _ = cache.ir_snapshots_for(&u.module, u.raw.as_deref(), exec);
            }
        }
    }
    t0.elapsed().as_secs_f64()
}

fn row(bench: &str, layer: &str, scratch: f64, fastfwd: f64, skipped: f64) -> String {
    format!(
        "    {{\"bench\": \"{bench}\", \"layer\": \"{layer}\", \"scratch_secs\": {scratch:.3}, \
         \"fastfwd_secs\": {fastfwd:.3}, \"speedup\": {:.3}, \"ff_ratio\": {skipped:.4}}}",
        scratch / fastfwd
    )
}
