//! Regenerates the pinned table in `tests/workload_goldens.rs`. Run with
//! `cargo run --release --example regen_goldens` and paste the output over
//! the `GOLDENS` entries whenever a workload or the RNG substrate changes
//! intentionally. Also cross-checks that IR and assembly outputs agree.

use flowery_backend::{compile_module, BackendConfig, Machine};
use flowery_ir::interp::{decode_output, ExecConfig, Interpreter};
use flowery_workloads::{workload, Scale, NAMES};

fn main() {
    for &scale in &[Scale::Tiny, Scale::Standard] {
        let sname = if matches!(scale, Scale::Tiny) { "Tiny" } else { "Standard" };
        for name in NAMES {
            let m = workload(name, scale).compile();
            let ir = Interpreter::new(&m).run(&ExecConfig::default(), None);
            let got = decode_output(&ir.output).join(" | ");
            let prog = compile_module(&m, &BackendConfig::default());
            let asm = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
            let asm_got = decode_output(&asm.output).join(" | ");
            assert_eq!(got, asm_got, "{name}/{sname} IR vs asm mismatch");
            println!("    (\"{name}\", \"{sname}\", \"{got}\"),");
        }
    }
}
