//! Cross-layer gap demo on one benchmark: reproduces the paper's central
//! observation for a single program — IR-level evaluation is
//! over-optimistic, the assembly level reveals the deficiency, and Flowery
//! closes most of it.
//!
//! ```sh
//! cargo run --release --example cross_layer_gap [benchmark] [trials]
//! ```

use flowery::analysis::render_breakdown;
use flowery_core::{run_bench, ExperimentConfig};
use flowery_workloads::workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("quicksort");
    let trials: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1000);

    let cfg = ExperimentConfig {
        trials,
        profile_trials: (trials / 2).max(100),
        verbose: true,
        ..Default::default()
    };

    println!("benchmark: {name}, {} trials per configuration\n", cfg.trials);
    let w = workload(name, cfg.scale);
    let r = run_bench(&w, &cfg);

    println!(
        "\nraw SDC rate: IR {:.2}%  asm {:.2}%",
        r.raw_ir_counts.sdc_rate() * 100.0,
        r.raw_asm_counts.sdc_rate() * 100.0
    );
    println!("{:<8} {:>10} {:>12} {:>12} {:>9}", "level", "ID-IR", "ID-Assembly", "Flowery", "gap");
    for l in &r.levels {
        println!(
            "{:<8} {:>9.2}% {:>11.2}% {:>11.2}% {:>8.2}%",
            format!("{:.0}%", l.level * 100.0),
            l.id_ir.percent(),
            l.id_asm.percent(),
            l.flowery_asm.percent(),
            l.id_ir.percent() - l.id_asm.percent(),
        );
    }

    let full = r.full_level();
    println!("\nroot causes of assembly-level SDCs under full ID protection:");
    println!("{}", render_breakdown(&full.rootcause));
    println!(
        "overhead: ID {:+.1}% dyn over raw; Flowery {:+.1}% dyn over ID",
        flowery::inject::relative_overhead(full.raw_dyn, full.id_dyn) * 100.0,
        flowery::inject::relative_overhead(full.id_dyn, full.flowery_dyn) * 100.0,
    );
}
