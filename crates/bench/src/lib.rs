//! # flowery-bench
//!
//! Criterion benchmark harness: one bench target per paper table/figure
//! (`table1`, `fig2_coverage`, `fig3_rootcause`, `fig17_flowery`,
//! `overhead`, `pass_time`) plus `substrate` microbenchmarks.
//!
//! Each figure bench *prints* its artifact (the same rows/series the paper
//! reports) before Criterion measures a representative unit of its
//! pipeline. By default a six-benchmark subset with reduced trials keeps
//! `cargo bench` tractable; set `FLOWERY_BENCH_FULL=1` for all 16
//! benchmarks at higher trial counts (and see
//! `examples/paper_study.rs` for the full 3,000-trial protocol).

use flowery_core::{run_study, ExperimentConfig, StudyResults};

/// The default bench subset: moderate dynamic sizes, covering all three
/// suites and both integer- and float-heavy codes.
pub const SUBSET: [&str; 6] = ["bfs", "pathfinder", "is", "quicksort", "crc32", "knn"];

/// Is the full 16-benchmark mode requested?
pub fn full_mode() -> bool {
    std::env::var("FLOWERY_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// The experiment configuration for bench-time figure generation.
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default();
    if full_mode() {
        cfg.trials = 1000;
        cfg.profile_trials = 400;
    } else {
        cfg.trials = 200;
        cfg.profile_trials = 120;
    }
    cfg
}

/// Run the study used for figure printing in benches.
pub fn bench_study() -> StudyResults {
    let cfg = bench_config();
    let names: Vec<&str> = if full_mode() { Vec::new() } else { SUBSET.to_vec() };
    run_study(&names, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_names_are_valid() {
        for n in SUBSET {
            assert!(flowery_core::workloads::NAMES.contains(&n), "{n}");
        }
    }

    #[test]
    fn bench_config_is_light_by_default() {
        if !full_mode() {
            assert!(bench_config().trials <= 200);
        }
    }
}
