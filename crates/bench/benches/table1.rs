//! Table 1: benchmark inventory + dynamic instruction counts.
//!
//! Prints the regenerated table, then measures golden-run execution time
//! per benchmark at both layers (the quantity behind the DI counts).

use criterion::{criterion_group, criterion_main, Criterion};
use flowery_backend::{compile_module, Machine};
use flowery_bench::bench_config;
use flowery_core::figures::{render_table1, table1};
use flowery_ir::interp::{ExecConfig, Interpreter};
use flowery_workloads::workload;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    println!("\n=== Table 1 (regenerated) ===");
    println!("{}", render_table1(&table1(&cfg)));

    let mut group = c.benchmark_group("table1_golden_runs");
    for name in ["is", "quicksort", "bfs"] {
        let m = workload(name, cfg.scale).compile();
        let prog = compile_module(&m, &cfg.backend);
        group.bench_function(format!("{name}/ir"), |b| {
            let interp = Interpreter::new(&m);
            b.iter(|| interp.run(&ExecConfig::default(), None))
        });
        group.bench_function(format!("{name}/asm"), |b| {
            let mach = Machine::new(&m, &prog);
            b.iter(|| mach.run(&ExecConfig::default(), None))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
