//! Figure 2: SDC coverage of instruction duplication at the IR and
//! assembly layers across protection levels.
//!
//! Prints the regenerated figure, then measures one fault-injection
//! campaign per layer (the unit of work behind every figure cell).

use criterion::{criterion_group, criterion_main, Criterion};
use flowery_backend::compile_module;
use flowery_bench::{bench_config, bench_study};
use flowery_core::figures::{fig2, render_fig2};
use flowery_inject::{run_asm_campaign, run_ir_campaign, CampaignConfig};
use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};
use flowery_workloads::workload;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 2 (regenerated) ===");
    let study = bench_study();
    println!("{}", render_fig2(&fig2(&study)));

    let cfg = bench_config();
    let mut m = workload("is", cfg.scale).compile();
    let plan = ProtectionPlan::full(&m);
    duplicate_module(&mut m, &plan, &DupConfig::default());
    let prog = compile_module(&m, &cfg.backend);
    let camp = CampaignConfig::with_trials(100);

    let mut group = c.benchmark_group("fig2_campaigns");
    group.bench_function("ir_campaign_100", |b| b.iter(|| run_ir_campaign(&m, &camp)));
    group.bench_function("asm_campaign_100", |b| b.iter(|| run_asm_campaign(&m, &prog, &camp)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
