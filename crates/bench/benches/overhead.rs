//! §7.2: runtime overhead of Flowery on top of instruction duplication
//! (dynamic instructions and modelled cycles).
//!
//! Prints the regenerated per-level overhead table, then measures the
//! golden executions whose counts feed it.

use criterion::{criterion_group, criterion_main, Criterion};
use flowery_backend::{compile_module, Machine};
use flowery_bench::{bench_config, bench_study};
use flowery_core::figures::{overhead, render_overhead};
use flowery_ir::interp::ExecConfig;
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::workload;

fn bench(c: &mut Criterion) {
    println!("\n=== §7.2 overhead (regenerated) ===");
    let study = bench_study();
    println!("{}", render_overhead(&overhead(&study)));

    let cfg = bench_config();
    let raw = workload("pathfinder", cfg.scale).compile();
    let mut id = raw.clone();
    let plan = ProtectionPlan::full(&id);
    duplicate_module(&mut id, &plan, &DupConfig::default());
    let mut fl = id.clone();
    apply_flowery(&mut fl, &FloweryConfig::default());

    let mut group = c.benchmark_group("overhead_golden");
    for (label, m) in [("raw", &raw), ("id", &id), ("flowery", &fl)] {
        let prog = compile_module(m, &cfg.backend);
        group.bench_function(label, |b| {
            let mach = Machine::new(m, &prog);
            b.iter(|| mach.run(&ExecConfig::default(), None))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
