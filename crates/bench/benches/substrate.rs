//! Substrate microbenchmarks: interpreter and machine-simulator
//! throughput, backend compilation, folding, and protection passes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flowery_backend::{compile_module, BackendConfig, Machine};
use flowery_ir::interp::{ExecConfig, Interpreter};
use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};
use flowery_workloads::{workload, Scale};

fn bench(c: &mut Criterion) {
    let m = workload("pathfinder", Scale::Standard).compile();
    let ir_golden = Interpreter::new(&m).run(&ExecConfig::default(), None);
    let prog = compile_module(&m, &BackendConfig::default());
    let asm_golden = Machine::new(&m, &prog).run(&ExecConfig::default(), None);

    let mut group = c.benchmark_group("execution_throughput");
    group.throughput(Throughput::Elements(ir_golden.dyn_insts));
    group.bench_function("interpreter_insts", |b| {
        let interp = Interpreter::new(&m);
        b.iter(|| interp.run(&ExecConfig::default(), None))
    });
    group.throughput(Throughput::Elements(asm_golden.dyn_insts));
    group.bench_function("machine_insts", |b| {
        let mach = Machine::new(&m, &prog);
        b.iter(|| mach.run(&ExecConfig::default(), None))
    });
    group.finish();

    let mut group = c.benchmark_group("compile_pipeline");
    group.bench_function("minic_frontend", |b| {
        let src = workload("pathfinder", Scale::Standard).source;
        b.iter(|| flowery_lang::compile("bench", &src).unwrap())
    });
    group.bench_function("backend_isel", |b| b.iter(|| compile_module(&m, &BackendConfig::default())));
    group.bench_function("duplication_pass", |b| {
        b.iter(|| {
            let mut mm = m.clone();
            let plan = ProtectionPlan::full(&mm);
            duplicate_module(&mut mm, &plan, &DupConfig::default())
        })
    });
    group.bench_function("compare_folding", |b| {
        let mut id = m.clone();
        let plan = ProtectionPlan::full(&id);
        duplicate_module(&mut id, &plan, &DupConfig::default());
        b.iter(|| {
            let mut mm = id.clone();
            flowery_backend::fold::fold_redundant_compares(&mut mm)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
