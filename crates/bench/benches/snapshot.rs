//! Snapshot fast-forward throughput: injection trials per second with and
//! without golden-run snapshots, at both layers. The win scales with how
//! much golden prefix the average trial can skip, so a loop-heavy
//! workload with late fault sites is the representative case.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flowery_backend::{compile_module, BackendConfig};
use flowery_inject::{AsmTrialRunner, IrTrialRunner};
use flowery_ir::interp::ExecConfig;
use flowery_workloads::{workload, Scale};

const SEED: u64 = 0x51C2_3001;

fn bench(c: &mut Criterion) {
    let m = workload("crc32", Scale::Standard).compile();
    let exec = ExecConfig::default();

    let mut group = c.benchmark_group("ir_trials");
    group.throughput(Throughput::Elements(1));
    group.bench_function("scratch", |b| {
        let mut runner = IrTrialRunner::new(&m, &exec);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            runner.run_trial(SEED, i % 3000, false)
        })
    });
    group.bench_function("fast_forward", |b| {
        let mut runner = IrTrialRunner::new(&m, &exec);
        runner.enable_snapshots();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            runner.run_trial(SEED, i % 3000, false)
        })
    });
    group.finish();

    let prog = compile_module(&m, &BackendConfig::default());
    let mut group = c.benchmark_group("asm_trials");
    group.throughput(Throughput::Elements(1));
    group.bench_function("scratch", |b| {
        let mut runner = AsmTrialRunner::new(&m, &prog, &exec);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            runner.run_trial(SEED, i % 3000, false)
        })
    });
    group.bench_function("fast_forward", |b| {
        let mut runner = AsmTrialRunner::new(&m, &prog, &exec);
        runner.enable_snapshots();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            runner.run_trial(SEED, i % 3000, false)
        })
    });
    group.finish();

    // Capture cost: what one snapshot pass over the golden run costs —
    // amortised across every trial of every campaign on that content.
    let mut group = c.benchmark_group("snapshot_capture");
    group.bench_function("ir", |b| {
        let runner = IrTrialRunner::new(&m, &exec);
        b.iter(|| runner.build_snapshots())
    });
    group.bench_function("asm", |b| {
        let runner = AsmTrialRunner::new(&m, &prog, &exec);
        b.iter(|| runner.build_snapshots())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
