//! Execution-engine benchmarks: the threaded-code executor versus the
//! decode-and-dispatch interpreter, as golden-run throughput and as full
//! injection trials (the shape the campaign harness actually runs). The
//! `exec_speedup` example publishes the same comparison across all 16
//! workloads to `BENCH_exec.json`; this bench tracks it under Criterion.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flowery_backend::{compile_module, BackendConfig, ExecMode, Machine};
use flowery_faultmodel::ModelSpec;
use flowery_inject::AsmTrialRunner;
use flowery_ir::interp::ExecConfig;
use flowery_workloads::{workload, Scale};

fn exec_with(mode: ExecMode) -> ExecConfig {
    ExecConfig { executor: mode, ..ExecConfig::default() }
}

fn bench(c: &mut Criterion) {
    let m = workload("pathfinder", Scale::Standard).compile();
    let prog = compile_module(&m, &BackendConfig::default());
    let mach = Machine::new(&m, &prog);
    let golden = mach.run(&exec_with(ExecMode::Compiled), None);

    let mut group = c.benchmark_group("engine_golden_run");
    group.throughput(Throughput::Elements(golden.dyn_insts));
    for mode in [ExecMode::Interp, ExecMode::Compiled] {
        let exec = exec_with(mode);
        group.bench_function(mode.to_string(), |b| b.iter(|| mach.run(&exec, None)));
    }
    group.finish();

    let mut group = c.benchmark_group("engine_trial");
    for mode in [ExecMode::Interp, ExecMode::Compiled] {
        let mut runner = AsmTrialRunner::new(&m, &prog, &exec_with(mode));
        let mut i = 0u64;
        group.bench_function(mode.to_string(), |b| {
            b.iter(|| {
                i += 1;
                runner.run_trial_model(0x51C2_3001, i, ModelSpec::SingleBitReg, &[])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
