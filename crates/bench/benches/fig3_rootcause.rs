//! Figure 3: penetration root-cause distribution over the deficiency
//! cases observed at full protection.
//!
//! Prints the regenerated distribution next to the paper's reference
//! numbers, then measures classification throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use flowery_analysis::classify_campaign;
use flowery_backend::compile_module;
use flowery_bench::{bench_config, bench_study};
use flowery_core::figures::{fig3, render_fig3};
use flowery_inject::{run_asm_campaign, CampaignConfig};
use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};
use flowery_workloads::workload;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 3 (regenerated) ===");
    let study = bench_study();
    println!("{}", render_fig3(&fig3(&study)));

    let cfg = bench_config();
    let mut m = workload("quicksort", cfg.scale).compile();
    let plan = ProtectionPlan::full(&m);
    duplicate_module(&mut m, &plan, &DupConfig::default());
    let prog = compile_module(&m, &cfg.backend);
    let camp = run_asm_campaign(&m, &prog, &CampaignConfig::with_trials(400));

    c.bench_function("fig3_classify_400_cases", |b| b.iter(|| classify_campaign(&m, &prog, &camp.sdc_insts)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
