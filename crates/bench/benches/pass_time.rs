//! §7.3: execution time of the Flowery transformation itself — this bench
//! *is* the experiment: Criterion measures `apply_flowery` per benchmark,
//! which the paper reports as 0.08-0.51s (linear in static instructions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowery_bench::bench_config;
use flowery_core::figures::{pass_time, render_pass_time};
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::workload;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    println!("\n=== §7.3 pass time (regenerated) ===");
    println!("{}", render_pass_time(&pass_time(&cfg)));

    let mut group = c.benchmark_group("flowery_pass");
    for name in ["quicksort", "cg", "susan"] {
        let raw = workload(name, cfg.scale).compile();
        let mut id = raw.clone();
        let plan = ProtectionPlan::full(&id);
        duplicate_module(&mut id, &plan, &DupConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(name), &id, |b, id| {
            b.iter(|| {
                let mut m = id.clone();
                apply_flowery(&mut m, &FloweryConfig::default())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
