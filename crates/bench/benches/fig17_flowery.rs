//! Figure 17: SDC coverage of Flowery vs plain instruction duplication
//! (assembly level) vs the over-optimistic IR-level estimate.
//!
//! Prints the regenerated three-way comparison, then measures the Flowery
//! protection pipeline (duplicate + patches) as the unit of work.

use criterion::{criterion_group, criterion_main, Criterion};
use flowery_bench::{bench_config, bench_study};
use flowery_core::figures::{fig17, render_fig17};
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::workload;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 17 (regenerated) ===");
    let study = bench_study();
    println!("{}", render_fig17(&fig17(&study)));

    let cfg = bench_config();
    let raw = workload("needle", cfg.scale).compile();
    c.bench_function("fig17_protect_pipeline", |b| {
        b.iter(|| {
            let mut m = raw.clone();
            let plan = ProtectionPlan::full(&m);
            duplicate_module(&mut m, &plan, &DupConfig::default());
            apply_flowery(&mut m, &FloweryConfig::default());
            m
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
