//! Append-only JSONL checkpoint log.
//!
//! Line 1 is a [`Header`] recording every parameter that shapes the trial
//! schedule; each further line is one completed [`BatchRecord`]. Because
//! every batch is a pure function of `(seed, trial indices)`, replaying
//! the log into a fresh engine reproduces the interrupted run exactly —
//! `--resume` validates the header, preloads the batches, and only
//! executes what is missing. A torn final line (process killed mid-write)
//! is detected and ignored.
//!
//! During a run the log is append-only in completion order (crash safety);
//! at a clean end it is [`compact`]ed into the **canonical form**: records
//! sorted by `(unit key, batch index)`, duplicates dropped after checking
//! they are identical, and batches beyond each unit's decided prefix
//! discarded. The canonical form is a pure function of the campaign
//! parameters, so a distributed run, a local run, and an interrupt/resume
//! split of either all produce byte-identical files.

use crate::plan::UnitKey;
use crate::progress::{BatchOutcome, UnitProgress};
use flowery_faultmodel::{DetectorSpec, ModelSpec};
use flowery_inject::OutcomeCounts;
use flowery_ir::value::{FuncId, InstId};
use flowery_regions::RegionProfile;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;

pub const MAGIC: &str = "flowery-harness-checkpoint";
pub const VERSION: u32 = 1;

/// Schedule-defining parameters; a resume must match them exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Header {
    pub magic: String,
    pub version: u32,
    pub seed: u64,
    pub batch_size: u64,
    pub max_trials: u64,
    pub min_trials: u64,
    pub ci_target: Option<f64>,
    pub double_bit: bool,
    /// Fault model the schedule's trials are sampled from. Absent in
    /// pre-model checkpoints, which were all single-bit-reg.
    #[serde(default)]
    pub fault_model: ModelSpec,
    /// Modeled hardware detectors post-classifying outcomes. Absent in
    /// older checkpoints (none were modeled).
    #[serde(default)]
    pub detectors: Vec<DetectorSpec>,
    /// Execution engine the campaign ran under — **provenance, not
    /// schedule**: engines are bit-identical, so results from different
    /// engines are interchangeable and a resume only needs the schedule to
    /// match (see [`Header::same_schedule`]). Absent in pre-engine
    /// checkpoints, which all ran the interpreter-equivalent semantics.
    #[serde(default)]
    pub exec_mode: flowery_ir::interp::ExecMode,
    /// Region partition/hash recipe version of the log's [`RegionRecord`]s
    /// — provenance, not schedule: region records annotate the batch
    /// results, they never change which trials run. 0 = pre-region log
    /// (no region records); writers stamp
    /// [`flowery_regions::REGION_SCHEMA_VERSION`].
    #[serde(default)]
    pub region_schema: u32,
    /// Static-prune recipe signature ([`crate::prior::prune_signature`])
    /// when the campaign rejection-skips proven-masked (site, bit) pairs;
    /// 0 = pruning off. **Schedule-refusing provenance**: pruned and
    /// unpruned runs produce identical tallies by construction, but a
    /// resume that silently mixed them could not be audited (per-batch
    /// `pruned` counters and table hashes would disagree), so mixed-prune
    /// resumes are refused like any schedule mismatch. Absent in
    /// pre-prune checkpoints, which never pruned.
    #[serde(default)]
    pub static_prune: u64,
}

impl Header {
    /// Schedule length per unit, in batches.
    pub fn max_batches(&self) -> u64 {
        self.max_trials.div_ceil(self.batch_size)
    }

    /// True when `other` describes the same trial schedule. This is the
    /// resume/pairing comparison: every field except the provenance-only
    /// `exec_mode` and `region_schema`, so a campaign begun under one
    /// engine (or before region records existed) can be resumed — or
    /// served to workers running — under the other (results are
    /// bit-identical by the engine contract).
    pub fn same_schedule(&self, other: &Header) -> bool {
        let a = Header {
            exec_mode: Default::default(),
            region_schema: 0,
            ..self.clone()
        };
        let b = Header {
            exec_mode: Default::default(),
            region_schema: 0,
            ..other.clone()
        };
        a == b
    }

    /// When `self` (a checkpoint's header) describes a different trial
    /// schedule than `requested`, name the first differing field and both
    /// values — never a bare "mismatch".
    pub fn describe_mismatch(&self, requested: &Header) -> Option<String> {
        fn field<T: std::fmt::Debug + PartialEq>(name: &str, ckpt: &T, req: &T) -> Option<String> {
            (ckpt != req).then(|| format!("{name}: checkpoint has {ckpt:?}, this campaign wants {req:?}"))
        }
        if self.same_schedule(requested) {
            return None;
        }
        field("seed", &self.seed, &requested.seed)
            .or_else(|| field("batch_size", &self.batch_size, &requested.batch_size))
            .or_else(|| field("max_trials", &self.max_trials, &requested.max_trials))
            .or_else(|| field("min_trials", &self.min_trials, &requested.min_trials))
            .or_else(|| field("ci_target", &self.ci_target, &requested.ci_target))
            .or_else(|| field("double_bit", &self.double_bit, &requested.double_bit))
            .or_else(|| field("fault_model", &self.fault_model, &requested.fault_model))
            .or_else(|| field("detectors", &self.detectors, &requested.detectors))
            .or_else(|| field("static_prune", &self.static_prune, &requested.static_prune))
            .or_else(|| Some("campaign parameters differ".to_string()))
    }
}

/// One completed batch of one unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    pub unit: UnitKey,
    pub batch: u64,
    pub counts: OutcomeCounts,
    /// IR layer: SDC attributions by static instruction, in this batch.
    pub sdc_by_inst: HashMap<(FuncId, InstId), u64>,
    /// Assembly layer: program indices of SDC injections, in trial order.
    pub sdc_insts: Vec<u32>,
    /// The fault model this batch's trials were sampled from; defaults to
    /// `single-bit-reg` when absent so pre-model logs keep loading, and
    /// keeps `--resume` / the dist idempotent merge from ever conflating
    /// trials from different models.
    #[serde(default)]
    pub fault_model: ModelSpec,
    /// Per-region outcome tallies for this batch, keyed by function name
    /// and sorted by it (see `flowery-regions`). Absent in pre-region
    /// logs, which load with an empty list.
    #[serde(default)]
    pub region_counts: Vec<(String, OutcomeCounts)>,
    /// Fingerprint of the static bit-verdict table the batch's trials were
    /// pruned against ([`flowery_analysis::statline::BitTable::fingerprint`]
    /// over the unit's program hash); 0 = batch ran unpruned. Provenance
    /// for the prune soundness claim: a canonical log records exactly
    /// which proofs every batch trusted.
    #[serde(default)]
    pub prune_table: u64,
    /// Trials of this batch resolved virtually (proven-masked pair →
    /// Benign without execution). Subset of `counts.benign`.
    #[serde(default)]
    pub pruned: u64,
}

/// Per-region campaign results for one unit — the versioned region
/// section of the log, written once at a clean finalize. A composed
/// checkpoint (from `flowery diff`) may carry *only* region records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionRecord {
    pub unit: UnitKey,
    /// [`flowery_regions::REGION_SCHEMA_VERSION`] the profiles were built
    /// under; records from a foreign schema are dropped on canonicalize.
    pub schema: u32,
    /// Profiles in region-name order, covering every region of the unit.
    pub regions: Vec<RegionProfile>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Record {
    Header(Header),
    Batch(BatchRecord),
    Regions(RegionRecord),
}

/// Writer half: shared by workers, flushed per line so a kill loses at
/// most the line being written.
pub struct CheckpointLog {
    file: Mutex<File>,
}

impl CheckpointLog {
    /// Start a fresh log (truncates), writing the header line.
    pub fn create(path: &Path, header: &Header) -> Result<CheckpointLog, String> {
        let file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
        let log = CheckpointLog { file: Mutex::new(file) };
        log.write(&Record::Header(header.clone()))?;
        Ok(log)
    }

    /// Reopen an existing log for appending (after [`load`]).
    ///
    /// A write interrupted mid-line leaves the file without a trailing
    /// newline; appending after it would weld the next record onto the
    /// fragment, corrupting a line [`load`] only tolerated while it was
    /// last. So the tail is repaired first: an unparseable fragment is
    /// truncated away (exactly the bytes `load` ignored), while a
    /// complete record that merely lost its newline keeps its data and
    /// gains the newline.
    pub fn append_to(path: &Path) -> Result<CheckpointLog, String> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        let mut bytes = Vec::new();
        std::io::Read::read_to_end(&mut file, &mut bytes).map_err(|e| format!("read {}: {e}", path.display()))?;
        if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
            let cut = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            let intact = std::str::from_utf8(&bytes[cut..])
                .ok()
                .is_some_and(|tail| serde_json::from_str::<Record>(tail).is_ok());
            if intact {
                writeln!(file).map_err(|e| format!("repair {}: {e}", path.display()))?;
            } else {
                file.set_len(cut as u64)
                    .map_err(|e| format!("repair {}: {e}", path.display()))?;
            }
        }
        Ok(CheckpointLog { file: Mutex::new(file) })
    }

    pub fn record_batch(&self, rec: &BatchRecord) -> Result<(), String> {
        self.write(&Record::Batch(rec.clone()))
    }

    pub fn record_regions(&self, rec: &RegionRecord) -> Result<(), String> {
        self.write(&Record::Regions(rec.clone()))
    }

    fn write(&self, rec: &Record) -> Result<(), String> {
        let line = serde_json::to_string(rec).map_err(|e| format!("checkpoint encode: {e:?}"))?;
        let mut f = self.file.lock().unwrap();
        writeln!(f, "{line}")
            .and_then(|_| f.flush())
            .map_err(|e| format!("checkpoint write: {e}"))
    }
}

/// Read a log back: the header plus every intact batch record, in file
/// order. The final line is allowed to be torn; a corrupt line anywhere
/// else is an error (the log is otherwise append-only).
pub fn load(path: &Path) -> Result<(Header, Vec<BatchRecord>), String> {
    let (header, batches, _) = load_full(path)?;
    Ok((header, batches))
}

/// [`load`], plus the region records (empty for pre-region logs).
pub fn load_full(path: &Path) -> Result<(Header, Vec<BatchRecord>, Vec<RegionRecord>), String> {
    let f = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let lines: Vec<String> = BufReader::new(f)
        .lines()
        .collect::<Result<_, _>>()
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut header = None;
    let mut batches = Vec::new();
    let mut regions = Vec::new();
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: Record = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(_) if i == last => break, // torn tail from an interrupted write
            Err(e) => return Err(format!("{}:{}: corrupt record: {e:?}", path.display(), i + 1)),
        };
        match rec {
            Record::Header(h) => {
                if h.magic != MAGIC {
                    return Err(format!("{}: not a harness checkpoint", path.display()));
                }
                if h.version != VERSION {
                    return Err(format!("{}: unsupported version {}", path.display(), h.version));
                }
                header = Some(h);
            }
            Record::Batch(b) => batches.push(b),
            Record::Regions(r) => regions.push(r),
        }
    }
    let mut header = header.ok_or_else(|| format!("{}: missing header line", path.display()))?;
    // Pre-model logs carry only the legacy `double_bit` switch; normalize
    // so they resume under the equivalent explicit model. (New writers
    // always stamp the resolved model, so this only rewrites the default.)
    if header.double_bit && header.fault_model == ModelSpec::SingleBitReg {
        header.fault_model = ModelSpec::DoubleBitReg;
        for b in &mut batches {
            if b.fault_model == ModelSpec::SingleBitReg {
                b.fault_model = ModelSpec::DoubleBitReg;
            }
        }
    }
    Ok((header, batches, regions))
}

/// Reduce `records` to the canonical set: sorted by `(unit key, batch)`,
/// duplicates dropped, batches outside the schedule dropped, and — for
/// every unit the stopping rule decides — batches beyond the decided
/// prefix discarded (they are scheduling jitter, not results). Duplicate
/// records must be identical: every batch is a pure re-run, so a mismatch
/// means corrupt data or a diverging worker and is an error.
pub fn canonicalize(header: &Header, records: Vec<BatchRecord>) -> Result<Vec<BatchRecord>, String> {
    let max_batches = header.max_batches();
    let mut by_unit: BTreeMap<UnitKey, BTreeMap<u64, BatchRecord>> = BTreeMap::new();
    for rec in records {
        if rec.batch >= max_batches {
            continue;
        }
        // A record sampled under a different fault model is foreign data
        // (e.g. logs concatenated across sweeps), never a replayable batch.
        if rec.fault_model != header.fault_model {
            continue;
        }
        // Likewise an assembly record whose prune provenance disagrees
        // with the header: outcomes would match (pruning is
        // outcome-preserving), but the canonical log must not mix audited
        // and unaudited trials. IR records never prune and carry 0 under
        // both modes.
        if rec.unit.layer == crate::plan::Layer::Asm && (rec.prune_table != 0) != (header.static_prune != 0) {
            continue;
        }
        match by_unit.entry(rec.unit.clone()).or_default().entry(rec.batch) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(rec);
            }
            std::collections::btree_map::Entry::Occupied(o) => {
                if *o.get() != rec {
                    return Err(format!("conflicting duplicate for batch {} of {}", rec.batch, rec.unit));
                }
            }
        }
    }
    let mut out = Vec::new();
    for (_, batches) in by_unit {
        let mut progress = UnitProgress::new(max_batches);
        for (&b, rec) in &batches {
            progress.insert(b, BatchOutcome::from_record(rec), header);
        }
        let keep = progress.decided().unwrap_or(u64::MAX);
        out.extend(batches.into_values().filter(|r| r.batch < keep));
    }
    Ok(out)
}

/// Reduce region records to the canonical set: one per unit, sorted by
/// unit key, duplicates dropped after checking identity, and records
/// built under a foreign region schema discarded (they describe a
/// different partition recipe, not this log's regions).
pub fn canonicalize_regions(header: &Header, records: Vec<RegionRecord>) -> Result<Vec<RegionRecord>, String> {
    let mut by_unit: BTreeMap<UnitKey, RegionRecord> = BTreeMap::new();
    for rec in records {
        if rec.schema != header.region_schema || rec.schema == 0 {
            continue;
        }
        match by_unit.entry(rec.unit.clone()) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(rec);
            }
            std::collections::btree_map::Entry::Occupied(o) => {
                if *o.get() != rec {
                    return Err(format!("conflicting region records for {}", rec.unit));
                }
            }
        }
    }
    Ok(by_unit.into_values().collect())
}

/// Write a canonical log: the header line plus `records` in the order
/// given (callers pass [`canonicalize`]d records), then the region
/// records. The file is written to a temporary sibling and renamed into
/// place, so a kill mid-write never clobbers an existing log.
pub fn write_canonical_full(
    path: &Path,
    header: &Header,
    records: &[BatchRecord],
    regions: &[RegionRecord],
) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    {
        let log = CheckpointLog::create(&tmp, header)?;
        for rec in records {
            log.record_batch(rec)?;
        }
        for rec in regions {
            log.record_regions(rec)?;
        }
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

/// [`write_canonical_full`] without region records.
pub fn write_canonical(path: &Path, header: &Header, records: &[BatchRecord]) -> Result<(), String> {
    write_canonical_full(path, header, records, &[])
}

/// Rewrite the log at `path` in canonical form (see [`canonicalize`]).
/// Called at the clean end of a campaign; the result is byte-identical
/// for any execution of the same schedule — local, resumed, or
/// distributed.
pub fn compact(path: &Path) -> Result<(), String> {
    let (header, records, regions) = load_full(path)?;
    let records = canonicalize(&header, records)?;
    let regions = canonicalize_regions(&header, regions)?;
    write_canonical_full(path, &header, &records, &regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Layer, Variant};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("flowery-ckpt-{}-{name}.jsonl", std::process::id()))
    }

    fn header() -> Header {
        Header {
            magic: MAGIC.into(),
            version: VERSION,
            seed: 42,
            batch_size: 250,
            max_trials: 1000,
            min_trials: 500,
            ci_target: Some(0.02),
            double_bit: false,
            fault_model: ModelSpec::SingleBitReg,
            detectors: Vec::new(),
            exec_mode: Default::default(),
            region_schema: 0,
            static_prune: 0,
        }
    }

    fn record(batch: u64) -> BatchRecord {
        BatchRecord {
            unit: UnitKey::new("crc32", Variant::Raw, 0.0, Layer::Asm),
            batch,
            counts: OutcomeCounts { benign: 200, sdc: 30, detected: 0, due: 20 },
            sdc_by_inst: HashMap::new(),
            sdc_insts: vec![3, 17, 17],
            fault_model: ModelSpec::SingleBitReg,
            region_counts: Vec::new(),
            prune_table: 0,
            pruned: 0,
        }
    }

    #[test]
    fn roundtrip_and_resume_load() {
        let path = tmp("roundtrip");
        let log = CheckpointLog::create(&path, &header()).unwrap();
        log.record_batch(&record(0)).unwrap();
        drop(log);
        let log = CheckpointLog::append_to(&path).unwrap();
        log.record_batch(&record(1)).unwrap();
        drop(log);
        let (h, batches) = load(&path).unwrap();
        assert_eq!(h, header());
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0], record(0));
        assert_eq!(batches[1].batch, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored_mid_file_corruption_is_not() {
        let path = tmp("torn");
        let log = CheckpointLog::create(&path, &header()).unwrap();
        log.record_batch(&record(0)).unwrap();
        drop(log);
        // Simulate a kill mid-write: a truncated final line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"Batch\":{{\"unit\"").unwrap();
        drop(f);
        let (_, batches) = load(&path).unwrap();
        assert_eq!(batches.len(), 1, "torn tail dropped, intact records kept");

        // But garbage before the end must fail loudly.
        std::fs::write(&path, "{\"Header\"garbage}\n{}\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_to_repairs_a_torn_tail_before_appending() {
        let path = tmp("torn-append");
        let log = CheckpointLog::create(&path, &header()).unwrap();
        log.record_batch(&record(0)).unwrap();
        drop(log);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"Batch\":{{\"unit\"").unwrap();
        drop(f);
        // Appending after the torn write must not weld the new record
        // onto the fragment: the fragment is truncated away and the log
        // stays fully loadable — no tolerated-torn-tail line left behind.
        let log = CheckpointLog::append_to(&path).unwrap();
        log.record_batch(&record(1)).unwrap();
        drop(log);
        let (_, batches) = load(&path).unwrap();
        assert_eq!(batches.len(), 2, "fragment dropped, both real records kept");
        assert!(std::fs::read_to_string(&path).unwrap().ends_with('\n'));

        // A complete record that only lost its newline keeps its data.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end()).unwrap();
        let log = CheckpointLog::append_to(&path).unwrap();
        log.record_batch(&record(2)).unwrap();
        drop(log);
        let (_, batches) = load(&path).unwrap();
        assert_eq!(batches.len(), 3, "unterminated final record survives the repair");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn canonicalize_sorts_dedups_and_truncates() {
        let h = header(); // batch 250, max 1000 -> 4 batches
        let unit_a = UnitKey::new("a", Variant::Raw, 0.0, Layer::Ir);
        let unit_b = UnitKey::new("b", Variant::Raw, 0.0, Layer::Asm);
        let mk = |unit: &UnitKey, batch: u64| BatchRecord {
            unit: unit.clone(),
            batch,
            counts: OutcomeCounts { benign: 250, ..Default::default() },
            sdc_by_inst: HashMap::new(),
            sdc_insts: Vec::new(),
            fault_model: ModelSpec::SingleBitReg,
            region_counts: Vec::new(),
            prune_table: 0,
            pruned: 0,
        };
        // Completion-order jumble with a duplicate and an out-of-schedule
        // batch (e.g. from a checkpoint written under a larger max_trials).
        let records = vec![mk(&unit_b, 1), mk(&unit_a, 3), mk(&unit_a, 0), mk(&unit_a, 0), mk(&unit_b, 9)];
        let canon = canonicalize(&h, records).unwrap();
        let ids: Vec<(String, u64)> = canon.iter().map(|r| (r.unit.id(), r.batch)).collect();
        assert_eq!(
            ids,
            vec![
                ("a/Raw@0/Ir".to_string(), 0),
                ("a/Raw@0/Ir".to_string(), 3),
                ("b/Raw@0/Asm".to_string(), 1)
            ]
        );

        // A conflicting duplicate is corrupt data, not jitter.
        let mut bad = mk(&unit_a, 0);
        bad.counts.sdc = 99;
        assert!(canonicalize(&h, vec![mk(&unit_a, 0), bad])
            .unwrap_err()
            .contains("conflicting duplicate"));
    }

    #[test]
    fn canonicalize_truncates_beyond_decided_prefix() {
        // With a loose CI target, batch 0+1 decide the unit; a batch-3
        // record (in-flight when the unit decided) must be dropped.
        let mut h = header();
        h.ci_target = Some(0.2);
        h.min_trials = 250;
        let unit = UnitKey::new("a", Variant::Raw, 0.0, Layer::Ir);
        let quiet = |batch: u64| BatchRecord {
            unit: unit.clone(),
            batch,
            counts: OutcomeCounts { benign: 250, ..Default::default() },
            sdc_by_inst: HashMap::new(),
            sdc_insts: Vec::new(),
            fault_model: ModelSpec::SingleBitReg,
            region_counts: Vec::new(),
            prune_table: 0,
            pruned: 0,
        };
        let canon = canonicalize(&h, vec![quiet(0), quiet(3)]).unwrap();
        assert_eq!(canon.iter().map(|r| r.batch).collect::<Vec<_>>(), vec![0]);
        // An undecided unit keeps everything: resume still needs it.
        let canon = canonicalize(&header(), vec![quiet(3), quiet(1)]).unwrap();
        assert_eq!(canon.iter().map(|r| r.batch).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn compact_is_idempotent_and_order_insensitive() {
        let a = tmp("compact-a");
        let b = tmp("compact-b");
        for (path, order) in [(&a, [0u64, 1]), (&b, [1u64, 0])] {
            let log = CheckpointLog::create(path, &header()).unwrap();
            for &batch in &order {
                log.record_batch(&record(batch)).unwrap();
            }
            drop(log);
            compact(path).unwrap();
        }
        let bytes_a = std::fs::read(&a).unwrap();
        assert_eq!(bytes_a, std::fs::read(&b).unwrap(), "canonical form is order-insensitive");
        compact(&a).unwrap();
        assert_eq!(bytes_a, std::fs::read(&a).unwrap(), "compact is idempotent");
        let (h, records) = load(&a).unwrap();
        assert_eq!(h, header());
        assert_eq!(records.len(), 2, "records survive compaction");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn pre_model_records_default_to_single_bit_reg() {
        // A checkpoint line written before the fault-model field existed
        // must load as single-bit-reg with no detectors. Reconstruct the
        // legacy encoding by writing today's log and stripping the fields.
        let path = tmp("legacy");
        let log = CheckpointLog::create(&path, &header()).unwrap();
        log.record_batch(&record(0)).unwrap();
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("fault_model"), "new logs carry the field");
        let legacy: String = text
            .replace(",\"fault_model\":\"single-bit-reg\"", "")
            .replace(",\"detectors\":[]", "");
        assert!(!legacy.contains("fault_model"));
        std::fs::write(&path, legacy).unwrap();
        let (h, batches) = load(&path).unwrap();
        assert_eq!(h.fault_model, ModelSpec::SingleBitReg);
        assert!(h.detectors.is_empty());
        assert_eq!(h, header(), "legacy header equals today's default-model header");
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].fault_model, ModelSpec::SingleBitReg);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn canonicalize_never_conflates_models() {
        // Records sampled under a different model are foreign data: they
        // are dropped, not merged into this schedule's tally.
        let h = header();
        let mut foreign = record(0);
        foreign.fault_model = ModelSpec::FlagsPc;
        let canon = canonicalize(&h, vec![record(0), foreign.clone()]).unwrap();
        assert_eq!(canon.len(), 1);
        assert_eq!(canon[0].fault_model, ModelSpec::SingleBitReg);
        // Even alone, a foreign-model record contributes nothing.
        let canon = canonicalize(&h, vec![foreign]).unwrap();
        assert!(canon.is_empty());
        // And headers for different models are unequal, so a resume under
        // a different model refuses the file outright.
        let mut h2 = header();
        h2.fault_model = ModelSpec::FlagsPc;
        assert_ne!(h, h2);
    }

    #[test]
    fn exec_mode_is_provenance_not_schedule() {
        use flowery_ir::interp::ExecMode;
        // Headers that differ only in engine still describe the same
        // schedule — mixed-executor resumes and worker fleets are allowed —
        // while any schedule-shaping difference still refuses.
        let mut interp = header();
        interp.exec_mode = ExecMode::Interp;
        let compiled = Header { exec_mode: ExecMode::Compiled, ..interp.clone() };
        assert_ne!(interp, compiled);
        assert!(interp.same_schedule(&compiled));
        let mut other_seed = compiled.clone();
        other_seed.seed += 1;
        assert!(!interp.same_schedule(&other_seed));

        // Pre-engine checkpoint lines (no exec_mode field) load with the
        // default and keep pairing with either engine.
        let path = tmp("pre-engine");
        CheckpointLog::create(&path, &header()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("exec_mode"), "new logs carry the engine");
        let legacy = text.replace(",\"exec_mode\":\"compiled\"", "");
        assert!(!legacy.contains("exec_mode"));
        std::fs::write(&path, legacy).unwrap();
        let (h, _) = load(&path).unwrap();
        assert_eq!(h.exec_mode, ExecMode::default());
        assert!(h.same_schedule(&interp));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn region_schema_is_provenance_not_schedule() {
        // A pre-region checkpoint (region_schema 0) must resume under a
        // region-stamping campaign: the schema annotates results, it never
        // changes the schedule.
        let pre = header();
        let stamped = Header {
            region_schema: flowery_regions::REGION_SCHEMA_VERSION,
            ..pre.clone()
        };
        assert_ne!(pre, stamped);
        assert!(pre.same_schedule(&stamped));
        assert!(pre.describe_mismatch(&stamped).is_none());
        // A genuine schedule change names the field and both values.
        let mut other = stamped.clone();
        other.max_trials += 500;
        let msg = pre.describe_mismatch(&other).unwrap();
        assert!(msg.contains("max_trials"), "{msg}");
        assert!(msg.contains("1000") && msg.contains("1500"), "{msg}");
    }

    #[test]
    fn region_records_roundtrip_and_canonicalize() {
        let schema = flowery_regions::REGION_SCHEMA_VERSION;
        let h = Header { region_schema: schema, ..header() };
        let unit = UnitKey::new("a", Variant::Raw, 0.0, Layer::Ir);
        let profile = flowery_regions::RegionProfile {
            name: "main".into(),
            hash: 7,
            site_mass: 100,
            trials: 10,
            counts: OutcomeCounts { benign: 8, sdc: 2, detected: 0, due: 0 },
            sdc_by_inst: HashMap::new(),
            sdc_insts: Vec::new(),
        };
        let rec = RegionRecord { unit: unit.clone(), schema, regions: vec![profile] };
        let path = tmp("regions");
        let log = CheckpointLog::create(&path, &h).unwrap();
        log.record_batch(&record(0)).unwrap();
        log.record_regions(&rec).unwrap();
        drop(log);
        let (h2, batches, regions) = load_full(&path).unwrap();
        assert_eq!(h2, h);
        assert_eq!(batches.len(), 1);
        assert_eq!(regions, vec![rec.clone()]);
        // Compaction keeps the canonical region set; duplicates dedup,
        // foreign-schema records drop, conflicts error.
        compact(&path).unwrap();
        let (_, _, regions) = load_full(&path).unwrap();
        assert_eq!(regions, vec![rec.clone()]);
        let foreign = RegionRecord { schema: schema + 1, ..rec.clone() };
        let canon = canonicalize_regions(&h, vec![rec.clone(), rec.clone(), foreign]).unwrap();
        assert_eq!(canon, vec![rec.clone()]);
        let mut conflict = rec.clone();
        conflict.regions[0].trials += 1;
        assert!(canonicalize_regions(&h, vec![rec, conflict])
            .unwrap_err()
            .contains("conflicting region records"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = tmp("magic");
        let mut h = header();
        h.magic = "something-else".into();
        CheckpointLog::create(&path, &h).unwrap();
        assert!(load(&path).unwrap_err().contains("not a harness checkpoint"));
        std::fs::remove_file(&path).ok();
    }
}
