//! Batch-level unit progress and the deterministic stopping rule.
//!
//! Shared by the in-process engine ([`crate::engine`]) and the distributed
//! coordinator (`flowery-dist`): both fold completed batches into a
//! [`UnitProgress`] and let the same prefix rule decide when a unit is
//! done, so a campaign sharded across machines stops at exactly the same
//! point as a single-process run. The rule is evaluated at each prefix
//! boundary in batch-index order, which makes the decision a pure function
//! of batch contents — never of completion order, thread count, or which
//! worker executed what.

use crate::checkpoint::{BatchRecord, Header};
use crate::plan::UnitKey;
use flowery_faultmodel::ModelSpec;
use flowery_inject::stats::wilson_half_width;
use flowery_inject::OutcomeCounts;
use flowery_ir::value::{FuncId, InstId};
use std::collections::HashMap;

/// Everything one executed batch contributes to its unit's tally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    pub counts: OutcomeCounts,
    /// IR layer: SDC attributions by static instruction.
    pub sdc_by_inst: HashMap<(FuncId, InstId), u64>,
    /// Assembly layer: program indices of SDC injections, in trial order.
    pub sdc_insts: Vec<u32>,
    /// Per-region outcome tallies, keyed by region (function) name and
    /// sorted by it — see `flowery-regions`.
    pub region_counts: Vec<(String, OutcomeCounts)>,
    /// Golden-prefix instructions skipped by snapshot fast-forward.
    /// Metrics-only: not checkpointed (replayed batches report 0).
    pub ff_insts: u64,
    /// Instructions actually executed.
    pub exec_insts: u64,
    /// Trials resolved virtually by the static prune (proven-masked
    /// (site, bit) pair → Benign without execution). Checkpointed: the
    /// saved work is part of the run's provenance, not a transient metric.
    pub pruned: u64,
    /// Fingerprint of the bit-verdict table the batch was pruned against;
    /// 0 when the unit ran unpruned.
    pub prune_table: u64,
}

impl BatchOutcome {
    /// The checkpoint record for this batch (drops the metrics-only
    /// instruction counters, which are not part of the result). The fault
    /// model is stamped on the record so logs never conflate trials
    /// sampled from different models.
    pub fn to_record(&self, unit: UnitKey, batch: u64, fault_model: ModelSpec) -> BatchRecord {
        BatchRecord {
            unit,
            batch,
            counts: self.counts,
            sdc_by_inst: self.sdc_by_inst.clone(),
            sdc_insts: self.sdc_insts.clone(),
            fault_model,
            region_counts: self.region_counts.clone(),
            prune_table: self.prune_table,
            pruned: self.pruned,
        }
    }

    /// Rebuild the outcome of a checkpointed batch (instruction counters
    /// come back as 0: the work happened in an earlier run).
    pub fn from_record(rec: &BatchRecord) -> BatchOutcome {
        BatchOutcome {
            counts: rec.counts,
            sdc_by_inst: rec.sdc_by_inst.clone(),
            sdc_insts: rec.sdc_insts.clone(),
            region_counts: rec.region_counts.clone(),
            ff_insts: 0,
            exec_insts: 0,
            pruned: rec.pruned,
            prune_table: rec.prune_table,
        }
    }
}

/// Fold one sorted name→counts list into another, keeping the result
/// sorted by name. Used everywhere per-region tallies accumulate.
pub fn merge_region_counts(into: &mut Vec<(String, OutcomeCounts)>, from: &[(String, OutcomeCounts)]) {
    for (name, counts) in from {
        match into.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => into[i].1.merge(counts),
            Err(i) => into.insert(i, (name.clone(), *counts)),
        }
    }
}

/// Completed batches of one unit plus the adaptive stopping decision.
pub struct UnitProgress {
    batches: Vec<Option<BatchOutcome>>,
    /// Contiguous completed batches from index 0.
    prefix: u64,
    /// Cumulative counts over the prefix (drives the stopping rule).
    cum: OutcomeCounts,
    /// Number of batches in the final result, once decided.
    decided: Option<u64>,
}

impl UnitProgress {
    pub fn new(max_batches: u64) -> UnitProgress {
        UnitProgress {
            batches: vec![None; max_batches as usize],
            prefix: 0,
            cum: OutcomeCounts::default(),
            decided: None,
        }
    }

    /// Store a finished batch and advance the stopping rule. Returns true
    /// when this insertion decided the unit. Inserting a batch that is
    /// already present is a no-op (idempotent merge: re-executed batches
    /// are pure re-runs and carry identical contents).
    pub fn insert(&mut self, batch: u64, data: BatchOutcome, rule: &Header) -> bool {
        let slot = &mut self.batches[batch as usize];
        if slot.is_none() {
            *slot = Some(data);
        }
        let was_decided = self.decided.is_some();
        while (self.prefix as usize) < self.batches.len() {
            let Some(done) = &self.batches[self.prefix as usize] else {
                break;
            };
            self.cum.merge(&done.counts);
            self.prefix += 1;
            if self.decided.is_none() {
                let trials = (self.prefix * rule.batch_size).min(rule.max_trials);
                let full = self.prefix as usize == self.batches.len();
                let hit = rule
                    .ci_target
                    .is_some_and(|t| trials >= rule.min_trials && wilson_half_width(self.cum.sdc, trials) <= t);
                if full || hit {
                    self.decided = Some(self.prefix);
                }
            }
        }
        !was_decided && self.decided.is_some()
    }

    /// The decided batch count, once the stopping rule has fired.
    pub fn decided(&self) -> Option<u64> {
        self.decided
    }

    /// Whether batch `b` has been recorded.
    pub fn has_batch(&self, b: u64) -> bool {
        self.batches.get(b as usize).is_some_and(|s| s.is_some())
    }

    /// The recorded outcome of batch `b`, if any.
    pub fn batch(&self, b: u64) -> Option<&BatchOutcome> {
        self.batches.get(b as usize).and_then(|s| s.as_ref())
    }

    /// Schedule length in batches.
    pub fn max_batches(&self) -> u64 {
        self.batches.len() as u64
    }

    /// Batches recorded so far (not necessarily contiguous).
    pub fn recorded(&self) -> u64 {
        self.batches.iter().filter(|s| s.is_some()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{MAGIC, VERSION};
    use crate::plan::{Layer, Variant};

    fn rule(batch_size: u64, max_trials: u64, min_trials: u64, ci_target: Option<f64>) -> Header {
        Header {
            magic: MAGIC.into(),
            version: VERSION,
            seed: 1,
            batch_size,
            max_trials,
            min_trials,
            ci_target,
            double_bit: false,
            fault_model: ModelSpec::SingleBitReg,
            detectors: Vec::new(),
            exec_mode: Default::default(),
            region_schema: 0,
            static_prune: 0,
        }
    }

    fn quiet(n: u64) -> BatchOutcome {
        BatchOutcome {
            counts: OutcomeCounts { benign: n, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let r = rule(10, 40, 10, None);
        let mut p = UnitProgress::new(4);
        assert!(!p.insert(0, quiet(10), &r));
        assert!(!p.insert(0, quiet(10), &r), "re-inserting must not re-count");
        assert_eq!(p.recorded(), 1);
        assert!(!p.insert(1, quiet(10), &r));
        assert!(!p.insert(2, quiet(10), &r));
        assert!(p.insert(3, quiet(10), &r));
        assert_eq!(p.decided(), Some(4));
    }

    #[test]
    fn record_roundtrip_drops_instruction_counters() {
        let out = BatchOutcome {
            counts: OutcomeCounts { benign: 9, sdc: 1, ..Default::default() },
            sdc_insts: vec![4, 4, 9],
            ff_insts: 1000,
            exec_insts: 500,
            pruned: 3,
            prune_table: 0xfeed,
            ..Default::default()
        };
        let key = UnitKey::new("b", Variant::Raw, 0.0, Layer::Asm);
        let rec = out.to_record(key.clone(), 7, ModelSpec::MemCell);
        assert_eq!(rec.unit, key);
        assert_eq!(rec.batch, 7);
        assert_eq!(rec.fault_model, ModelSpec::MemCell);
        let back = BatchOutcome::from_record(&rec);
        assert_eq!(back.counts, out.counts);
        assert_eq!(back.sdc_insts, out.sdc_insts);
        assert_eq!(back.ff_insts, 0, "metrics counters are not checkpointed");
        assert_eq!(back.pruned, 3, "prune provenance survives the roundtrip");
        assert_eq!(back.prune_table, 0xfeed);
    }

    #[test]
    fn merge_region_counts_keeps_sorted_order() {
        let mut acc = vec![("b".to_string(), OutcomeCounts { sdc: 1, ..Default::default() })];
        merge_region_counts(
            &mut acc,
            &[
                ("a".to_string(), OutcomeCounts { benign: 2, ..Default::default() }),
                ("b".to_string(), OutcomeCounts { sdc: 3, ..Default::default() }),
                ("c".to_string(), OutcomeCounts { due: 1, ..Default::default() }),
            ],
        );
        let names: Vec<&str> = acc.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(acc[1].1.sdc, 4);
    }
}
