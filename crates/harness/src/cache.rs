//! Golden-run cache keyed by program content.
//!
//! Every campaign needs a fault-free reference execution (the *golden
//! run*) to classify outcomes against and to derive the fault-site count.
//! Golden runs are pure functions of the program text, so the cache keys
//! them by a content hash of the printed IR / machine listing: two units
//! over byte-identical programs share one golden execution, and the
//! pipeline's overhead measurements reuse the campaign goldens for free.

use flowery_backend::{print_program, AsmProgram, AsmSnapshotSet, MachResult, Machine};
use flowery_ir::interp::{auto_interval, ExecConfig, ExecResult, Interpreter, IrSnapshotSet};
use flowery_ir::printer::print_module;
use flowery_ir::Module;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a over the canonical textual form — stable across runs and
/// platforms, which keeps checkpoint logs portable.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of a module (its printed IR).
pub fn module_hash(m: &Module) -> u64 {
    fnv1a(print_module(m).as_bytes())
}

/// Content hash of a compiled program (its machine listing).
pub fn program_hash(p: &AsmProgram) -> u64 {
    fnv1a(print_program(p).as_bytes())
}

/// Thread-safe golden-run / fault-site cache with hit-rate accounting.
#[derive(Default)]
pub struct GoldenCache {
    ir: Mutex<HashMap<u64, Arc<ExecResult>>>,
    asm: Mutex<HashMap<u64, Arc<MachResult>>>,
    ir_snaps: Mutex<HashMap<u64, Arc<IrSnapshotSet>>>,
    asm_snaps: Mutex<HashMap<u64, Arc<AsmSnapshotSet>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GoldenCache {
    pub fn new() -> GoldenCache {
        GoldenCache::default()
    }

    /// Golden run of `m` at the IR layer, computed at most once per
    /// distinct program content.
    pub fn ir_golden(&self, m: &Module, exec: &ExecConfig) -> Arc<ExecResult> {
        let key = module_hash(m);
        if let Some(g) = self.ir.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return g.clone();
        }
        // Run outside the lock: golden executions are the expensive part.
        let g = Arc::new(Interpreter::new(m).run(exec, None));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.ir.lock().unwrap().entry(key).or_insert(g).clone()
    }

    /// Golden run of `p` at the assembly layer.
    pub fn asm_golden(&self, m: &Module, p: &AsmProgram, exec: &ExecConfig) -> Arc<MachResult> {
        let key = program_hash(p);
        if let Some(g) = self.asm.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return g.clone();
        }
        let g = Arc::new(Machine::new(m, p).run(exec, None));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.asm.lock().unwrap().entry(key).or_insert(g).clone()
    }

    /// Snapshot set for fast-forwarded IR trials over `m`, captured at most
    /// once per distinct program content and shared across all units (and
    /// worker threads) that run campaigns on that content. The cadence is
    /// auto-tuned to the cached golden run's length.
    pub fn ir_snapshots(&self, m: &Module, exec: &ExecConfig) -> Arc<IrSnapshotSet> {
        let key = module_hash(m);
        if let Some(s) = self.ir_snaps.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s.clone();
        }
        // The capture run is budget-insensitive (fault-free, so it finishes
        // within the golden instruction count); only the cadence needs the
        // golden length.
        let golden = self.ir_golden(m, exec);
        let set = Arc::new(Interpreter::new(m).capture_snapshots(exec, auto_interval(golden.dyn_insts)));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.ir_snaps.lock().unwrap().entry(key).or_insert(set).clone()
    }

    /// Snapshot set for fast-forwarded assembly trials over `p`.
    pub fn asm_snapshots(&self, m: &Module, p: &AsmProgram, exec: &ExecConfig) -> Arc<AsmSnapshotSet> {
        let key = program_hash(p);
        if let Some(s) = self.asm_snaps.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s.clone();
        }
        let golden = self.asm_golden(m, p, exec);
        let set = Arc::new(Machine::new(m, p).capture_snapshots(exec, auto_interval(golden.dyn_insts)));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.asm_snaps.lock().unwrap().entry(key).or_insert(set).clone()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        flowery_lang::compile("t", src).unwrap()
    }

    #[test]
    fn identical_content_hits_distinct_content_misses() {
        let a = module("int main() { output(7); return 0; }");
        let b = module("int main() { output(7); return 0; }");
        let c = module("int main() { output(8); return 0; }");
        let cache = GoldenCache::new();
        let exec = ExecConfig::default();
        let g1 = cache.ir_golden(&a, &exec);
        let g2 = cache.ir_golden(&b, &exec);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(Arc::ptr_eq(&g1, &g2), "same content must share one golden run");
        let _ = cache.ir_golden(&c, &exec);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_sets_are_shared_by_content() {
        let a = module(
            "int main() { int i; int s = 0; for (i = 0; i < 900; i = i + 1) { s = s + i; } output(s); return 0; }",
        );
        let b = module(
            "int main() { int i; int s = 0; for (i = 0; i < 900; i = i + 1) { s = s + i; } output(s); return 0; }",
        );
        let cache = GoldenCache::new();
        let exec = ExecConfig::default();
        let s1 = cache.ir_snapshots(&a, &exec);
        let s2 = cache.ir_snapshots(&b, &exec);
        assert!(Arc::ptr_eq(&s1, &s2), "same content must share one snapshot set");
        assert!(!s1.is_empty(), "a multi-thousand-instruction run must snapshot");
        assert_eq!(s1.golden().dyn_insts, cache.ir_golden(&a, &exec).dyn_insts);
    }

    #[test]
    fn layers_are_cached_independently() {
        let m = module("int main() { output(3); return 0; }");
        let p = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let cache = GoldenCache::new();
        let exec = ExecConfig::default();
        let _ = cache.ir_golden(&m, &exec);
        let _ = cache.asm_golden(&m, &p, &exec);
        assert_eq!(cache.misses(), 2, "IR and assembly goldens are distinct entries");
        let _ = cache.asm_golden(&m, &p, &exec);
        assert_eq!(cache.hits(), 1);
    }
}
