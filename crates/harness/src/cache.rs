//! Golden-run and snapshot-set cache keyed by program content.
//!
//! Every campaign needs a fault-free reference execution (the *golden
//! run*) to classify outcomes against and to derive the fault-site count.
//! Golden runs are pure functions of the program text, so the cache keys
//! them by a content hash of the printed IR / machine listing: two units
//! over byte-identical programs share one golden execution, and the
//! pipeline's overhead measurements reuse the campaign goldens for free.
//!
//! Snapshot sets are served the same way, but with two extra sources
//! ahead of a fresh capture run:
//!
//! 1. **the persistent store** — sets saved next to the checkpoint by a
//!    previous run load back without executing anything, so `--resume`
//!    performs zero golden re-executions and zero re-captures;
//! 2. **cross-variant sharing** — a hardened unit that knows its raw twin
//!    reuses the raw set's golden-prefix snapshots below the divergence
//!    point and captures only the suffix.
//!
//! Since the capture run doubles as the golden run (its result seeds the
//! golden maps), enabling snapshots never adds an execution.

use crate::snapstore::SnapshotStore;
use flowery_analysis::statline::{analyze_bits, BitTable};
use flowery_backend::{print_program, AsmProgram, AsmSnapshotSet, MachResult, Machine};
use flowery_ir::interp::{ExecConfig, ExecResult, Interpreter, IrSnapshotSet, Profile};
use flowery_ir::printer::print_module;
use flowery_ir::Module;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a over the canonical textual form — stable across runs and
/// platforms, which keeps checkpoint logs portable.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of a module (its printed IR).
pub fn module_hash(m: &Module) -> u64 {
    fnv1a(print_module(m).as_bytes())
}

/// Content hash of a compiled program (its machine listing).
pub fn program_hash(p: &AsmProgram) -> u64 {
    fnv1a(print_program(p).as_bytes())
}

/// Point-in-time cache counters; how each snapshot set was obtained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory maps.
    pub hits: u64,
    /// Lookups that had to go further (store, sharing, or execution).
    pub misses: u64,
    /// Plain golden executions (not part of a snapshot capture).
    pub goldens_run: u64,
    /// Snapshot capture executions (full or shared-suffix).
    pub snap_captures: u64,
    /// Snapshot sets loaded from the persistent store — zero executions.
    pub snap_loads: u64,
    /// Captures that shared a raw set's golden prefix (subset of
    /// `snap_captures`; these ran only the post-divergence suffix).
    pub snap_shared: u64,
}

/// Thread-safe golden-run / snapshot-set cache with provenance accounting.
#[derive(Default)]
pub struct GoldenCache {
    ir: Mutex<HashMap<u64, Arc<ExecResult>>>,
    asm: Mutex<HashMap<u64, Arc<MachResult>>>,
    ir_snaps: Mutex<HashMap<u64, Arc<IrSnapshotSet>>>,
    asm_snaps: Mutex<HashMap<u64, Arc<AsmSnapshotSet>>>,
    /// Per-instruction execution profiles from a profiled golden run —
    /// the dynamic fault-site masses of the region model.
    ir_profiles: Mutex<HashMap<u64, Arc<Profile>>>,
    asm_profiles: Mutex<HashMap<u64, Arc<Vec<u64>>>>,
    /// Static bit-verdict tables (the prune oracle's proof side).
    bit_tables: Mutex<HashMap<u64, Arc<BitTable>>>,
    /// Golden dynamic-site → static-instruction traces (its lookup side).
    site_maps: Mutex<HashMap<u64, Arc<Vec<u32>>>>,
    /// Persistent home for snapshot sets, when the campaign has one.
    store: Option<SnapshotStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    goldens_run: AtomicU64,
    snap_captures: AtomicU64,
    snap_loads: AtomicU64,
    snap_shared: AtomicU64,
}

impl GoldenCache {
    pub fn new() -> GoldenCache {
        GoldenCache::default()
    }

    /// A cache that persists captured snapshot sets to `store` and serves
    /// future lookups from it.
    pub fn with_store(store: SnapshotStore) -> GoldenCache {
        GoldenCache { store: Some(store), ..GoldenCache::default() }
    }

    /// Golden run of `m` at the IR layer, computed at most once per
    /// distinct program content.
    pub fn ir_golden(&self, m: &Module, exec: &ExecConfig) -> Arc<ExecResult> {
        let key = module_hash(m);
        if let Some(g) = self.ir.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return g.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // A persisted snapshot set carries the golden result, so a pure
        // checkpoint replay (`--resume` of a finished run) serves even
        // its merge-time golden lookups without executing anything.
        if let Some(set) = self.store.as_ref().and_then(|st| st.load_ir(m, key)) {
            if set.matches_geometry(exec.mem_size, exec.stack_size) {
                self.snap_loads.fetch_add(1, Ordering::Relaxed);
                self.insert_ir_set(key, set, false);
                return self.ir.lock().unwrap().get(&key).unwrap().clone();
            }
        }
        // Run outside the lock: golden executions are the expensive part.
        let g = Arc::new(Interpreter::new(m).run(exec, None));
        self.goldens_run.fetch_add(1, Ordering::Relaxed);
        self.ir.lock().unwrap().entry(key).or_insert(g).clone()
    }

    /// Golden run of `p` at the assembly layer.
    pub fn asm_golden(&self, m: &Module, p: &AsmProgram, exec: &ExecConfig) -> Arc<MachResult> {
        let key = program_hash(p);
        if let Some(g) = self.asm.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return g.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(set) = self.store.as_ref().and_then(|st| st.load_asm(m, p, key)) {
            if set.matches_geometry(exec.mem_size, exec.stack_size) {
                self.snap_loads.fetch_add(1, Ordering::Relaxed);
                self.insert_asm_set(key, set, false);
                return self.asm.lock().unwrap().get(&key).unwrap().clone();
            }
        }
        let g = Arc::new(Machine::new(m, p).run(exec, None));
        self.goldens_run.fetch_add(1, Ordering::Relaxed);
        self.asm.lock().unwrap().entry(key).or_insert(g).clone()
    }

    /// Per-instruction execution profile of `m`'s golden run, computed at
    /// most once per distinct program content. This is a separate profiled
    /// execution (the plain golden run skips the counters); region site
    /// masses derive from it.
    pub fn ir_profile(&self, m: &Module, exec: &ExecConfig) -> Arc<Profile> {
        let key = module_hash(m);
        if let Some(p) = self.ir_profiles.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return p.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let r = Interpreter::new(m).profile_run(exec);
        self.goldens_run.fetch_add(1, Ordering::Relaxed);
        let p = Arc::new(r.profile.expect("profiled run records a profile"));
        self.ir_profiles.lock().unwrap().entry(key).or_insert(p).clone()
    }

    /// Assembly twin of [`GoldenCache::ir_profile`]: per-program-index
    /// execution counts of `p`'s golden run.
    pub fn asm_profile(&self, m: &Module, p: &AsmProgram, exec: &ExecConfig) -> Arc<Vec<u64>> {
        let key = program_hash(p);
        if let Some(pr) = self.asm_profiles.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return pr.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let r = Machine::new(m, p).profile_run(exec);
        self.goldens_run.fetch_add(1, Ordering::Relaxed);
        let pr = Arc::new(r.profile.expect("profiled run records a profile"));
        self.asm_profiles.lock().unwrap().entry(key).or_insert(pr).clone()
    }

    /// Upper bound on prunable dynamic sites per program: past this many,
    /// the site trace stops and later sites simply go unpruned (sound —
    /// pruning is an optimization, never a requirement).
    pub const SITE_TRACE_CAP: usize = 1 << 22;

    /// Static bit-verdict table for `p`, computed at most once per
    /// distinct program content. Pure static analysis — no execution.
    pub fn asm_bits(&self, m: &Module, p: &AsmProgram) -> Arc<BitTable> {
        let key = program_hash(p);
        if let Some(t) = self.bit_tables.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t = Arc::new(analyze_bits(m, p));
        self.bit_tables.lock().unwrap().entry(key).or_insert(t).clone()
    }

    /// Golden site trace of `p`: static instruction index of each dynamic
    /// fault site, in execution order, capped at
    /// [`GoldenCache::SITE_TRACE_CAP`] entries. A fault-free replay (not a
    /// golden run — it records site indices, nothing else).
    pub fn asm_site_map(&self, m: &Module, p: &AsmProgram, exec: &ExecConfig) -> Arc<Vec<u32>> {
        let key = program_hash(p);
        if let Some(s) = self.site_maps.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let s = Arc::new(Machine::new(m, p).site_trace(exec, Self::SITE_TRACE_CAP));
        self.goldens_run.fetch_add(1, Ordering::Relaxed);
        self.site_maps.lock().unwrap().entry(key).or_insert(s).clone()
    }

    /// Snapshot set for fast-forwarded IR trials over `m` (no raw twin).
    pub fn ir_snapshots(&self, m: &Module, exec: &ExecConfig) -> Arc<IrSnapshotSet> {
        self.ir_snapshots_for(m, None, exec)
    }

    /// Snapshot set for fast-forwarded IR trials over `m`, obtained (in
    /// order of preference) from the in-memory cache, the persistent
    /// store, a shared-prefix capture off `raw`'s set, or a fresh capture.
    /// The set's golden result seeds the golden cache, so subsequent
    /// [`GoldenCache::ir_golden`] calls for the same content are free.
    pub fn ir_snapshots_for(&self, m: &Module, raw: Option<&Module>, exec: &ExecConfig) -> Arc<IrSnapshotSet> {
        let key = module_hash(m);
        if let Some(s) = self.ir_snaps.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(set) = self.store.as_ref().and_then(|st| st.load_ir(m, key)) {
            if set.matches_geometry(exec.mem_size, exec.stack_size) {
                self.snap_loads.fetch_add(1, Ordering::Relaxed);
                return self.insert_ir_set(key, set, false);
            }
        }
        let shared = raw.and_then(|raw_m| {
            let raw_key = module_hash(raw_m);
            if raw_key == key {
                return None;
            }
            let raw_set = self.ir_snapshots_for(raw_m, None, exec);
            Interpreter::new(m).capture_snapshots_from(exec, raw_m, &raw_set)
        });
        if shared.is_some() {
            self.snap_shared.fetch_add(1, Ordering::Relaxed);
        }
        let set = shared.unwrap_or_else(|| Interpreter::new(m).capture_snapshots_auto(exec));
        self.snap_captures.fetch_add(1, Ordering::Relaxed);
        self.insert_ir_set(key, set, true)
    }

    fn insert_ir_set(&self, key: u64, set: IrSnapshotSet, save: bool) -> Arc<IrSnapshotSet> {
        // The capture (or the loaded file) carries the golden result: seed
        // the golden map so no plain golden execution ever repeats it.
        self.ir
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::new(set.golden().clone()));
        if save {
            if let Some(st) = &self.store {
                st.save_ir(&set, key);
            }
        }
        self.ir_snaps.lock().unwrap().entry(key).or_insert(Arc::new(set)).clone()
    }

    /// Snapshot set for fast-forwarded assembly trials over `p` (no raw
    /// twin).
    pub fn asm_snapshots(&self, m: &Module, p: &AsmProgram, exec: &ExecConfig) -> Arc<AsmSnapshotSet> {
        self.asm_snapshots_for(m, p, None, exec)
    }

    /// Assembly twin of [`GoldenCache::ir_snapshots_for`].
    pub fn asm_snapshots_for(
        &self,
        m: &Module,
        p: &AsmProgram,
        raw: Option<(&Module, &AsmProgram)>,
        exec: &ExecConfig,
    ) -> Arc<AsmSnapshotSet> {
        let key = program_hash(p);
        if let Some(s) = self.asm_snaps.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(set) = self.store.as_ref().and_then(|st| st.load_asm(m, p, key)) {
            if set.matches_geometry(exec.mem_size, exec.stack_size) {
                self.snap_loads.fetch_add(1, Ordering::Relaxed);
                return self.insert_asm_set(key, set, false);
            }
        }
        let shared = raw.and_then(|(raw_m, raw_p)| {
            let raw_key = program_hash(raw_p);
            if raw_key == key {
                return None;
            }
            let raw_set = self.asm_snapshots_for(raw_m, raw_p, None, exec);
            Machine::new(m, p).capture_snapshots_from(exec, (raw_m, raw_p), &raw_set)
        });
        if shared.is_some() {
            self.snap_shared.fetch_add(1, Ordering::Relaxed);
        }
        let set = shared.unwrap_or_else(|| Machine::new(m, p).capture_snapshots_auto(exec));
        self.snap_captures.fetch_add(1, Ordering::Relaxed);
        self.insert_asm_set(key, set, true)
    }

    fn insert_asm_set(&self, key: u64, set: AsmSnapshotSet, save: bool) -> Arc<AsmSnapshotSet> {
        self.asm
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::new(set.golden().clone()));
        if save {
            if let Some(st) = &self.store {
                st.save_asm(&set, key);
            }
        }
        self.asm_snaps.lock().unwrap().entry(key).or_insert(Arc::new(set)).clone()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Sample every counter at once.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            goldens_run: self.goldens_run.load(Ordering::Relaxed),
            snap_captures: self.snap_captures.load(Ordering::Relaxed),
            snap_loads: self.snap_loads.load(Ordering::Relaxed),
            snap_shared: self.snap_shared.load(Ordering::Relaxed),
        }
    }

    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        flowery_lang::compile("t", src).unwrap()
    }

    const LOOP_SRC: &str =
        "int main() { int i; int s = 0; for (i = 0; i < 900; i = i + 1) { s = s + i; } output(s); return 0; }";

    #[test]
    fn identical_content_hits_distinct_content_misses() {
        let a = module("int main() { output(7); return 0; }");
        let b = module("int main() { output(7); return 0; }");
        let c = module("int main() { output(8); return 0; }");
        let cache = GoldenCache::new();
        let exec = ExecConfig::default();
        let g1 = cache.ir_golden(&a, &exec);
        let g2 = cache.ir_golden(&b, &exec);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(Arc::ptr_eq(&g1, &g2), "same content must share one golden run");
        let _ = cache.ir_golden(&c, &exec);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.stats().goldens_run, 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_sets_are_shared_by_content() {
        let a = module(LOOP_SRC);
        let b = module(LOOP_SRC);
        let cache = GoldenCache::new();
        let exec = ExecConfig::default();
        let s1 = cache.ir_snapshots(&a, &exec);
        let s2 = cache.ir_snapshots(&b, &exec);
        assert!(Arc::ptr_eq(&s1, &s2), "same content must share one snapshot set");
        assert!(!s1.is_empty(), "a multi-thousand-instruction run must snapshot");
        assert_eq!(s1.golden().dyn_insts, cache.ir_golden(&a, &exec).dyn_insts);
        // The capture seeded the golden map: that lookup was a hit, and no
        // plain golden execution ever ran.
        let st = cache.stats();
        assert_eq!(st.snap_captures, 1);
        assert_eq!(st.goldens_run, 0, "capture run doubles as the golden run");
    }

    #[test]
    fn layers_are_cached_independently() {
        let m = module("int main() { output(3); return 0; }");
        let p = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let cache = GoldenCache::new();
        let exec = ExecConfig::default();
        let _ = cache.ir_golden(&m, &exec);
        let _ = cache.asm_golden(&m, &p, &exec);
        assert_eq!(cache.misses(), 2, "IR and assembly goldens are distinct entries");
        let _ = cache.asm_golden(&m, &p, &exec);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn store_backed_cache_loads_instead_of_recapturing() {
        let dir = std::env::temp_dir().join(format!("flcache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = module(LOOP_SRC);
        let p = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let exec = ExecConfig::default();

        // First campaign: captures and persists.
        let first = GoldenCache::with_store(SnapshotStore::at(&dir));
        let s1 = first.ir_snapshots(&m, &exec);
        let a1 = first.asm_snapshots(&m, &p, &exec);
        let st = first.stats();
        assert_eq!(st.snap_captures, 2);
        assert_eq!(st.snap_loads, 0);

        // Resumed campaign: loads both sets, executes nothing.
        let resumed = GoldenCache::with_store(SnapshotStore::at(&dir));
        let s2 = resumed.ir_snapshots(&m, &exec);
        let a2 = resumed.asm_snapshots(&m, &p, &exec);
        let st = resumed.stats();
        assert_eq!(st.snap_loads, 2, "resume must load from the store");
        assert_eq!(st.snap_captures, 0, "resume must not re-capture");
        assert_eq!(st.goldens_run, 0, "resume must not re-run goldens");
        assert_eq!(s2.golden(), s1.golden());
        assert_eq!(a2.golden(), a1.golden());
        // The loaded sets also seeded the golden maps.
        assert_eq!(resumed.ir_golden(&m, &exec).dyn_insts, s1.golden().dyn_insts);
        assert_eq!(resumed.stats().goldens_run, 0);

        // A geometry mismatch refuses the file and recaptures.
        let small = ExecConfig { mem_size: 2 << 20, ..ExecConfig::default() };
        let strict = GoldenCache::with_store(SnapshotStore::at(&dir));
        let s3 = strict.ir_snapshots(&m, &small);
        assert!(s3.matches_geometry(small.mem_size, small.stack_size));
        assert_eq!(strict.stats().snap_captures, 1, "wrong geometry must recapture");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
