//! The incremental (`flowery diff`) campaign engine.
//!
//! A full campaign answers "what is this program's SDC rate" by sampling
//! the whole program. After a small edit, most regions (function bodies)
//! are byte-identical to the baseline run — their per-region profiles are
//! still valid answers. This module
//!
//! 1. partitions every unit into regions and hashes them
//!    ([`unit_region_set`], salted with everything that shapes outcomes);
//! 2. compares the partition against a baseline checkpoint's region
//!    records ([`Baseline`]), classifying each region reused / re-run /
//!    new;
//! 3. re-executes trials *only* for changed regions, scoping each trial's
//!    injection site to the region (`run_trial_model_scoped`) with a
//!    region-local seed stream, so the plan is a pure function of the
//!    region content — independent of thread count and of what else
//!    changed;
//! 4. composes a whole-program answer from the mixed-provenance profiles
//!    under the current site masses ([`flowery_regions::compose_weighted`]).
//!
//! The composed result is written back as a region-record-only checkpoint,
//! which can serve as the baseline for the next diff.

use crate::cache::GoldenCache;
use crate::checkpoint::{self, Header, RegionRecord};
use crate::engine::{HarnessConfig, UnitResult};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan::{Layer, TrialUnit, UnitKey};
use flowery_inject::campaign::{AsmTrialRunner, IrTrialRunner};
use flowery_inject::{Outcome, OutcomeCounts};
use flowery_ir::value::FuncId;
use flowery_regions::{
    combine, compose_exact, compose_weighted, diff, fnv1a, Fate, RegionProfile, RegionSet, WeightedEstimate,
    REGION_SCHEMA_VERSION,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Salt folded into every region hash of one unit: the unit identity plus
/// every campaign parameter that changes trial outcomes without changing
/// the program text (fault model, detectors, double-bit switch, and the
/// executor-visible memory geometry). Two configs never share profiles.
pub fn unit_salt(key: &UnitKey, cfg: &HarnessConfig) -> u64 {
    let model = serde_json::to_string(&cfg.effective_model()).unwrap_or_default();
    let detectors = serde_json::to_string(&cfg.detectors).unwrap_or_default();
    let mut h = fnv1a(key.id().as_bytes());
    h = combine(h, fnv1a(model.as_bytes()));
    h = combine(h, fnv1a(detectors.as_bytes()));
    h = combine(h, cfg.double_bit as u64);
    h = combine(h, cfg.exec.mem_size);
    h = combine(h, cfg.exec.stack_size);
    h
}

/// Partition one unit into regions. Site masses come from a profiled
/// golden run served by the cache (one per distinct program content).
pub fn unit_region_set(unit: &TrialUnit, cache: &GoldenCache, cfg: &HarnessConfig) -> RegionSet {
    let salt = unit_salt(&unit.key, cfg);
    match unit.key.layer {
        Layer::Ir => {
            let profile = cache.ir_profile(&unit.module, &cfg.exec);
            flowery_regions::ir_region_set(&unit.module, &profile, salt)
        }
        Layer::Asm => {
            let program = unit.program.as_ref().expect("asm unit has a program");
            let profile = cache.asm_profile(&unit.module, program, &cfg.exec);
            flowery_regions::asm_region_set(&unit.module, program, &profile, salt)
        }
    }
}

/// Order-insensitive fingerprint over every unit's region partition, the
/// region analogue of `matrix_fingerprint`: a distributed coordinator and
/// its workers verify they computed identical regions before any scoped
/// lease is granted.
pub fn region_fingerprint(units: &[TrialUnit], cache: &GoldenCache, cfg: &HarnessConfig) -> u64 {
    let mut h = fnv1a(b"flowery-region-matrix");
    for u in units {
        h = combine(h, fnv1a(u.key.id().as_bytes()));
        h = combine(h, unit_region_set(u, cache, cfg).fingerprint());
    }
    h
}

/// Build the region records a clean finalize writes: one per completed
/// unit, splitting the unit's tallies across its regions. Units whose
/// per-region tallies do not cover every trial (batches replayed from a
/// pre-region checkpoint) are skipped — a partial split would compose
/// wrongly, and the next full campaign will produce a complete one.
pub fn region_records(
    units: &[TrialUnit],
    results: &[UnitResult],
    cache: &GoldenCache,
    cfg: &HarnessConfig,
) -> Vec<RegionRecord> {
    let by_key: HashMap<&UnitKey, &TrialUnit> = units.iter().map(|u| (&u.key, u)).collect();
    let mut records = Vec::new();
    for res in results {
        let Some(unit) = by_key.get(&res.key) else { continue };
        let attributed: u64 = res.region_counts.iter().map(|(_, c)| c.total()).sum();
        if attributed != res.trials {
            continue;
        }
        let set = unit_region_set(unit, cache, cfg);
        let mut profiles: Vec<RegionProfile> = Vec::new();
        let mut push = |name: &str, hash: u64, site_mass: u64| {
            let counts = res
                .region_counts
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or_default();
            let mut p = RegionProfile {
                name: name.to_string(),
                hash,
                site_mass,
                trials: counts.total(),
                counts,
                ..RegionProfile::default()
            };
            match unit.key.layer {
                Layer::Ir => {
                    // Restrict the unit's static SDC map to this region's
                    // function.
                    p.sdc_by_inst = res
                        .sdc_by_inst
                        .iter()
                        .filter(|((f, _), _)| unit.module.func(*f).name == name)
                        .map(|(loc, n)| (*loc, *n))
                        .collect();
                }
                Layer::Asm => {
                    let program = unit.program.as_ref().expect("asm unit has a program");
                    let range = program.funcs.iter().find(|f| f.name == name).map(|f| f.entry..f.end);
                    p.sdc_insts = res
                        .sdc_insts
                        .iter()
                        .copied()
                        .filter(|idx| match &range {
                            Some(r) => r.contains(idx),
                            // OTHER_REGION: indices outside every function.
                            None => !program.funcs.iter().any(|f| (f.entry..f.end).contains(idx)),
                        })
                        .collect();
                }
            }
            profiles.push(p);
        };
        for r in &set.regions {
            push(&r.name, r.hash, r.site_mass);
        }
        // Attribution buckets outside the partition (e.g. trials whose
        // fault never landed, collected under OTHER_REGION at the IR
        // layer) still need a profile so trials stay fully accounted.
        for (name, _) in &res.region_counts {
            if set.get(name).is_none() {
                push(name, combine(fnv1a(name.as_bytes()), unit_salt(&unit.key, cfg)), 0);
            }
        }
        profiles.sort_by(|a, b| a.name.cmp(&b.name));
        records.push(RegionRecord {
            unit: res.key.clone(),
            schema: REGION_SCHEMA_VERSION,
            regions: profiles,
        });
    }
    records
}

/// A baseline checkpoint's region records, validated against the current
/// campaign configuration.
#[derive(Debug)]
pub struct Baseline {
    pub header: Header,
    pub regions: HashMap<UnitKey, RegionRecord>,
    /// True when the baseline predates region records (schema 0): nothing
    /// can be reused, every region runs fresh.
    pub pre_region: bool,
}

impl Baseline {
    /// Load and validate a baseline. Refusals always name the differing
    /// field and both values — the checkpoint's and the requested one.
    pub fn load(path: &Path, requested: &Header) -> Result<Baseline, String> {
        let (header, _, regions) = checkpoint::load_full(path)?;
        if let Some(why) = header.describe_mismatch(requested) {
            return Err(format!(
                "{}: baseline was written with different campaign parameters — {why}",
                path.display()
            ));
        }
        if header.region_schema != 0 && header.region_schema != REGION_SCHEMA_VERSION {
            return Err(format!(
                "{}: region-schema: checkpoint has {}, this build wants {}",
                path.display(),
                header.region_schema,
                REGION_SCHEMA_VERSION
            ));
        }
        let pre_region = header.region_schema == 0 || regions.is_empty();
        let regions = checkpoint::canonicalize_regions(&header, regions)?
            .into_iter()
            .map(|r| (r.unit.clone(), r))
            .collect();
        Ok(Baseline { header, regions, pre_region })
    }
}

/// One region's entry in a [`DiffUnitReport`]: provenance plus the profile
/// that went into the composition.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    pub name: String,
    pub fate: Fate,
    /// Trials the plan allotted this region (0 for reused regions and for
    /// regions with no site mass).
    pub planned_trials: u64,
    pub profile: RegionProfile,
}

/// One unit's incremental result.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffUnitReport {
    pub key: UnitKey,
    /// Per-region provenance and profiles, in region-name order.
    pub regions: Vec<RegionReport>,
    /// Baseline regions that no longer exist (deleted functions).
    pub dropped: Vec<String>,
    /// Mass-weighted whole-program SDC estimate under current masses.
    pub composed: WeightedEstimate,
    /// Raw pooled counts across all profiles (reference only — the
    /// weighted estimate is the calibrated answer for mixed provenance).
    pub counts: OutcomeCounts,
    pub trials_run: u64,
    pub trials_saved: u64,
}

impl DiffUnitReport {
    pub fn fate_counts(&self) -> (u64, u64, u64) {
        let mut c = (0u64, 0u64, 0u64);
        for r in &self.regions {
            match r.fate {
                Fate::Reused => c.0 += 1,
                Fate::Rerun => c.1 += 1,
                Fate::New => c.2 += 1,
            }
        }
        c
    }
}

/// Outcome of one incremental run.
pub struct DiffReport {
    pub units: Vec<DiffUnitReport>,
    pub metrics: MetricsSnapshot,
}

impl DiffReport {
    /// The region records of the composed result, ready to write as a
    /// checkpoint (the next diff's baseline).
    pub fn records(&self) -> Vec<RegionRecord> {
        self.units
            .iter()
            .map(|u| RegionRecord {
                unit: u.key.clone(),
                schema: REGION_SCHEMA_VERSION,
                regions: u.regions.iter().map(|r| r.profile.clone()).collect(),
            })
            .collect()
    }
}

/// Trials allotted to a region: its mass share of the unit schedule,
/// floored at one batch so small regions still get a measurable sample.
fn planned_trials(cfg: &HarnessConfig, mass: u64, total_mass: u64) -> u64 {
    if mass == 0 || total_mass == 0 {
        return 0;
    }
    let share = (cfg.max_trials as u128 * mass as u128).div_ceil(total_mass as u128) as u64;
    share.clamp(cfg.batch_size.min(cfg.max_trials), cfg.max_trials)
}

/// What a region task injects into: an IR function or a machine range.
enum Scope {
    IrFunc(FuncId),
    AsmRange(u32, u32),
    /// Region with no contiguous scope (machine-layer [`OTHER_REGION`]):
    /// cannot be re-sampled; composes as untested.
    None,
}

/// Resolve a region name to its injection scope inside one unit.
fn resolve_scope(unit: &TrialUnit, name: &str) -> Scope {
    match unit.key.layer {
        Layer::Ir => unit
            .module
            .functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| Scope::IrFunc(FuncId(i as u32)))
            .unwrap_or(Scope::None),
        Layer::Asm => {
            let program = unit.program.as_ref().expect("asm unit has a program");
            program
                .funcs
                .iter()
                .find(|f| f.name == name)
                .map(|f| Scope::AsmRange(f.entry, f.end))
                .unwrap_or(Scope::None)
        }
    }
}

/// One schedulable re-run: a slice of a region's trial budget. The
/// execution order of tasks never changes results (each is a pure
/// function of `(seed, trial index)`), so a distributed coordinator can
/// lease slices of one task to different workers.
#[derive(Debug, Clone)]
pub struct DiffTask {
    pub unit_index: usize,
    pub region_index: usize,
    pub region: String,
    pub mass: u64,
    pub trials: u64,
    /// Region-local seed stream: depends only on the campaign seed and
    /// the region name, never on what else changed.
    pub seed: u64,
    pub priority: f64,
}

/// Partial result of [`run_region_task`]: outcome tallies plus static SDC
/// maps for one contiguous range of a region's trial indices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionTaskResult {
    pub counts: OutcomeCounts,
    pub sdc_by_inst: HashMap<(FuncId, flowery_ir::value::InstId), u64>,
    pub sdc_insts: Vec<u32>,
    pub ff_insts: u64,
    pub exec_insts: u64,
}

/// Execute trial indices `range` of one region's scoped stream. Returns
/// `None` when the region has no contiguous injection scope (the
/// machine-layer [`flowery_regions::OTHER_REGION`] bucket) — such regions
/// compose as untested. Workers and the local engine share this function,
/// so a distributed diff is bit-identical to a local one.
pub fn run_region_task(
    unit: &TrialUnit,
    cache: &GoldenCache,
    cfg: &HarnessConfig,
    region: &str,
    seed: u64,
    mass: u64,
    range: std::ops::Range<u64>,
) -> Option<RegionTaskResult> {
    let model = cfg.effective_model();
    let mut out = RegionTaskResult::default();
    match resolve_scope(unit, region) {
        Scope::IrFunc(fid) => {
            let g = cache.ir_golden(&unit.module, &cfg.exec);
            let mut r = IrTrialRunner::with_golden(&unit.module, (*g).clone(), &cfg.exec);
            for i in range {
                let t = r.run_trial_model_scoped(seed, i, model, &cfg.detectors, fid, mass);
                out.counts.record(t.outcome);
                out.ff_insts += t.ff_insts;
                out.exec_insts += t.exec_insts;
                if t.outcome == Outcome::Sdc {
                    if let Some(loc) = t.injected_at {
                        *out.sdc_by_inst.entry(loc).or_insert(0) += 1;
                    }
                }
            }
        }
        Scope::AsmRange(lo, hi) => {
            let program = unit.program.as_ref().expect("asm unit has a program");
            let g = cache.asm_golden(&unit.module, program, &cfg.exec);
            let mut r = AsmTrialRunner::with_golden(&unit.module, program, (*g).clone(), &cfg.exec);
            for i in range {
                let t = r.run_trial_model_scoped(seed, i, model, &cfg.detectors, lo..hi, mass);
                out.counts.record(t.outcome);
                out.ff_insts += t.ff_insts;
                out.exec_insts += t.exec_insts;
                if t.outcome == Outcome::Sdc {
                    if let Some(idx) = t.injected_inst {
                        out.sdc_insts.push(idx);
                    }
                }
            }
        }
        Scope::None => return None,
    }
    Some(out)
}

/// Fold one task slice into its region profile. Slices must be folded in
/// trial-index order for the profile to be bit-identical to a single
/// contiguous run (callers sort by batch index first).
pub fn fold_task_result(profile: &mut RegionProfile, r: &RegionTaskResult) {
    profile.counts.merge(&r.counts);
    for (loc, n) in &r.sdc_by_inst {
        *profile.sdc_by_inst.entry(*loc).or_insert(0) += n;
    }
    profile.sdc_insts.extend_from_slice(&r.sdc_insts);
    profile.trials = profile.counts.total();
}

/// Plan an incremental campaign without executing anything: classify
/// every region against the baseline, carry reused profiles (re-weighted
/// to current masses), and emit one [`DiffTask`] per runnable changed
/// region, sorted most-suspect-first by `priorities` (unit id, region
/// name) → score. Local and distributed diffs share this plan.
pub fn plan_diff(
    units: &[TrialUnit],
    cfg: &HarnessConfig,
    cache: &GoldenCache,
    baseline: &Baseline,
    priorities: &HashMap<(String, String), f64>,
) -> (Vec<DiffUnitReport>, Vec<DiffTask>) {
    let mut reports: Vec<DiffUnitReport> = Vec::new();
    let mut tasks: Vec<DiffTask> = Vec::new();

    for (ui, unit) in units.iter().enumerate() {
        let set = unit_region_set(unit, cache, cfg);
        let total_mass = set.total_mass();
        let base: &[RegionProfile] = baseline.regions.get(&unit.key).map(|r| r.regions.as_slice()).unwrap_or(&[]);
        let (deltas, dropped) = diff(&set, base);
        let mut regions = Vec::new();
        let mut trials_saved = 0u64;
        for d in deltas {
            let planned = planned_trials(cfg, d.region.site_mass, total_mass);
            match d.fate {
                Fate::Reused => {
                    trials_saved += planned;
                    // Carry the baseline trials; re-weight to the current
                    // mass (the mixture weights must describe the current
                    // program, not the baseline's call profile).
                    let mut p = d.baseline.expect("reused region has a baseline profile");
                    p.site_mass = d.region.site_mass;
                    regions.push(RegionReport {
                        name: d.region.name,
                        fate: Fate::Reused,
                        planned_trials: 0,
                        profile: p,
                    });
                }
                fate => {
                    let runnable = planned > 0 && !matches!(resolve_scope(unit, &d.region.name), Scope::None);
                    if runnable {
                        tasks.push(DiffTask {
                            unit_index: ui,
                            region_index: regions.len(),
                            region: d.region.name.clone(),
                            mass: d.region.site_mass,
                            trials: planned,
                            seed: cfg.seed ^ fnv1a(d.region.name.as_bytes()),
                            priority: *priorities.get(&(unit.key.id(), d.region.name.clone())).unwrap_or(&0.0),
                        });
                    }
                    regions.push(RegionReport {
                        name: d.region.name.clone(),
                        fate,
                        planned_trials: if runnable { planned } else { 0 },
                        profile: RegionProfile {
                            name: d.region.name,
                            hash: d.region.hash,
                            site_mass: d.region.site_mass,
                            ..RegionProfile::default()
                        },
                    });
                }
            }
        }
        reports.push(DiffUnitReport {
            key: unit.key.clone(),
            regions,
            dropped,
            composed: WeightedEstimate { value: 0.0, ci95: 0.0, trials: 0, mass: 0 },
            counts: OutcomeCounts::default(),
            trials_run: 0,
            trials_saved,
        });
    }

    // Most-suspect regions first (pure scheduling: results are per-region
    // pure functions of the seed, so order never changes them).
    tasks.sort_by(|a, b| {
        b.priority
            .partial_cmp(&a.priority)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.unit_index, a.region_index).cmp(&(b.unit_index, b.region_index)))
    });
    (reports, tasks)
}

/// Fill the composed estimate, pooled counts, and trials-run tally of
/// every unit report from its (now final) region profiles.
pub fn compose_units(reports: &mut [DiffUnitReport]) {
    for rep in reports {
        let profiles: Vec<RegionProfile> = rep.regions.iter().map(|r| r.profile.clone()).collect();
        rep.composed = compose_weighted(&profiles);
        rep.counts = compose_exact(&profiles);
        rep.trials_run = rep
            .regions
            .iter()
            .filter(|r| r.fate != Fate::Reused)
            .map(|r| r.profile.trials)
            .sum();
    }
}

/// Run an incremental campaign: reuse baseline profiles for unchanged
/// regions, re-execute changed/new regions with region-scoped trials, and
/// compose. `priorities` (unit id, region name) → score orders re-run
/// execution most-suspect-first (see `flowery-analysis` statline priors);
/// it never changes results, only scheduling.
pub fn run_diff(
    units: &[TrialUnit],
    cfg: &HarnessConfig,
    cache: &GoldenCache,
    baseline: &Baseline,
    priorities: &HashMap<(String, String), f64>,
) -> DiffReport {
    let metrics = Metrics::with_mode(cfg.exec.executor);
    let (mut reports, tasks) = plan_diff(units, cfg, cache, baseline, priorities);
    for rep in &reports {
        let (reused, rerun, _) = rep.fate_counts();
        metrics.record_region_plan(rep.regions.len() as u64, reused, rerun, rep.trials_saved);
    }

    let threads = if cfg.threads > 0 {
        cfg.threads
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    };
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, usize, RegionTaskResult)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(tasks.len().max(1)) {
            scope.spawn(|| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(t) else { return };
                let unit = &units[task.unit_index];
                let Some(r) = run_region_task(unit, cache, cfg, &task.region, task.seed, task.mass, 0..task.trials)
                else {
                    continue;
                };
                let compiled =
                    unit.key.layer == Layer::Asm && cfg.exec.executor == flowery_ir::interp::ExecMode::Compiled;
                metrics.record_batch(&r.counts, false, r.ff_insts, r.exec_insts, compiled);
                done.lock().unwrap().push((task.unit_index, task.region_index, r));
            });
        }
    });

    for (ui, ri, r) in done.into_inner().unwrap() {
        fold_task_result(&mut reports[ui].regions[ri].profile, &r);
    }
    compose_units(&mut reports);
    let metrics = metrics.snapshot(units.len(), 0, cache.stats());
    DiffReport { units: reports, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Variant;
    use std::sync::Arc;

    const SRC: &str = "int helper(int x) { return x * 3 + 1; } \
         int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { s = s + helper(i); } output(s); return 0; }";

    fn ir_unit(src: &str) -> TrialUnit {
        let m = Arc::new(flowery_lang::compile("t", src).unwrap());
        TrialUnit::ir(UnitKey::new("t", Variant::Raw, 0.0, Layer::Ir), m)
    }

    fn asm_unit(src: &str) -> TrialUnit {
        let m = Arc::new(flowery_lang::compile("t", src).unwrap());
        let p = Arc::new(flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default()));
        TrialUnit::asm(UnitKey::new("t", Variant::Raw, 0.0, Layer::Asm), m, p)
    }

    fn small_cfg() -> HarnessConfig {
        HarnessConfig {
            batch_size: 25,
            max_trials: 100,
            min_trials: 25,
            ci_target: None,
            threads: 2,
            ..HarnessConfig::default()
        }
    }

    fn empty_baseline(cfg: &HarnessConfig) -> Baseline {
        Baseline {
            header: cfg.header(),
            regions: HashMap::new(),
            pre_region: true,
        }
    }

    #[test]
    fn salt_separates_configs() {
        let cfg = small_cfg();
        let mut other = small_cfg();
        other.fault_model = flowery_faultmodel::ModelSpec::FlagsPc;
        let key = UnitKey::new("t", Variant::Raw, 0.0, Layer::Ir);
        assert_ne!(unit_salt(&key, &cfg), unit_salt(&key, &other));
        let key2 = UnitKey::new("t", Variant::Id, 1.0, Layer::Ir);
        assert_ne!(unit_salt(&key, &cfg), unit_salt(&key2, &cfg));
    }

    #[test]
    fn empty_baseline_runs_everything_fresh() {
        let unit = ir_unit(SRC);
        let cfg = small_cfg();
        let cache = GoldenCache::new();
        let report = run_diff(&[unit], &cfg, &cache, &empty_baseline(&cfg), &HashMap::new());
        let u = &report.units[0];
        let (reused, rerun, new) = u.fate_counts();
        assert_eq!((reused, rerun), (0, 0));
        assert_eq!(new, 2, "helper and main are both new");
        assert!(u.trials_run > 0);
        assert_eq!(u.trials_saved, 0);
        assert_eq!(u.counts.total(), u.trials_run);
        assert!(u.composed.mass > 0);
        assert_eq!(report.metrics.regions_total, 2);
        assert_eq!(report.metrics.regions_rerun, 0);
    }

    #[test]
    fn single_function_edit_reruns_exactly_that_region() {
        let cfg = small_cfg();
        let cache = GoldenCache::new();
        // Baseline campaign over the original program.
        let base_units = [ir_unit(SRC)];
        let base = run_diff(&base_units, &cfg, &cache, &empty_baseline(&cfg), &HashMap::new());
        let baseline = Baseline {
            header: cfg.header(),
            regions: base.records().into_iter().map(|r| (r.unit.clone(), r)).collect(),
            pre_region: false,
        };
        // Edit helper only.
        let edited = [ir_unit(&SRC.replace("x * 3 + 1", "x * 3 + 2"))];
        let report = run_diff(&edited, &cfg, &cache, &baseline, &HashMap::new());
        let u = &report.units[0];
        let (reused, rerun, new) = u.fate_counts();
        assert_eq!((reused, rerun, new), (1, 1, 0), "only the edited function re-runs");
        let helper = u.regions.iter().find(|r| r.name == "helper").unwrap();
        assert_eq!(helper.fate, Fate::Rerun);
        let main = u.regions.iter().find(|r| r.name == "main").unwrap();
        assert_eq!(main.fate, Fate::Reused);
        let base_main = &base.units[0].regions.iter().find(|r| r.name == "main").unwrap().profile;
        assert_eq!(main.profile.counts, base_main.counts, "reused profile carried verbatim");
        assert!(u.trials_saved > 0);
        assert_eq!(report.metrics.regions_rerun, 1);
        assert_eq!(report.metrics.region_trials_saved, u.trials_saved);
    }

    #[test]
    fn identical_program_reuses_everything_and_composes_identically() {
        let cfg = small_cfg();
        let cache = GoldenCache::new();
        let units = [asm_unit(SRC)];
        let base = run_diff(&units, &cfg, &cache, &empty_baseline(&cfg), &HashMap::new());
        let baseline = Baseline {
            header: cfg.header(),
            regions: base.records().into_iter().map(|r| (r.unit.clone(), r)).collect(),
            pre_region: false,
        };
        let again = run_diff(&units, &cfg, &cache, &baseline, &HashMap::new());
        let u = &again.units[0];
        assert_eq!(u.trials_run, 0, "nothing changed, nothing runs");
        assert!(u.regions.iter().all(|r| r.fate == Fate::Reused));
        assert_eq!(u.counts, base.units[0].counts);
        assert_eq!(u.composed, base.units[0].composed);
    }

    #[test]
    fn diff_is_thread_count_independent() {
        let cache = GoldenCache::new();
        let units = [ir_unit(SRC)];
        let mut one = small_cfg();
        one.threads = 1;
        let mut four = small_cfg();
        four.threads = 4;
        let a = run_diff(&units, &one, &cache, &empty_baseline(&one), &HashMap::new());
        let b = run_diff(&units, &four, &cache, &empty_baseline(&four), &HashMap::new());
        assert_eq!(a.units[0].regions, b.units[0].regions);
        assert_eq!(a.units[0].counts, b.units[0].counts);
    }

    #[test]
    fn baseline_refusal_names_both_values() {
        let dir = std::env::temp_dir().join(format!("fl-incr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.jsonl");
        let cfg = small_cfg();
        checkpoint::write_canonical_full(&path, &cfg.header(), &[], &[]).unwrap();
        let mut other = small_cfg();
        other.seed ^= 1;
        let err = Baseline::load(&path, &other.header()).unwrap_err();
        assert!(err.contains("seed"), "{err}");
        assert!(err.contains("checkpoint has") && err.contains("this campaign wants"), "{err}");
        // A foreign region schema is named with both values too.
        let mut h = cfg.header();
        h.region_schema = REGION_SCHEMA_VERSION + 7;
        checkpoint::write_canonical_full(&path, &h, &[], &[]).unwrap();
        let err = Baseline::load(&path, &cfg.header()).unwrap_err();
        assert!(err.contains("region-schema"), "{err}");
        assert!(
            err.contains(&(REGION_SCHEMA_VERSION + 7).to_string()) && err.contains(&REGION_SCHEMA_VERSION.to_string()),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
