//! The static-prune layer: a per-unit oracle mapping sampled fault specs
//! to bit-lattice masking proofs.
//!
//! [`StaticPrior`] pairs the per-program [`BitTable`] (which sampled bits
//! of which *static* instruction are proven masked) with the golden site
//! trace (which static instruction the `n`-th *dynamic* fault site is).
//! The harness consults it per trial: when the sampled (site, bit) pair is
//! proven masked, the trial resolves as Benign with golden-identical
//! attribution and zero execution. Crucially the sample draw itself is
//! untouched — pruned and unpruned campaigns consume the identical trial
//! stream, so outcome counts, Wilson intervals, SDC attributions, and
//! checkpoint records are bit-for-bit equal; only the work is skipped.
//! (No mass is moved between bins, so estimates stay unbiased by
//! construction — "renormalization" is the no-op of keeping the stream.)

use flowery_analysis::statline::bits::{BitTable, BITS_VERSION};
use flowery_backend::AsmFaultSpec;
use flowery_ir::interp::FaultEffect;
use std::sync::Arc;

/// Provenance signature of the prune recipe itself: analyzer version plus
/// the engine's virtual-benign contract. Recorded (combined with each
/// unit's table fingerprint) in checkpoint headers and batch records;
/// resumes across differing signatures are refused rather than silently
/// mixed.
pub fn prune_signature() -> u64 {
    fnv1a(b"static-prune/virtual-benign/") ^ fnv1a(BITS_VERSION.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-unit prune oracle (assembly layer only).
pub struct StaticPrior {
    table: Arc<BitTable>,
    /// `site_map[i]` = static instruction index of dynamic fault site `i`
    /// in the golden run (a prefix — sites beyond the cap go unpruned).
    site_map: Arc<Vec<u32>>,
    /// `table.fingerprint(program_hash)`, recorded for provenance.
    table_hash: u64,
}

impl StaticPrior {
    pub fn new(table: Arc<BitTable>, site_map: Arc<Vec<u32>>, table_hash: u64) -> StaticPrior {
        StaticPrior { table, site_map, table_hash }
    }

    /// The prune-table fingerprint recorded in batch records.
    pub fn table_hash(&self) -> u64 {
        self.table_hash
    }

    /// Mean vulnerable fraction of the table (flagged-first ordering key).
    pub fn mean_vulnerable(&self) -> f64 {
        self.table.mean_vulnerable()
    }

    /// Total proven-masked (site, bit) pairs in the table.
    pub fn proven_pairs(&self) -> u64 {
        self.table.proven_pairs
    }

    /// If `spec` is provably masked, the instruction index it would land
    /// on (the virtual trial's attribution); `None` means run it for real.
    ///
    /// Only the plain bit-flip effect is prunable: the proofs are about
    /// destination bit flips, not bursts, flag strikes, memory-cell hits,
    /// or control-edge redirects. A double-bit flip is masked iff both
    /// bits are individually masked (tracked deviations compose
    /// pointwise). Sites past the golden run's site count never fire —
    /// the sampler draws within it — and sites past the trace cap stay
    /// unpruned.
    pub fn masked_inst(&self, spec: &AsmFaultSpec) -> Option<u32> {
        if spec.scope.is_some() || spec.effect != FaultEffect::Bits {
            return None;
        }
        let inst = *self.site_map.get(usize::try_from(spec.site_index).ok()?)?;
        let v = self.table.verdicts.get(inst as usize)?;
        if v.masked(spec.bit) && spec.second_bit.is_none_or(|b2| v.masked(b2)) {
            Some(inst)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_analysis::statline::bits::BitVerdict;

    fn prior(masked: u64) -> StaticPrior {
        let table = BitTable {
            verdicts: vec![BitVerdict { proven_masked: masked, vulnerable: !masked }],
            sites: 1,
            proven_pairs: masked.count_ones() as u64,
        };
        StaticPrior::new(Arc::new(table), Arc::new(vec![0]), 42)
    }

    #[test]
    fn masks_only_bit_effect_unscoped_singles_and_composed_doubles() {
        let p = prior(0b1010);
        assert_eq!(p.masked_inst(&AsmFaultSpec::single(0, 1)), Some(0));
        assert_eq!(p.masked_inst(&AsmFaultSpec::single(0, 0)), None);
        assert_eq!(p.masked_inst(&AsmFaultSpec::double(0, 1, 3)), Some(0));
        assert_eq!(p.masked_inst(&AsmFaultSpec::double(0, 1, 2)), None, "both bits must be proven");
        let mut burst = AsmFaultSpec::single(0, 1);
        burst.effect = FaultEffect::Burst { width: 2 };
        assert_eq!(p.masked_inst(&burst), None, "only the plain bit-flip effect is prunable");
        let scoped = AsmFaultSpec::single(0, 1).scoped(0, 1);
        assert_eq!(p.masked_inst(&scoped), None, "scoped re-sampling bypasses the prune");
        assert_eq!(p.masked_inst(&AsmFaultSpec::single(7, 1)), None, "sites past the trace cap stay unpruned");
    }

    #[test]
    fn signature_is_stable_and_version_bound() {
        assert_eq!(prune_signature(), prune_signature());
        assert_ne!(prune_signature(), 0);
    }
}
