//! Process-wide Ctrl-C (SIGINT) handling for graceful campaign drain.
//!
//! The first Ctrl-C sets a flag that the campaign drivers poll from their
//! progress callbacks: in-flight batches finish, the checkpoint is
//! flushed, and the process exits with a resume hint. A second Ctrl-C
//! while the drain is still running force-exits with the conventional
//! 128+SIGINT status.
//!
//! Implemented directly on `signal(2)` from the C runtime std already
//! links — the build environment has no registry access, so the usual
//! `ctrlc`/`signal-hook` crates are out of reach.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Install the SIGINT handler. Idempotent; a no-op on non-Unix hosts
/// (Ctrl-C then keeps its default kill behaviour, and checkpoints still
/// limit the loss to the in-flight batches).
pub fn install() {
    imp::install();
}

/// True once Ctrl-C has been pressed (or [`request`] called).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Trigger a drain programmatically — the coordinator uses this to treat
/// "campaign complete" and "Ctrl-C" as one shutdown path, and tests use
/// it in place of a real signal.
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clear the flag (tests only; real drains end with process exit).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_sigint(_: i32) {
        // Both calls are async-signal-safe: an atomic store and _exit.
        if REQUESTED.swap(true, Ordering::SeqCst) {
            unsafe { _exit(130) }
        }
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_roundtrip() {
        install();
        install(); // idempotent
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
    }
}
