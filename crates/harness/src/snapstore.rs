//! Persistent snapshot sets alongside the checkpoint log.
//!
//! A campaign's snapshot sets are pure functions of program content and
//! execution config, so they can be written once and reloaded on
//! `--resume` — the resumed run then performs *zero* golden re-executions
//! and zero snapshot re-captures. Sets live in a `<checkpoint>.snaps/`
//! directory next to the log, one file per content hash and layer, in the
//! stable checksummed format of `IrSnapshotSet::to_bytes` /
//! `AsmSnapshotSet::to_bytes`.
//!
//! Everything here is best-effort: a failed save costs a future
//! re-capture, a corrupt or stale file is rejected by the loader's
//! checksum/shape validation and simply falls back to capture. Loaded
//! sets are still geometry-checked by the cache before use.

use flowery_backend::{AsmProgram, AsmSnapshotSet};
use flowery_ir::interp::IrSnapshotSet;
use flowery_ir::Module;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent in-flight writes of the same set; the final
/// rename is what publishes a file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// On-disk home of a campaign's snapshot sets.
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// The store belonging to a checkpoint log: `<checkpoint>.snaps/`.
    pub fn for_checkpoint(checkpoint: &Path) -> SnapshotStore {
        let mut name = checkpoint.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        name.push(".snaps");
        SnapshotStore { dir: checkpoint.with_file_name(name) }
    }

    /// A store rooted at an explicit directory.
    pub fn at(dir: impl Into<PathBuf>) -> SnapshotStore {
        SnapshotStore { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, layer: &str, hash: u64) -> PathBuf {
        self.dir.join(format!("{layer}-{hash:016x}.snap"))
    }

    /// Load the IR snapshot set for the module with content hash `hash`.
    /// `None` on a missing, corrupt, truncated, or mismatched file.
    pub fn load_ir(&self, module: &Module, hash: u64) -> Option<IrSnapshotSet> {
        let bytes = fs::read(self.path("ir", hash)).ok()?;
        IrSnapshotSet::from_bytes(&bytes, module, hash).ok()
    }

    /// Persist an IR snapshot set. Returns whether the file was published.
    pub fn save_ir(&self, set: &IrSnapshotSet, hash: u64) -> bool {
        self.publish(self.path("ir", hash), set.to_bytes(hash))
    }

    /// Load the assembly snapshot set for the program with content hash
    /// `hash`.
    pub fn load_asm(&self, module: &Module, program: &AsmProgram, hash: u64) -> Option<AsmSnapshotSet> {
        let bytes = fs::read(self.path("asm", hash)).ok()?;
        AsmSnapshotSet::from_bytes(&bytes, module, program, hash).ok()
    }

    /// Persist an assembly snapshot set.
    pub fn save_asm(&self, set: &AsmSnapshotSet, hash: u64) -> bool {
        self.publish(self.path("asm", hash), set.to_bytes(hash))
    }

    /// Atomic write: unique tmp file, then rename. Concurrent savers of
    /// the same content race benignly — both write identical bytes.
    fn publish(&self, path: PathBuf, bytes: Vec<u8>) -> bool {
        if fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(".tmp-{}-{seq}", std::process::id()));
        if fs::write(&tmp, &bytes).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        fs::rename(&tmp, &path).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{module_hash, program_hash};
    use flowery_backend::{compile_module, BackendConfig, Machine};
    use flowery_ir::interp::{ExecConfig, Interpreter};

    fn module() -> Module {
        flowery_lang::compile(
            "t",
            "int main() { int s = 0; int i; for (i = 0; i < 800; i = i + 1) { s = s + i; } output(s); return 0; }",
        )
        .unwrap()
    }

    #[test]
    fn round_trips_both_layers_and_rejects_junk() {
        let dir = std::env::temp_dir().join(format!("flsnapstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::at(&dir);
        let m = module();
        let exec = ExecConfig::default();
        let mh = module_hash(&m);

        // Missing file: clean None.
        assert!(store.load_ir(&m, mh).is_none());

        let set = Interpreter::new(&m).capture_snapshots_auto(&exec);
        assert!(!set.is_empty());
        assert!(store.save_ir(&set, mh));
        let loaded = store.load_ir(&m, mh).expect("saved set loads");
        assert_eq!(loaded.golden(), set.golden());
        assert_eq!(loaded.len(), set.len());

        let p = compile_module(&m, &BackendConfig::default());
        let ph = program_hash(&p);
        let aset = Machine::new(&m, &p).capture_snapshots_auto(&exec);
        assert!(store.save_asm(&aset, ph));
        let aloaded = store.load_asm(&m, &p, ph).expect("saved asm set loads");
        assert_eq!(aloaded.golden(), aset.golden());

        // Corrupt the IR file: load degrades to None, never panics.
        let path = dir.join(format!("ir-{mh:016x}.snap"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_ir(&m, mh).is_none());

        // Wrong content hash (file saved under another key): rejected.
        assert!(store.load_asm(&m, &p, ph ^ 1).is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
