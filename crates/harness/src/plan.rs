//! The experiment matrix: benchmark × variant × layer decomposed into
//! [`TrialUnit`]s, the schedulable atoms of a campaign.

use flowery_backend::{compile_module, AsmProgram, BackendConfig};
use flowery_ir::Module;
use flowery_passes::{apply_flowery, choose_protection, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::Scale;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The execution layer a unit injects faults at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Layer {
    /// IR interpreter — the "LLVM level" of the paper.
    Ir,
    /// Machine simulator — the "assembly level".
    Asm,
}

/// The protection variant of a unit's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Variant {
    /// Unprotected baseline.
    Raw,
    /// Instruction duplication.
    Id,
    /// Instruction duplication + the Flowery mitigation.
    Flowery,
}

/// Stable identity of one cell of the experiment matrix. Keys are plain
/// data (no floats) so they hash, order, and round-trip exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitKey {
    pub bench: String,
    pub variant: Variant,
    /// Protection level in permille (1000 = full); 0 for [`Variant::Raw`].
    pub level_permille: u32,
    pub layer: Layer,
}

impl UnitKey {
    pub fn new(bench: &str, variant: Variant, level: f64, layer: Layer) -> UnitKey {
        UnitKey {
            bench: bench.to_string(),
            variant,
            level_permille: (level * 1000.0).round() as u32,
            layer,
        }
    }

    /// Protection level as a fraction.
    pub fn level(&self) -> f64 {
        self.level_permille as f64 / 1000.0
    }

    /// The string form used in checkpoint logs and progress output,
    /// e.g. `quicksort/Id@700/Asm`.
    pub fn id(&self) -> String {
        format!("{}/{:?}@{}/{:?}", self.bench, self.variant, self.level_permille, self.layer)
    }
}

impl fmt::Display for UnitKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// One schedulable campaign: a program and the layer to inject at.
#[derive(Clone)]
pub struct TrialUnit {
    pub key: UnitKey,
    pub module: Arc<Module>,
    /// Compiled program; present exactly when `key.layer == Layer::Asm`.
    pub program: Option<Arc<AsmProgram>>,
    /// The raw (unprotected) twin this variant's program was derived from.
    /// Purely an optimization hint: it lets the cache share the raw set's
    /// golden-prefix snapshots below the divergence point. Not part of the
    /// unit's identity (and therefore not in the matrix fingerprint).
    pub raw: Option<Arc<Module>>,
    /// The raw twin's compiled program, for assembly units.
    pub raw_program: Option<Arc<AsmProgram>>,
}

impl TrialUnit {
    pub fn ir(key: UnitKey, module: Arc<Module>) -> TrialUnit {
        assert_eq!(key.layer, Layer::Ir);
        TrialUnit { key, module, program: None, raw: None, raw_program: None }
    }

    pub fn asm(key: UnitKey, module: Arc<Module>, program: Arc<AsmProgram>) -> TrialUnit {
        assert_eq!(key.layer, Layer::Asm);
        TrialUnit {
            key,
            module,
            program: Some(program),
            raw: None,
            raw_program: None,
        }
    }

    /// Attach the raw twin (see [`TrialUnit::raw`]). `raw_program` should
    /// accompany assembly units and be `None` for IR units.
    pub fn with_raw(mut self, raw: Arc<Module>, raw_program: Option<Arc<AsmProgram>>) -> TrialUnit {
        self.raw = Some(raw);
        self.raw_program = raw_program;
        self
    }
}

/// Parameters for building the standard study matrix from workload names.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Workload names; empty means all benchmarks.
    pub benches: Vec<String>,
    /// Out-of-tree programs as `(name, MiniC source)`, compiled exactly
    /// like a workload and appended after `benches`. Sources must already
    /// be known to compile (validate before building); names must not
    /// collide with built-in benchmarks.
    pub sources: Vec<(String, String)>,
    pub scale: Scale,
    /// Protection levels for the Id / Flowery variants.
    pub levels: Vec<f64>,
    /// Trials for the per-instruction SDC profile driving selective
    /// protection (only used for levels below 1.0).
    pub profile_trials: u64,
    pub profile_seed: u64,
    pub backend: BackendConfig,
    pub threads: usize,
}

impl Default for MatrixSpec {
    fn default() -> MatrixSpec {
        MatrixSpec {
            benches: Vec::new(),
            sources: Vec::new(),
            scale: Scale::Standard,
            levels: vec![1.0],
            profile_trials: 1200,
            profile_seed: 0x51C2_3001 ^ 0x9E37_79B9,
            backend: BackendConfig::default(),
            threads: 0,
        }
    }
}

/// Content fingerprint of a built matrix: folds every unit's key together
/// with the content hash of its program (printed IR, plus the machine
/// listing for assembly units). A distributed coordinator and its workers
/// build the matrix independently from the same plan; comparing
/// fingerprints before any lease is granted catches a nondeterministic
/// build or divergent code up front, rather than as corrupt results.
pub fn matrix_fingerprint(units: &[TrialUnit]) -> u64 {
    let mut text = String::new();
    for u in units {
        text.push_str(&u.key.id());
        text.push_str(&format!(":{:016x}", crate::cache::module_hash(&u.module)));
        if let Some(p) = &u.program {
            text.push_str(&format!(":{:016x}", crate::cache::program_hash(p)));
        }
        text.push('\n');
    }
    crate::cache::fnv1a(text.as_bytes())
}

/// Build the standard matrix: for every benchmark, Raw at both layers,
/// Id at both layers per level, and Id+Flowery at the assembly layer per
/// level (the paper's protagonist configuration).
pub fn build_matrix(spec: &MatrixSpec) -> Vec<TrialUnit> {
    let names: Vec<&str> = if spec.benches.is_empty() && spec.sources.is_empty() {
        flowery_workloads::NAMES.to_vec()
    } else {
        spec.benches.iter().map(|s| s.as_str()).collect()
    };
    let mut programs: Vec<(String, Arc<Module>)> = names
        .iter()
        .map(|&name| (name.to_string(), Arc::new(flowery_workloads::workload(name, spec.scale).compile())))
        .collect();
    for (name, src) in &spec.sources {
        let m =
            flowery_lang::compile(name, src).unwrap_or_else(|e| panic!("matrix source '{name}' does not compile: {e}"));
        programs.push((name.clone(), Arc::new(m)));
    }
    let mut units = Vec::new();
    for (name, raw) in &programs {
        let name = name.as_str();
        let raw = raw.clone();
        let raw_prog = Arc::new(compile_module(&raw, &spec.backend));
        units.push(TrialUnit::ir(UnitKey::new(name, Variant::Raw, 0.0, Layer::Ir), raw.clone()));
        units.push(TrialUnit::asm(
            UnitKey::new(name, Variant::Raw, 0.0, Layer::Asm),
            raw.clone(),
            raw_prog.clone(),
        ));
        let needs_profile = spec.levels.iter().any(|&l| (l - 1.0).abs() >= 1e-9);
        let profile = needs_profile.then(|| {
            let mut cfg = flowery_inject::CampaignConfig::with_trials(spec.profile_trials);
            cfg.seed = spec.profile_seed;
            cfg.threads = spec.threads;
            flowery_inject::profile_sdc(&raw, &cfg)
        });
        for &level in &spec.levels {
            let plan = if (level - 1.0).abs() < 1e-9 {
                ProtectionPlan::full(&raw)
            } else {
                choose_protection(&raw, profile.as_ref().unwrap(), level)
            };
            let mut id = (*raw).clone();
            duplicate_module(&mut id, &plan, &DupConfig::default());
            let mut flowery = id.clone();
            apply_flowery(&mut flowery, &FloweryConfig::default());
            let id = Arc::new(id);
            let id_prog = Arc::new(compile_module(&id, &spec.backend));
            let fl = Arc::new(flowery);
            let fl_prog = Arc::new(compile_module(&fl, &spec.backend));
            units.push(
                TrialUnit::ir(UnitKey::new(name, Variant::Id, level, Layer::Ir), id.clone())
                    .with_raw(raw.clone(), None),
            );
            units.push(
                TrialUnit::asm(UnitKey::new(name, Variant::Id, level, Layer::Asm), id, id_prog)
                    .with_raw(raw.clone(), Some(raw_prog.clone())),
            );
            units.push(
                TrialUnit::asm(UnitKey::new(name, Variant::Flowery, level, Layer::Asm), fl, fl_prog)
                    .with_raw(raw.clone(), Some(raw_prog.clone())),
            );
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_keys_are_stable_and_exact() {
        let k = UnitKey::new("quicksort", Variant::Id, 0.7, Layer::Asm);
        assert_eq!(k.level_permille, 700);
        assert!((k.level() - 0.7).abs() < 1e-12);
        assert_eq!(k.id(), "quicksort/Id@700/Asm");
        let json = serde_json::to_string(&k).unwrap();
        let back: UnitKey = serde_json::from_str(&json).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn matrix_shape_for_one_bench() {
        let spec = MatrixSpec {
            benches: vec!["crc32".into()],
            scale: Scale::Tiny,
            levels: vec![1.0],
            ..Default::default()
        };
        let units = build_matrix(&spec);
        // Raw@Ir, Raw@Asm, Id@Ir, Id@Asm, Flowery@Asm.
        assert_eq!(units.len(), 5);
        for u in &units {
            assert_eq!(u.program.is_some(), u.key.layer == Layer::Asm, "{}", u.key);
        }
        let ids: Vec<String> = units.iter().map(|u| u.key.id()).collect();
        assert!(ids.contains(&"crc32/Raw@0/Ir".to_string()));
        assert!(ids.contains(&"crc32/Flowery@1000/Asm".to_string()));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let spec = MatrixSpec {
            benches: vec!["crc32".into()],
            scale: Scale::Tiny,
            levels: vec![1.0],
            ..Default::default()
        };
        let a = build_matrix(&spec);
        let b = build_matrix(&spec);
        assert_eq!(matrix_fingerprint(&a), matrix_fingerprint(&b), "same plan, same fingerprint");
        assert_ne!(
            matrix_fingerprint(&a),
            matrix_fingerprint(&a[1..]),
            "different units, different fingerprint"
        );
    }
}
