//! # flowery-harness
//!
//! The campaign engine behind the cross-layer study: it decomposes the
//! experiment matrix (benchmark × variant × layer) into fixed-size trial
//! batches and drains them with a single work-stealing scheduler, instead
//! of running each campaign behind its own thread-pool barrier.
//!
//! The subsystem is built from four pieces:
//!
//! * [`plan`] — [`UnitKey`]/[`TrialUnit`]: the schedulable atoms, plus
//!   [`build_matrix`] for the standard study matrix;
//! * [`cache`] — [`GoldenCache`]: golden runs keyed by program content
//!   hash, shared across units and with the pipeline's overhead
//!   measurements;
//! * [`checkpoint`] — an append-only JSONL log of completed batches that
//!   makes interrupted campaigns resumable bit-for-bit;
//! * [`engine`] — [`run_units`]: batch scheduling, adaptive trial counts
//!   (Wilson 95% CI early stop), and live [`metrics`].
//!
//! Because each trial is a pure function of `(seed, trial index)`, the
//! engine's results are identical for any thread count, any interleaving,
//! and any interrupt/resume split — a campaign stopped early by the CI
//! rule reports exactly the counts a fixed-length campaign of the same
//! prefix would.

pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod explore;
pub mod incremental;
pub mod metrics;
pub mod plan;
pub mod prior;
pub mod progress;
pub mod shutdown;
pub mod snapstore;

pub use cache::{module_hash, program_hash, CacheStats, GoldenCache};
pub use checkpoint::{
    canonicalize, canonicalize_regions, compact, load as load_checkpoint, load_full as load_checkpoint_full,
    write_canonical, write_canonical_full, BatchRecord, CheckpointLog, Header, RegionRecord,
};
pub use engine::{run_units, CampaignReport, Control, HarnessConfig, RunOptions, UnitResult, UnitRunner};
pub use explore::{explore, render_table, DesignPoint, ExploreReport, ExploreSpec, ModelFrontier, WorkloadReport};
pub use incremental::{
    compose_units, fold_task_result, plan_diff, region_fingerprint, region_records, run_diff, run_region_task,
    unit_region_set, unit_salt, Baseline, DiffReport, DiffTask, DiffUnitReport, RegionReport, RegionTaskResult,
};
pub use metrics::{DistStats, Metrics, MetricsSnapshot, WorkerStats};
pub use plan::{build_matrix, matrix_fingerprint, Layer, MatrixSpec, TrialUnit, UnitKey, Variant};
pub use prior::{prune_signature, StaticPrior};
pub use progress::{BatchOutcome, UnitProgress};
pub use snapstore::SnapshotStore;
