//! The work-stealing campaign engine.
//!
//! Every unit's trial schedule is cut into fixed-size batches; worker
//! threads claim batches from a shared per-unit cursor, preferring "their"
//! unit but stealing from any unfinished one, so a single pool drains the
//! whole matrix without per-campaign barriers. Trial `i` of a unit is a
//! pure function of `(seed, i)`, which makes three properties fall out:
//!
//! * **thread independence** — results are identical for any worker count;
//! * **resumability** — completed batches replayed from a checkpoint log
//!   are indistinguishable from freshly executed ones;
//! * **deterministic early stop** — the adaptive rule walks completed
//!   batches in index order and keeps the shortest prefix whose Wilson
//!   95% half-width on the SDC rate meets the target, so the stop point
//!   never depends on execution order. Batches that finished beyond the
//!   chosen prefix are simply discarded.
//!
//! Batch execution is also exposed as a library call ([`UnitRunner`]):
//! the distributed workers in `flowery-dist` lease batch indices from a
//! coordinator and run them through exactly the code path the in-process
//! workers use, which is what makes a sharded campaign byte-identical to
//! a local one.

use crate::cache::GoldenCache;
use crate::checkpoint::{CheckpointLog, Header, MAGIC, VERSION};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan::{Layer, TrialUnit, UnitKey};
use crate::prior::StaticPrior;
use crate::progress::{merge_region_counts, BatchOutcome, UnitProgress};
use flowery_faultmodel::{DetectorSpec, ModelSpec};
use flowery_inject::campaign::{AsmTrialRunner, IrTrialRunner};
use flowery_inject::{Estimate, Outcome, OutcomeCounts};
use flowery_ir::interp::ExecConfig;
use flowery_ir::value::{FuncId, InstId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

pub use crate::checkpoint::BatchRecord;

/// Engine parameters. Everything here (except `threads`) shapes the trial
/// schedule and is recorded in checkpoint headers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarnessConfig {
    /// Trials per scheduling batch (also the early-stop granularity).
    pub batch_size: u64,
    /// Trial cap per unit (the paper's 3,000).
    pub max_trials: u64,
    /// Floor below which the adaptive rule never stops.
    pub min_trials: u64,
    /// Target half-width of the 95% CI on the SDC rate; `None` disables
    /// adaptive stopping (every unit runs `max_trials`).
    pub ci_target: Option<f64>,
    /// Base seed; trial `i` of every unit derives from `(seed, i)`.
    pub seed: u64,
    /// Worker threads (0 = all cores). Does not affect results.
    pub threads: usize,
    /// Two bit flips per fault instead of one. Legacy switch: shorthand
    /// for `fault_model: double-bit-reg`, kept for config compatibility.
    pub double_bit: bool,
    /// Fault model every unit's trials are sampled from (one schedule =
    /// one model; sweeps run the engine once per model).
    #[serde(default)]
    pub fault_model: ModelSpec,
    /// Modeled hardware detectors post-classifying outcomes.
    #[serde(default)]
    pub detectors: Vec<DetectorSpec>,
    /// Fast-forward trials from cached golden-run snapshots instead of
    /// re-executing the golden prefix. Bit-identical results either way
    /// (and therefore not part of the checkpoint header); default on.
    pub snapshots: bool,
    /// Rejection-skip (site, bit) pairs the static bit-lattice analysis
    /// proves masked: the sampler draws the identical trial stream, but
    /// proven-masked draws resolve as Benign without execution (so counts
    /// and Wilson CIs stay bit-identical to an unpruned run), and units
    /// are seeded flagged-first by static vulnerable-bit density. Assembly
    /// layer only; recorded in the checkpoint header (mixed-prune resumes
    /// are refused). Default off.
    #[serde(default)]
    pub static_prune: bool,
    pub exec: ExecConfig,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig {
            batch_size: 250,
            max_trials: 3000,
            min_trials: 500,
            ci_target: None,
            seed: 0x0F10_EE41,
            threads: 0,
            double_bit: false,
            fault_model: ModelSpec::SingleBitReg,
            detectors: Vec::new(),
            snapshots: true,
            static_prune: false,
            exec: ExecConfig::default(),
        }
    }
}

impl HarnessConfig {
    /// The checkpoint header this configuration demands.
    pub fn header(&self) -> Header {
        Header {
            magic: MAGIC.to_string(),
            version: VERSION,
            seed: self.seed,
            batch_size: self.batch_size,
            max_trials: self.max_trials,
            min_trials: self.min_trials,
            ci_target: self.ci_target,
            double_bit: self.double_bit,
            fault_model: self.effective_model(),
            detectors: self.detectors.clone(),
            exec_mode: self.exec.executor,
            region_schema: flowery_regions::REGION_SCHEMA_VERSION,
            static_prune: if self.static_prune { crate::prior::prune_signature() } else { 0 },
        }
    }

    /// The model trials are sampled from, resolving the legacy
    /// `double_bit` switch against the explicit `fault_model` field.
    pub fn effective_model(&self) -> ModelSpec {
        if self.double_bit && self.fault_model == ModelSpec::SingleBitReg {
            ModelSpec::DoubleBitReg
        } else {
            self.fault_model
        }
    }

    /// Schedule length per unit, in batches.
    pub fn max_batches(&self) -> u64 {
        self.max_trials.div_ceil(self.batch_size)
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// Verdict of the progress callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    Continue,
    /// Stop claiming new batches; in-flight batches finish and are
    /// checkpointed, then the engine returns with `interrupted = true`.
    Stop,
}

/// Optional engine inputs.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Log to append completed batches to.
    pub checkpoint: Option<&'a CheckpointLog>,
    /// Batches replayed from a previous run (see [`crate::checkpoint::load`]).
    pub preloaded: Vec<BatchRecord>,
    /// Called after every batch with fresh metrics; may stop the run.
    pub progress: Option<&'a (dyn Fn(&MetricsSnapshot) -> Control + Sync)>,
    /// Fold `preloaded` and report without executing anything: units whose
    /// replayed batches do not decide them are listed as `pending`. Used by
    /// the distributed coordinator, which merges remotely executed batches
    /// and only needs the deterministic fold.
    pub replay_only: bool,
}

/// Final tally for one completed unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitResult {
    pub key: UnitKey,
    /// Trials actually counted (a batch-aligned prefix of the schedule).
    pub trials: u64,
    pub counts: OutcomeCounts,
    /// SDC rate with Wilson 95% half-width.
    pub sdc: Estimate,
    pub stopped_early: bool,
    /// IR layer: SDC attributions by static instruction.
    pub sdc_by_inst: HashMap<(FuncId, InstId), u64>,
    /// Assembly layer: program indices of SDC injections, in trial order.
    pub sdc_insts: Vec<u32>,
    /// Per-region outcome tallies, keyed by function name and sorted by
    /// it; `flowery_regions::OTHER_REGION` collects unattributable trials.
    #[serde(default)]
    pub region_counts: Vec<(String, OutcomeCounts)>,
    /// Trials resolved virtually by the static prune (subset of
    /// `counts.benign`); 0 when pruning was off.
    #[serde(default)]
    pub pruned: u64,
    pub golden_dyn_insts: u64,
    pub golden_sites: u64,
    /// Assembly layer only; 0 at IR.
    pub golden_cycles: u64,
}

/// Outcome of one engine run.
pub struct CampaignReport {
    /// Completed units, in input order. When `interrupted`, units whose
    /// schedule did not finish are listed in `pending` instead.
    pub units: Vec<UnitResult>,
    pub pending: Vec<UnitKey>,
    pub metrics: MetricsSnapshot,
    pub interrupted: bool,
    /// First checkpoint I/O error, if any (the run stops on one).
    pub error: Option<String>,
}

struct UnitState {
    cursor: AtomicU64,
    done: AtomicBool,
    /// Batches recorded (executed or reused) — feeds the ETA estimate.
    recorded: AtomicU64,
    progress: Mutex<UnitProgress>,
}

struct Shared<'a> {
    units: &'a [TrialUnit],
    states: Vec<UnitState>,
    /// Unit indices in seeding order. Identity order normally; with
    /// static pruning on, units sort by descending static vulnerable-bit
    /// density (flagged-first), so the densest campaigns start earliest.
    /// Scheduling only — results are order-independent by construction.
    order: Vec<usize>,
    cfg: &'a HarnessConfig,
    header: Header,
    max_batches: u64,
    cache: &'a GoldenCache,
    metrics: Metrics,
    checkpoint: Option<&'a CheckpointLog>,
    progress: Option<&'a (dyn Fn(&MetricsSnapshot) -> Control + Sync)>,
    stop: AtomicBool,
    error: Mutex<Option<String>>,
}

impl Shared<'_> {
    fn snapshot(&self) -> MetricsSnapshot {
        let mut remaining = 0u64;
        for st in &self.states {
            if !st.done.load(Ordering::Relaxed) {
                let rec = st.recorded.load(Ordering::Relaxed).min(self.max_batches);
                remaining += (self.max_batches - rec) * self.cfg.batch_size;
            }
        }
        self.metrics.snapshot(self.units.len(), remaining, self.cache.stats())
    }

    /// Record a finished batch: checkpoint it, fold it into the unit's
    /// progress, update metrics, and poll the progress callback.
    fn finish_batch(&self, ui: usize, batch: u64, data: BatchOutcome) {
        if let Some(log) = self.checkpoint {
            let rec = data.to_record(self.units[ui].key.clone(), batch, self.cfg.effective_model());
            if let Err(e) = log.record_batch(&rec) {
                self.error.lock().unwrap().get_or_insert(e);
                self.stop.store(true, Ordering::Relaxed);
            }
        }
        // The IR interpreter has a single engine; only assembly-layer work
        // under `compiled` runs on the threaded-code executor.
        let compiled =
            self.units[ui].key.layer == Layer::Asm && self.cfg.exec.executor == flowery_ir::interp::ExecMode::Compiled;
        self.metrics
            .record_batch(&data.counts, false, data.ff_insts, data.exec_insts, compiled);
        if data.pruned > 0 {
            self.metrics.record_pruned(data.pruned);
        }
        let st = &self.states[ui];
        st.recorded.fetch_add(1, Ordering::Relaxed);
        let newly_done = st.progress.lock().unwrap().insert(batch, data, &self.header);
        if newly_done {
            st.done.store(true, Ordering::Relaxed);
            self.metrics.record_unit_done();
        }
        if let Some(cb) = self.progress {
            if cb(&self.snapshot()) == Control::Stop {
                self.stop.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// A per-worker trial executor for one unit, built on the cached golden.
enum RunnerInner<'u> {
    Ir(IrTrialRunner<'u>),
    Asm(AsmTrialRunner<'u>),
}

/// Executes one unit's trial batches. This is the engine's inner loop
/// exposed as a library call: the distributed workers of `flowery-dist`
/// build one per leased unit (goldens and snapshot sets come from the
/// worker-local [`GoldenCache`]) and produce [`BatchOutcome`]s that merge
/// byte-identically with locally executed ones.
pub struct UnitRunner<'u> {
    inner: RunnerInner<'u>,
    unit: &'u TrialUnit,
    /// Static prune oracle, present when `cfg.static_prune` and this is
    /// an assembly unit (the bit lattice is an assembly-layer analysis).
    prior: Option<StaticPrior>,
}

impl<'u> UnitRunner<'u> {
    pub fn new(unit: &'u TrialUnit, cache: &GoldenCache, cfg: &HarnessConfig) -> UnitRunner<'u> {
        let exec = &cfg.exec;
        let inner = match unit.key.layer {
            Layer::Ir => {
                // With snapshots on, the set is fetched first: its capture
                // run doubles as the golden run (and seeds the golden
                // cache), so no separate golden execution happens.
                let r = if cfg.snapshots {
                    let set = cache.ir_snapshots_for(&unit.module, unit.raw.as_deref(), exec);
                    let mut r = IrTrialRunner::with_golden(&unit.module, set.golden().clone(), exec);
                    r.attach_snapshots(set);
                    r
                } else {
                    let g = cache.ir_golden(&unit.module, exec);
                    IrTrialRunner::with_golden(&unit.module, (*g).clone(), exec)
                };
                RunnerInner::Ir(r)
            }
            Layer::Asm => {
                let p = unit.program.as_ref().expect("asm unit has a program");
                let r = if cfg.snapshots {
                    let raw = unit.raw.as_deref().zip(unit.raw_program.as_deref());
                    let set = cache.asm_snapshots_for(&unit.module, p, raw, exec);
                    let mut r = AsmTrialRunner::with_golden(&unit.module, p, set.golden().clone(), exec);
                    r.attach_snapshots(set);
                    r
                } else {
                    let g = cache.asm_golden(&unit.module, p, exec);
                    AsmTrialRunner::with_golden(&unit.module, p, (*g).clone(), exec)
                };
                RunnerInner::Asm(r)
            }
        };
        let prior = (cfg.static_prune && unit.key.layer == Layer::Asm).then(|| {
            let p = unit.program.as_ref().expect("asm unit has a program");
            let table = cache.asm_bits(&unit.module, p);
            let map = cache.asm_site_map(&unit.module, p, exec);
            let hash = table.fingerprint(crate::cache::program_hash(p));
            StaticPrior::new(table, map, hash)
        });
        UnitRunner { inner, unit, prior }
    }

    /// Run batch `batch` of the schedule `cfg` defines: trial indices
    /// `[batch * batch_size, min((batch+1) * batch_size, max_trials))`.
    pub fn run_batch(&mut self, cfg: &HarnessConfig, batch: u64) -> BatchOutcome {
        let start = batch * cfg.batch_size;
        let end = (start + cfg.batch_size).min(cfg.max_trials);
        let model = cfg.effective_model();
        let mut data = BatchOutcome {
            prune_table: self.prior.as_ref().map_or(0, |p| p.table_hash()),
            ..BatchOutcome::default()
        };
        // Each trial is attributed to the region (function) containing its
        // injection site; trials whose fault never landed (e.g. crash in
        // the prefix) fall into the OTHER_REGION bucket.
        let attribute = |data: &mut BatchOutcome, name: &str, outcome: Outcome| {
            let i = match data.region_counts.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => i,
                Err(i) => {
                    data.region_counts.insert(i, (name.to_string(), OutcomeCounts::default()));
                    i
                }
            };
            data.region_counts[i].1.record(outcome);
        };
        for i in start..end {
            match &mut self.inner {
                RunnerInner::Ir(r) => {
                    let t = r.run_trial_model(cfg.seed, i, model, &cfg.detectors);
                    data.counts.record(t.outcome);
                    data.ff_insts += t.ff_insts;
                    data.exec_insts += t.exec_insts;
                    let name = t
                        .injected_at
                        .map(|loc| self.unit.module.func(loc.0).name.as_str())
                        .unwrap_or(flowery_regions::OTHER_REGION);
                    attribute(&mut data, name, t.outcome);
                    if t.outcome == Outcome::Sdc {
                        if let Some(loc) = t.injected_at {
                            *data.sdc_by_inst.entry(loc).or_insert(0) += 1;
                        }
                    }
                }
                RunnerInner::Asm(r) => {
                    let t = match &self.prior {
                        Some(prior) => {
                            let (t, pruned) =
                                r.run_trial_model_pruned(cfg.seed, i, model, &cfg.detectors, &|s| prior.masked_inst(s));
                            if pruned {
                                data.pruned += 1;
                            }
                            t
                        }
                        None => r.run_trial_model(cfg.seed, i, model, &cfg.detectors),
                    };
                    data.counts.record(t.outcome);
                    data.ff_insts += t.ff_insts;
                    data.exec_insts += t.exec_insts;
                    let program = self.unit.program.as_ref().expect("asm unit has a program");
                    let name = t
                        .injected_inst
                        .and_then(|idx| {
                            program
                                .funcs
                                .iter()
                                .find(|f| (f.entry..f.end).contains(&idx))
                                .map(|f| f.name.as_str())
                        })
                        .unwrap_or(flowery_regions::OTHER_REGION);
                    attribute(&mut data, name, t.outcome);
                    if t.outcome == Outcome::Sdc {
                        if let Some(idx) = t.injected_inst {
                            data.sdc_insts.push(idx);
                        }
                    }
                }
            }
        }
        data
    }
}

fn worker(windex: usize, sh: &Shared<'_>) {
    let mut runners: HashMap<usize, UnitRunner<'_>> = HashMap::new();
    let n = sh.units.len();
    loop {
        if sh.stop.load(Ordering::Relaxed) {
            return;
        }
        // Prefer unit `windex % n` of the seeding order, steal from the
        // rest in round-robin (flagged-first when pruning is on).
        let mut claimed = None;
        'scan: for off in 0..n {
            let ui = sh.order[(windex + off) % n];
            let st = &sh.states[ui];
            if st.done.load(Ordering::Relaxed) {
                continue;
            }
            loop {
                let b = st.cursor.fetch_add(1, Ordering::Relaxed);
                if b >= sh.max_batches {
                    continue 'scan;
                }
                // Batches satisfied by a checkpoint are skipped, not re-run.
                if sh.states[ui].progress.lock().unwrap().has_batch(b) {
                    continue;
                }
                claimed = Some((ui, b));
                break 'scan;
            }
        }
        let Some((ui, b)) = claimed else { return };
        let runner = runners
            .entry(ui)
            .or_insert_with(|| UnitRunner::new(&sh.units[ui], sh.cache, sh.cfg));
        let data = runner.run_batch(sh.cfg, b);
        sh.finish_batch(ui, b, data);
    }
}

/// Run every unit's campaign under one scheduler. See the module docs for
/// the determinism guarantees.
pub fn run_units(
    units: &[TrialUnit],
    cfg: &HarnessConfig,
    cache: &GoldenCache,
    opts: RunOptions<'_>,
) -> CampaignReport {
    assert!(cfg.batch_size > 0 && cfg.max_trials > 0, "empty schedule");
    let max_batches = cfg.max_batches();
    let metrics = Metrics::with_mode(cfg.exec.executor);
    if units.is_empty() {
        return CampaignReport {
            units: Vec::new(),
            pending: Vec::new(),
            metrics: metrics.snapshot(0, 0, cache.stats()),
            interrupted: false,
            error: None,
        };
    }

    let states: Vec<UnitState> = units
        .iter()
        .map(|_| UnitState {
            cursor: AtomicU64::new(0),
            done: AtomicBool::new(false),
            recorded: AtomicU64::new(0),
            progress: Mutex::new(UnitProgress::new(max_batches)),
        })
        .collect();

    // Seeding order: identity normally; with static pruning, assembly
    // units sort by descending mean vulnerable-bit density (statically
    // flagged-dense programs first — the lint drives the sampler). IR
    // units rank as fully vulnerable (no bit proofs at that layer). The
    // bit tables computed here are cached, so the per-unit runners reuse
    // them for the prune oracle itself.
    let order: Vec<usize> = if cfg.static_prune {
        let density: Vec<f64> = units
            .iter()
            .map(|u| match (&u.key.layer, u.program.as_ref()) {
                (Layer::Asm, Some(p)) => {
                    let table = cache.asm_bits(&u.module, p);
                    metrics.record_bits_proven(table.proven_pairs);
                    table.mean_vulnerable()
                }
                _ => 1.0,
            })
            .collect();
        let mut order: Vec<usize> = (0..units.len()).collect();
        order.sort_by(|&a, &b| {
            density[b]
                .partial_cmp(&density[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    } else {
        (0..units.len()).collect()
    };

    let sh = Shared {
        units,
        states,
        order,
        cfg,
        header: cfg.header(),
        max_batches,
        cache,
        metrics,
        checkpoint: opts.checkpoint,
        progress: opts.progress,
        stop: AtomicBool::new(false),
        error: Mutex::new(None),
    };

    // Replay checkpointed batches before any worker starts.
    let key_index: HashMap<&UnitKey, usize> = units.iter().enumerate().map(|(i, u)| (&u.key, i)).collect();
    for rec in &opts.preloaded {
        let Some(&ui) = key_index.get(&rec.unit) else { continue };
        if rec.batch >= max_batches {
            continue;
        }
        // Batches sampled under a different fault model belong to a
        // different schedule; replaying them would conflate models.
        if rec.fault_model != cfg.effective_model() {
            continue;
        }
        // Same for prune provenance: outcome-identical, but a canonical
        // log must not mix audited and unaudited trials (see checkpoint).
        // Only assembly units carry a prune table — IR records are 0
        // under both modes.
        if rec.unit.layer == Layer::Asm && (rec.prune_table != 0) != cfg.static_prune {
            continue;
        }
        let st = &sh.states[ui];
        let mut p = st.progress.lock().unwrap();
        if p.has_batch(rec.batch) {
            continue;
        }
        sh.metrics.record_batch(&rec.counts, true, 0, 0, false);
        if rec.pruned > 0 {
            sh.metrics.record_pruned(rec.pruned);
        }
        st.recorded.fetch_add(1, Ordering::Relaxed);
        if p.insert(rec.batch, BatchOutcome::from_record(rec), &sh.header) {
            st.done.store(true, Ordering::Relaxed);
            sh.metrics.record_unit_done();
        }
    }

    if !opts.replay_only {
        std::thread::scope(|scope| {
            for w in 0..cfg.effective_threads() {
                let sh = &sh;
                scope.spawn(move || worker(w, sh));
            }
        });
    }

    // Merge: for each decided unit, fold batches 0..k in index order.
    let mut results = Vec::new();
    let mut pending = Vec::new();
    for (ui, unit) in units.iter().enumerate() {
        let p = sh.states[ui].progress.lock().unwrap();
        let Some(k) = p.decided() else {
            pending.push(unit.key.clone());
            continue;
        };
        let mut counts = OutcomeCounts::default();
        let mut sdc_by_inst: HashMap<(FuncId, InstId), u64> = HashMap::new();
        let mut sdc_insts = Vec::new();
        let mut region_counts = Vec::new();
        let mut pruned = 0;
        for b in 0..k {
            let data = p.batch(b).expect("decided prefix is complete");
            counts.merge(&data.counts);
            pruned += data.pruned;
            for (loc, n) in &data.sdc_by_inst {
                *sdc_by_inst.entry(*loc).or_insert(0) += n;
            }
            sdc_insts.extend_from_slice(&data.sdc_insts);
            merge_region_counts(&mut region_counts, &data.region_counts);
        }
        let trials = (k * cfg.batch_size).min(cfg.max_trials);
        let (golden_dyn_insts, golden_sites, golden_cycles) = match unit.key.layer {
            Layer::Ir => {
                let g = cache.ir_golden(&unit.module, &cfg.exec);
                (g.dyn_insts, g.fault_sites, 0)
            }
            Layer::Asm => {
                let prog = unit.program.as_ref().expect("asm unit has a program");
                let g = cache.asm_golden(&unit.module, prog, &cfg.exec);
                (g.dyn_insts, g.fault_sites, g.cycles)
            }
        };
        results.push(UnitResult {
            key: unit.key.clone(),
            trials,
            counts,
            sdc: Estimate::proportion(counts.sdc, trials),
            stopped_early: trials < cfg.max_trials,
            sdc_by_inst,
            sdc_insts,
            region_counts,
            pruned,
            golden_dyn_insts,
            golden_sites,
            golden_cycles,
        });
    }

    let interrupted = sh.stop.load(Ordering::Relaxed);
    let metrics = sh.snapshot();
    let error = sh.error.lock().unwrap().clone();
    CampaignReport { units: results, pending, metrics, interrupted, error }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_rule_is_order_independent() {
        let cfg = HarnessConfig {
            batch_size: 10,
            max_trials: 40,
            min_trials: 20,
            ci_target: Some(0.2),
            ..Default::default()
        };
        let rule = cfg.header();
        let quiet = || BatchOutcome {
            counts: OutcomeCounts { benign: 10, ..Default::default() },
            ..Default::default()
        };
        // In-order completion: batch 1 decides (20 trials, 0 SDC).
        let mut a = UnitProgress::new(4);
        assert!(!a.insert(0, quiet(), &rule));
        assert!(a.insert(1, quiet(), &rule));
        // Out-of-order completion decides identically.
        let mut b = UnitProgress::new(4);
        assert!(!b.insert(3, quiet(), &rule));
        assert!(!b.insert(1, quiet(), &rule));
        assert!(b.insert(0, quiet(), &rule));
        assert_eq!(a.decided(), b.decided());
        // 0 SDC in 20 trials: Wilson half-width ~0.087 <= 0.2.
        assert_eq!(a.decided(), Some(2));
    }

    #[test]
    fn without_ci_target_only_the_full_schedule_decides() {
        let cfg = HarnessConfig {
            batch_size: 10,
            max_trials: 25,
            ci_target: None,
            ..Default::default()
        };
        let rule = cfg.header();
        let mut p = UnitProgress::new(3);
        let full = |n| BatchOutcome {
            counts: OutcomeCounts { benign: n, ..Default::default() },
            ..Default::default()
        };
        assert!(!p.insert(0, full(10), &rule));
        assert!(!p.insert(1, full(10), &rule));
        assert!(p.insert(2, full(5), &rule));
        assert_eq!(p.decided(), Some(3));
    }
}
