//! Design-space exploration: fault model × protection (variant, level) ×
//! modeled hardware-detector set, reduced to per-workload cost/coverage
//! Pareto frontiers.
//!
//! The sweep runs at the assembly layer, where both axes of the trade-off
//! are observable: cost is the golden-run cycle overhead of the protected
//! program over its raw twin plus the modeled detector tax (see
//! [`flowery_faultmodel::DetectorSpec::overhead_permille`]), and coverage
//! is the SDC reduction relative to the raw, detector-free baseline under
//! the *same* fault model.
//!
//! Detectors never change execution — they post-classify would-be SDCs by
//! the injected fault's class (see [`flowery_faultmodel`]). The explorer
//! exploits that: each (model, unit) campaign executes its trials **once**
//! with no detectors, re-derives the sampled [`AsmFaultSpec`] (the model
//! is deterministic in `(seed, trial)`), and scores every detector set
//! against the same trial stream. Adding a detector set to the sweep costs
//! zero extra executions; goldens and snapshot sets come from the shared
//! [`GoldenCache`], so they are captured once across the whole sweep.
//!
//! [`AsmFaultSpec`]: flowery_backend::AsmFaultSpec

use crate::cache::GoldenCache;
use crate::plan::{build_matrix, Layer, MatrixSpec, TrialUnit, Variant};
use flowery_faultmodel::{
    any_catches, classify_asm_fault, detector_overhead_permille, flip_count, DetectorSpec, ModelSpec, REGISTERED_MODELS,
};
use flowery_inject::campaign::AsmTrialRunner;
use flowery_inject::{Coverage, Estimate, Outcome, OutcomeCounts};
use flowery_ir::interp::ExecConfig;
use flowery_workloads::Scale;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What to sweep.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// Workload names; empty means every benchmark.
    pub benches: Vec<String>,
    pub scale: Scale,
    /// Fault models; each gets its own baseline and frontier.
    pub models: Vec<ModelSpec>,
    /// Detector combinations; the empty set is always evaluated (it is the
    /// coverage baseline) whether listed or not.
    pub detector_sets: Vec<Vec<DetectorSpec>>,
    /// Protection levels for the Id / Flowery variants.
    pub levels: Vec<f64>,
    /// Trials per (model, unit) campaign.
    pub trials: u64,
    pub seed: u64,
    /// Trials for the per-instruction SDC profile behind selective
    /// protection (levels below 1.0).
    pub profile_trials: u64,
    /// Worker threads (0 = all cores). Does not affect results.
    pub threads: usize,
    /// Fast-forward trials from cached snapshots; bit-identical either way.
    pub snapshots: bool,
    pub exec: ExecConfig,
}

impl Default for ExploreSpec {
    fn default() -> ExploreSpec {
        ExploreSpec {
            benches: Vec::new(),
            scale: Scale::Standard,
            models: REGISTERED_MODELS.to_vec(),
            detector_sets: vec![
                vec![],
                vec![DetectorSpec::Parity],
                vec![DetectorSpec::CfSig],
                vec![DetectorSpec::Parity, DetectorSpec::CfSig],
            ],
            levels: vec![0.5, 1.0],
            trials: 400,
            seed: 0x0F10_EE41,
            profile_trials: 600,
            threads: 0,
            snapshots: true,
            exec: ExecConfig::default(),
        }
    }
}

impl ExploreSpec {
    /// Detector sets with the baseline (empty) set forced in at index 0.
    fn canonical_detector_sets(&self) -> Vec<Vec<DetectorSpec>> {
        let mut sets: Vec<Vec<DetectorSpec>> = vec![Vec::new()];
        for ds in &self.detector_sets {
            if !ds.is_empty() && !sets.contains(ds) {
                sets.push(ds.clone());
            }
        }
        sets
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// One evaluated configuration: a protection variant at a level, plus a
/// detector set, under one fault model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    pub variant: Variant,
    pub level_permille: u32,
    pub detectors: Vec<DetectorSpec>,
    /// Total cost in permille of the raw runtime: golden-cycle overhead of
    /// the protected program plus the detector tax. 0 for raw/no-detector.
    pub cost_permille: i64,
    /// SDC reduction vs the raw, detector-free baseline (same model).
    pub coverage: f64,
    pub sdc: Estimate,
    pub counts: OutcomeCounts,
    /// Golden cycles of this point's program (detector tax not included).
    pub golden_cycles: u64,
    /// True when no other point has both lower-or-equal cost and
    /// higher-or-equal coverage (with one strict).
    pub on_frontier: bool,
}

impl DesignPoint {
    /// Compact label, e.g. `Id@500+parity` or `Raw`.
    pub fn label(&self) -> String {
        let mut s = match self.variant {
            Variant::Raw => "Raw".to_string(),
            _ => format!("{:?}@{}", self.variant, self.level_permille),
        };
        for d in &self.detectors {
            let _ = write!(s, "+{d}");
        }
        s
    }
}

/// One workload's sweep under one fault model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFrontier {
    pub fault_model: ModelSpec,
    /// Raw, detector-free SDC rate — the coverage denominator.
    pub baseline_sdc: Estimate,
    /// Every design point, sorted by ascending cost (coverage breaks ties,
    /// descending).
    pub points: Vec<DesignPoint>,
    /// The non-dominated subset, ascending in cost and strictly ascending
    /// in coverage.
    pub frontier: Vec<DesignPoint>,
}

/// One workload's full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    pub bench: String,
    /// Golden cycles of the raw program — the cost denominator.
    pub raw_cycles: u64,
    pub models: Vec<ModelFrontier>,
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreReport {
    pub trials: u64,
    pub seed: u64,
    pub levels_permille: Vec<u32>,
    pub models: Vec<ModelSpec>,
    pub detector_sets: Vec<Vec<DetectorSpec>>,
    pub workloads: Vec<WorkloadReport>,
}

/// Per-(model, unit) campaign result: one `OutcomeCounts` per detector
/// set, scored from a single trial stream.
struct JobResult {
    counts_per_set: Vec<OutcomeCounts>,
    golden_cycles: u64,
}

/// Run one (model, unit) campaign: execute `trials` detector-free trials
/// and post-classify each would-be SDC against every detector set.
fn run_job(
    unit: &TrialUnit,
    model: ModelSpec,
    sets: &[Vec<DetectorSpec>],
    spec: &ExploreSpec,
    cache: &GoldenCache,
) -> JobResult {
    let program = unit.program.as_ref().expect("explore sweeps assembly units");
    let exec = &spec.exec;
    let mut runner = if spec.snapshots {
        let raw = unit.raw.as_deref().zip(unit.raw_program.as_deref());
        let set = cache.asm_snapshots_for(&unit.module, program, raw, exec);
        let mut r = AsmTrialRunner::with_golden(&unit.module, program, set.golden().clone(), exec);
        r.attach_snapshots(set);
        r
    } else {
        let g = cache.asm_golden(&unit.module, program, exec);
        AsmTrialRunner::with_golden(&unit.module, program, (*g).clone(), exec)
    };
    let sites = runner.sites();
    let golden_cycles = runner.golden().cycles;
    let mut counts_per_set = vec![OutcomeCounts::default(); sets.len()];
    for i in 0..spec.trials {
        let t = runner.run_trial_model(spec.seed, i, model, &[]);
        if t.outcome != Outcome::Sdc {
            for c in &mut counts_per_set {
                c.record(t.outcome);
            }
            continue;
        }
        // The model is deterministic in (seed, trial): re-deriving the
        // spec recovers exactly the fault the runner injected, so every
        // detector set scores the same trial stream for free.
        let fspec = model.sample_asm(spec.seed, i, sites);
        let flips = flip_count(fspec.second_bit, fspec.effect);
        let class = t
            .injected_inst
            .map(|idx| classify_asm_fault(fspec.effect, program.insts[idx as usize].kind.fault_dest()));
        for (c, ds) in counts_per_set.iter_mut().zip(sets) {
            let caught = class.is_some_and(|cl| any_catches(ds, cl, flips));
            c.record(if caught { Outcome::Detected } else { Outcome::Sdc });
        }
    }
    JobResult { counts_per_set, golden_cycles }
}

/// Cycle overhead of `prot` over `raw` in permille (truncating division).
fn cycle_overhead_permille(raw: u64, prot: u64) -> i64 {
    if raw == 0 {
        return 0;
    }
    ((prot as i128 - raw as i128) * 1000 / raw as i128) as i64
}

/// Sort points by ascending cost (ties: descending coverage, then the
/// deterministic identity order) and mark the non-dominated subset.
fn pareto(points: &mut [DesignPoint]) -> Vec<DesignPoint> {
    points.sort_by(|a, b| {
        a.cost_permille
            .cmp(&b.cost_permille)
            .then(b.coverage.total_cmp(&a.coverage))
            .then(a.label().cmp(&b.label()))
    });
    let mut frontier = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for p in points.iter_mut() {
        if p.coverage > best {
            best = p.coverage;
            p.on_frontier = true;
            frontier.push(p.clone());
        } else {
            p.on_frontier = false;
        }
    }
    frontier
}

/// Run the sweep. The cache is shared across every (model, detector set)
/// evaluation — goldens and snapshot sets are obtained once per distinct
/// program content.
pub fn explore(spec: &ExploreSpec, cache: &GoldenCache) -> ExploreReport {
    let sets = spec.canonical_detector_sets();
    let mspec = MatrixSpec {
        benches: spec.benches.clone(),
        scale: spec.scale,
        levels: spec.levels.clone(),
        profile_trials: spec.profile_trials,
        threads: spec.threads,
        ..Default::default()
    };
    let units: Vec<TrialUnit> = build_matrix(&mspec).into_iter().filter(|u| u.key.layer == Layer::Asm).collect();

    // Jobs: unit-major so workers touching the same bench cluster in time
    // (better snapshot-set cache locality), claimed off a shared cursor.
    let jobs: Vec<(usize, usize)> = (0..units.len())
        .flat_map(|ui| (0..spec.models.len()).map(move |mi| (ui, mi)))
        .collect();
    let results: Vec<Mutex<Option<JobResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..spec.effective_threads().min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let j = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(ui, mi)) = jobs.get(j) else { return };
                let out = run_job(&units[ui], spec.models[mi], &sets, spec, cache);
                *results[j].lock().unwrap() = Some(out);
            });
        }
    });
    let result_of = |ui: usize, mi: usize| -> JobResult {
        let j = ui * spec.models.len() + mi;
        results[j].lock().unwrap().take().expect("every job ran")
    };

    // Assemble per-workload frontiers in bench order.
    let mut benches: Vec<String> = Vec::new();
    for u in &units {
        if !benches.contains(&u.key.bench) {
            benches.push(u.key.bench.clone());
        }
    }
    let mut workloads = Vec::new();
    for bench in &benches {
        let unit_ids: Vec<usize> = (0..units.len()).filter(|&ui| units[ui].key.bench == *bench).collect();
        let raw_ui = *unit_ids
            .iter()
            .find(|&&ui| units[ui].key.variant == Variant::Raw)
            .expect("matrix always contains the raw unit");
        // (unit, model) -> JobResult, taken once.
        let per_unit: Vec<Vec<JobResult>> = unit_ids
            .iter()
            .map(|&ui| (0..spec.models.len()).map(|mi| result_of(ui, mi)).collect())
            .collect();
        let raw_pos = unit_ids.iter().position(|&ui| ui == raw_ui).unwrap();
        let raw_cycles = per_unit[raw_pos][0].golden_cycles;
        let mut models = Vec::new();
        for (mi, &model) in spec.models.iter().enumerate() {
            let baseline = per_unit[raw_pos][mi].counts_per_set[0];
            let mut points = Vec::new();
            for (pos, &ui) in unit_ids.iter().enumerate() {
                let job = &per_unit[pos][mi];
                let overhead = cycle_overhead_permille(raw_cycles, job.golden_cycles);
                for (si, ds) in sets.iter().enumerate() {
                    let counts = job.counts_per_set[si];
                    let cov = Coverage::compute(&baseline, &counts);
                    points.push(DesignPoint {
                        variant: units[ui].key.variant,
                        level_permille: units[ui].key.level_permille,
                        detectors: ds.clone(),
                        cost_permille: overhead + detector_overhead_permille(ds) as i64,
                        coverage: cov.coverage,
                        sdc: cov.sdc_prot,
                        counts,
                        golden_cycles: job.golden_cycles,
                        on_frontier: false,
                    });
                }
            }
            let frontier = pareto(&mut points);
            models.push(ModelFrontier {
                fault_model: model,
                baseline_sdc: Estimate::proportion(baseline.sdc, baseline.total()),
                points,
                frontier,
            });
        }
        workloads.push(WorkloadReport { bench: bench.clone(), raw_cycles, models });
    }

    ExploreReport {
        trials: spec.trials,
        seed: spec.seed,
        levels_permille: spec.levels.iter().map(|&l| (l * 1000.0).round() as u32).collect(),
        models: spec.models.clone(),
        detector_sets: sets,
        workloads,
    }
}

/// Render the frontiers as a fixed-width table, one block per workload.
pub fn render_table(report: &ExploreReport) -> String {
    let mut out = String::new();
    for w in &report.workloads {
        let _ = writeln!(out, "{} (raw cycles {})", w.bench, w.raw_cycles);
        for m in &w.models {
            let _ = writeln!(
                out,
                "  {} (baseline SDC {:.1}% ± {:.1})",
                m.fault_model,
                m.baseline_sdc.value * 100.0,
                m.baseline_sdc.ci95 * 100.0
            );
            let _ = writeln!(out, "    {:<24} {:>8} {:>10} {:>8}", "design", "cost\u{2030}", "coverage%", "SDC%");
            for p in &m.frontier {
                let _ = writeln!(
                    out,
                    "    {:<24} {:>8} {:>10.1} {:>8.2}",
                    p.label(),
                    p.cost_permille,
                    p.coverage * 100.0,
                    p.sdc.value * 100.0
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExploreSpec {
        ExploreSpec {
            benches: vec!["crc32".into()],
            scale: Scale::Tiny,
            models: vec![ModelSpec::SingleBitReg, ModelSpec::ControlFlow],
            detector_sets: vec![vec![], vec![DetectorSpec::Parity], vec![DetectorSpec::CfSig]],
            levels: vec![1.0],
            trials: 120,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn frontier_is_nonempty_sorted_and_nondominated() {
        let report = explore(&tiny_spec(), &GoldenCache::new());
        assert_eq!(report.workloads.len(), 1);
        let w = &report.workloads[0];
        assert_eq!(w.models.len(), 2);
        for m in &w.models {
            // Raw + Id@1000 + Flowery@1000, each × 3 detector sets.
            assert_eq!(m.points.len(), 9, "{}", m.fault_model);
            assert!(!m.frontier.is_empty());
            // Ascending cost, strictly ascending coverage.
            for pair in m.frontier.windows(2) {
                assert!(pair[0].cost_permille <= pair[1].cost_permille);
                assert!(pair[0].coverage < pair[1].coverage);
            }
            // The frontier truly dominates: no off-frontier point beats a
            // frontier point on both axes.
            for p in m.points.iter().filter(|p| !p.on_frontier) {
                assert!(
                    m.frontier
                        .iter()
                        .any(|f| f.cost_permille <= p.cost_permille && f.coverage >= p.coverage),
                    "dominated point not covered: {}",
                    p.label()
                );
            }
            let marked: Vec<_> = m.points.iter().filter(|p| p.on_frontier).cloned().collect();
            assert_eq!(marked, m.frontier);
        }
    }

    #[test]
    fn detector_sets_share_one_trial_stream() {
        // The detector-free counts must equal an engine-style campaign
        // under the same model/seed, and each detector set can only move
        // trials from SDC to Detected — totals and benign/due are fixed.
        let spec = tiny_spec();
        let report = explore(&spec, &GoldenCache::new());
        for m in &report.workloads[0].models {
            let base: Vec<_> = m.points.iter().filter(|p| p.detectors.is_empty()).collect();
            for p in &m.points {
                let b = base
                    .iter()
                    .find(|b| b.variant == p.variant && b.level_permille == p.level_permille)
                    .unwrap();
                assert_eq!(p.counts.total(), spec.trials);
                assert_eq!(p.counts.benign, b.counts.benign, "{}", p.label());
                assert_eq!(p.counts.due, b.counts.due, "{}", p.label());
                assert!(p.counts.sdc <= b.counts.sdc, "{}", p.label());
                assert_eq!(p.counts.sdc + p.counts.detected, b.counts.sdc + b.counts.detected, "{}", p.label());
            }
        }
    }

    #[test]
    fn explore_is_deterministic_and_snapshot_independent() {
        let spec = ExploreSpec { trials: 80, ..tiny_spec() };
        let a = explore(&spec, &GoldenCache::new());
        let b = explore(&spec, &GoldenCache::new());
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        let scratch = explore(&ExploreSpec { snapshots: false, threads: 3, ..spec }, &GoldenCache::new());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&scratch).unwrap(),
            "snapshot fast-forward must not change explore results"
        );
    }

    #[test]
    fn report_roundtrips_through_json() {
        let spec = ExploreSpec { trials: 60, models: vec![ModelSpec::FlagsPc], ..tiny_spec() };
        let report = explore(&spec, &GoldenCache::new());
        let json = serde_json::to_string(&report).unwrap();
        let back: ExploreReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(render_table(&report).contains("crc32"));
    }
}
