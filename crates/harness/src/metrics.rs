//! Live campaign metrics: lock-free counters updated by workers, sampled
//! into [`MetricsSnapshot`]s for the progress callback and final report.

use crate::cache::CacheStats;
use flowery_inject::OutcomeCounts;
use flowery_ir::interp::ExecMode;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Shared counters; one instance per engine run.
pub struct Metrics {
    start: Instant,
    /// Machine-layer engine the run is configured with (reported in
    /// snapshots; the per-batch attribution below is what counts).
    exec_mode: ExecMode,
    benign: AtomicU64,
    sdc: AtomicU64,
    detected: AtomicU64,
    due: AtomicU64,
    batches: AtomicU64,
    /// Batches satisfied from a checkpoint instead of being executed.
    batches_reused: AtomicU64,
    units_done: AtomicU64,
    /// Golden-prefix instructions skipped by snapshot fast-forward.
    ff_insts: AtomicU64,
    /// Instructions actually executed by trials.
    exec_insts: AtomicU64,
    /// Subset of `exec_insts` run by the threaded-code engine (assembly
    /// layer under `compiled`; the IR interpreter always counts as interp).
    compiled_insts: AtomicU64,
    /// Region accounting from `flowery diff`: how many regions the
    /// incremental plan saw, reused, and re-ran, and the trials the reuse
    /// avoided. Zero for non-incremental campaigns.
    regions_total: AtomicU64,
    regions_reused: AtomicU64,
    regions_rerun: AtomicU64,
    region_trials_saved: AtomicU64,
    /// Static-prune accounting: (site, bit) pairs the bit-lattice pass
    /// proved masked across this run's units, and trials the prune layer
    /// resolved without executing. Zero when `--static-prune` is off.
    bits_proven_masked: AtomicU64,
    bits_pruned_trials_saved: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            start: Instant::now(),
            exec_mode: ExecMode::default(),
            benign: AtomicU64::new(0),
            sdc: AtomicU64::new(0),
            detected: AtomicU64::new(0),
            due: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batches_reused: AtomicU64::new(0),
            units_done: AtomicU64::new(0),
            ff_insts: AtomicU64::new(0),
            exec_insts: AtomicU64::new(0),
            compiled_insts: AtomicU64::new(0),
            regions_total: AtomicU64::new(0),
            regions_reused: AtomicU64::new(0),
            regions_rerun: AtomicU64::new(0),
            region_trials_saved: AtomicU64::new(0),
            bits_proven_masked: AtomicU64::new(0),
            bits_pruned_trials_saved: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// A counter set that reports `mode` as the configured machine-layer
    /// engine.
    pub fn with_mode(mode: ExecMode) -> Metrics {
        Metrics { exec_mode: mode, ..Metrics::default() }
    }

    /// `ff_insts`/`exec_insts` are the batch's skipped/executed dynamic
    /// instruction totals (0 for checkpoint-replayed batches, which did
    /// their work in an earlier run); `compiled` says whether the executed
    /// instructions ran on the threaded-code engine.
    pub fn record_batch(&self, counts: &OutcomeCounts, reused: bool, ff_insts: u64, exec_insts: u64, compiled: bool) {
        self.benign.fetch_add(counts.benign, Ordering::Relaxed);
        self.sdc.fetch_add(counts.sdc, Ordering::Relaxed);
        self.detected.fetch_add(counts.detected, Ordering::Relaxed);
        self.due.fetch_add(counts.due, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.ff_insts.fetch_add(ff_insts, Ordering::Relaxed);
        self.exec_insts.fetch_add(exec_insts, Ordering::Relaxed);
        if compiled {
            self.compiled_insts.fetch_add(exec_insts, Ordering::Relaxed);
        }
        if reused {
            self.batches_reused.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_unit_done(&self) {
        self.units_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one unit's incremental plan: `reused`/`rerun` regions out
    /// of `total` (`total - reused - rerun` are new), and the trials the
    /// reused profiles made unnecessary.
    pub fn record_region_plan(&self, total: u64, reused: u64, rerun: u64, trials_saved: u64) {
        self.regions_total.fetch_add(total, Ordering::Relaxed);
        self.regions_reused.fetch_add(reused, Ordering::Relaxed);
        self.regions_rerun.fetch_add(rerun, Ordering::Relaxed);
        self.region_trials_saved.fetch_add(trials_saved, Ordering::Relaxed);
    }

    /// Account a unit's static prune table: how many (site, bit) pairs the
    /// bit-lattice pass proved masked.
    pub fn record_bits_proven(&self, pairs: u64) {
        self.bits_proven_masked.fetch_add(pairs, Ordering::Relaxed);
    }

    /// Account trials the prune layer resolved as provably-Benign without
    /// executing them.
    pub fn record_pruned(&self, trials: u64) {
        self.bits_pruned_trials_saved.fetch_add(trials, Ordering::Relaxed);
    }

    /// Sample the counters. `units_total` and `remaining_trials` come from
    /// the engine, which knows the schedule; `remaining_trials` is an
    /// upper bound (adaptive stopping can cut it short); `cache` carries
    /// the golden/snapshot provenance counters.
    pub fn snapshot(&self, units_total: usize, remaining_trials: u64, cache: CacheStats) -> MetricsSnapshot {
        let counts = OutcomeCounts {
            benign: self.benign.load(Ordering::Relaxed),
            sdc: self.sdc.load(Ordering::Relaxed),
            detected: self.detected.load(Ordering::Relaxed),
            due: self.due.load(Ordering::Relaxed),
        };
        let elapsed = self.start.elapsed().as_secs_f64();
        let trials = counts.total();
        let rate = if elapsed > 0.0 { trials as f64 / elapsed } else { 0.0 };
        let lookups = cache.hits + cache.misses;
        let ff_insts = self.ff_insts.load(Ordering::Relaxed);
        let exec_insts = self.exec_insts.load(Ordering::Relaxed);
        let compiled_insts = self.compiled_insts.load(Ordering::Relaxed);
        let work = ff_insts + exec_insts;
        MetricsSnapshot {
            elapsed_secs: elapsed,
            trials,
            counts,
            trials_per_sec: rate,
            batches: self.batches.load(Ordering::Relaxed),
            batches_reused: self.batches_reused.load(Ordering::Relaxed),
            units_done: self.units_done.load(Ordering::Relaxed),
            units_total: units_total as u64,
            remaining_trials,
            eta_secs: (rate > 0.0).then(|| remaining_trials as f64 / rate),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_hit_rate: if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 },
            goldens_run: cache.goldens_run,
            snap_captures: cache.snap_captures,
            snap_loads: cache.snap_loads,
            snap_shared: cache.snap_shared,
            ff_insts,
            exec_insts,
            ff_ratio: if work == 0 { 0.0 } else { ff_insts as f64 / work as f64 },
            exec_mode: self.exec_mode.to_string(),
            interp_insts: exec_insts - compiled_insts,
            compiled_insts,
            regions_total: self.regions_total.load(Ordering::Relaxed),
            regions_reused: self.regions_reused.load(Ordering::Relaxed),
            regions_rerun: self.regions_rerun.load(Ordering::Relaxed),
            region_trials_saved: self.region_trials_saved.load(Ordering::Relaxed),
            bits_proven_masked: self.bits_proven_masked.load(Ordering::Relaxed),
            bits_pruned_trials_saved: self.bits_pruned_trials_saved.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of campaign progress.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub elapsed_secs: f64,
    /// Trials counted so far (executed + reused from checkpoints).
    pub trials: u64,
    pub counts: OutcomeCounts,
    pub trials_per_sec: f64,
    pub batches: u64,
    pub batches_reused: u64,
    pub units_done: u64,
    pub units_total: u64,
    /// Upper bound on trials still scheduled.
    pub remaining_trials: u64,
    pub eta_secs: Option<f64>,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
    /// Plain golden executions (zero when every golden came from a
    /// snapshot capture, a persisted set, or the checkpoint).
    #[serde(default)]
    pub goldens_run: u64,
    /// Snapshot capture executions (full or shared-suffix).
    #[serde(default)]
    pub snap_captures: u64,
    /// Snapshot sets loaded from the persistent store.
    #[serde(default)]
    pub snap_loads: u64,
    /// Captures that shared a raw set's golden prefix.
    #[serde(default)]
    pub snap_shared: u64,
    /// Golden-prefix instructions skipped by snapshot fast-forward.
    pub ff_insts: u64,
    /// Instructions actually executed by trials.
    pub exec_insts: u64,
    /// Fraction of total trial work (skipped + executed) that snapshot
    /// fast-forward avoided re-executing.
    pub ff_ratio: f64,
    /// Configured machine-layer engine (`interp` or `compiled`). Engines
    /// are bit-identical; this is provenance, not schedule.
    #[serde(default)]
    pub exec_mode: String,
    /// Executed instructions attributed to the decode-and-dispatch
    /// interpreter (all IR-layer work plus assembly under `interp`).
    #[serde(default)]
    pub interp_insts: u64,
    /// Executed instructions attributed to the threaded-code engine.
    #[serde(default)]
    pub compiled_insts: u64,
    /// Regions across all units of an incremental (`flowery diff`) plan;
    /// 0 for plain campaigns.
    #[serde(default)]
    pub regions_total: u64,
    /// Regions whose baseline profiles were reused verbatim.
    #[serde(default)]
    pub regions_reused: u64,
    /// Regions re-executed because their content hash changed.
    #[serde(default)]
    pub regions_rerun: u64,
    /// Trials the reused region profiles made unnecessary.
    #[serde(default)]
    pub region_trials_saved: u64,
    /// (site, bit) pairs proven masked by the bit-lattice pass across this
    /// run's prune tables; 0 without `--static-prune`.
    #[serde(default)]
    pub bits_proven_masked: u64,
    /// Trials resolved as provably-Benign by the prune layer without
    /// executing.
    #[serde(default)]
    pub bits_pruned_trials_saved: u64,
}

impl MetricsSnapshot {
    /// One-line human rendering for progress displays.
    pub fn render(&self) -> String {
        let eta = match self.eta_secs {
            Some(s) if s >= 1.0 => format!(" eta {:.0}s", s),
            _ => String::new(),
        };
        let regions = if self.regions_total > 0 {
            format!(
                " | regions {}/{} reused, {} re-run, {} trials saved",
                self.regions_reused, self.regions_total, self.regions_rerun, self.region_trials_saved
            )
        } else {
            String::new()
        };
        let prune = if self.bits_proven_masked > 0 {
            format!(
                " | prune {} bits proven, {} trials saved",
                self.bits_proven_masked, self.bits_pruned_trials_saved
            )
        } else {
            String::new()
        };
        format!(
            "{}/{} units | {} trials @ {:.0}/s | sdc {} due {} det {} | cache {:.0}% ff {:.0}%{}{}{}",
            self.units_done,
            self.units_total,
            self.trials,
            self.trials_per_sec,
            self.counts.sdc,
            self.counts.due,
            self.counts.detected,
            self.cache_hit_rate * 100.0,
            self.ff_ratio * 100.0,
            eta,
            regions,
            prune
        )
    }

    /// [`MetricsSnapshot::render`] extended with coordinator-side
    /// distribution counters.
    pub fn render_dist(&self, dist: &DistStats) -> String {
        format!("{} | {}", self.render(), dist.render())
    }
}

/// Per-worker counters as seen by the distributed coordinator. The
/// instruction totals arrive with each batch result, so `ff_ratio` shows
/// how much golden-prefix work each worker's snapshot sets are skipping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Coordinator-assigned worker id.
    pub id: u64,
    /// Batches this worker has completed.
    pub batches: u64,
    /// Golden-prefix instructions the worker skipped by fast-forward.
    pub ff_insts: u64,
    /// Instructions the worker actually executed.
    pub exec_insts: u64,
    /// Whether the worker is currently connected.
    pub live: bool,
}

impl WorkerStats {
    pub fn new(id: u64) -> WorkerStats {
        WorkerStats { id, batches: 0, ff_insts: 0, exec_insts: 0, live: true }
    }

    /// Fraction of this worker's trial work skipped by fast-forward.
    pub fn ff_ratio(&self) -> f64 {
        let work = self.ff_insts + self.exec_insts;
        if work == 0 {
            0.0
        } else {
            self.ff_insts as f64 / work as f64
        }
    }
}

/// Coordinator-side distribution counters, rendered alongside a
/// [`MetricsSnapshot`] (see [`MetricsSnapshot::render_dist`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DistStats {
    /// Workers currently connected and heartbeating.
    pub workers_live: u64,
    /// Leases granted and not yet fully resolved.
    pub leases_outstanding: u64,
    /// Batches requeued after lease expiry or worker death.
    pub batches_requeued: u64,
    /// Per-worker accounting, in worker-id order.
    pub per_worker: Vec<WorkerStats>,
}

impl DistStats {
    /// One-line human rendering, e.g.
    /// `workers 2 | leases 3 | requeued 1 | w1 12b ff 54% | w2 9b ff 51%`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "workers {} | leases {} | requeued {}",
            self.workers_live, self.leases_outstanding, self.batches_requeued
        );
        for w in &self.per_worker {
            let gone = if w.live { "" } else { " gone" };
            s.push_str(&format!(" | w{} {}b ff {:.0}%{}", w.id, w.batches, w.ff_ratio() * 100.0, gone));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_aggregates_counters() {
        let m = Metrics::with_mode(ExecMode::Compiled);
        let c = OutcomeCounts { benign: 7, sdc: 2, detected: 1, due: 0 };
        m.record_batch(&c, false, 300, 100, true);
        m.record_batch(&c, true, 0, 0, false);
        m.record_unit_done();
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            goldens_run: 0,
            snap_captures: 1,
            snap_loads: 2,
            snap_shared: 1,
        };
        let s = m.snapshot(4, 100, cache);
        assert_eq!(s.trials, 20);
        assert_eq!(s.counts.sdc, 4);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batches_reused, 1);
        assert_eq!(s.units_done, 1);
        assert_eq!(s.units_total, 4);
        assert!((s.cache_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(s.goldens_run, 0);
        assert_eq!(s.snap_captures, 1);
        assert_eq!(s.snap_loads, 2);
        assert_eq!(s.snap_shared, 1);
        assert_eq!(s.ff_insts, 300);
        assert_eq!(s.exec_insts, 100);
        assert!((s.ff_ratio - 0.75).abs() < 1e-12);
        assert_eq!(s.exec_mode, "compiled");
        assert_eq!(s.compiled_insts, 100);
        assert_eq!(s.interp_insts, 0);
        assert!(s.trials_per_sec >= 0.0);
        assert!(!s.render().is_empty());
    }

    #[test]
    fn interp_batches_attribute_to_interp() {
        let m = Metrics::with_mode(ExecMode::Interp);
        let c = OutcomeCounts { benign: 5, ..Default::default() };
        m.record_batch(&c, false, 0, 40, false);
        m.record_batch(&c, false, 0, 60, true);
        let s = m.snapshot(1, 0, CacheStats::default());
        assert_eq!(s.exec_mode, "interp");
        assert_eq!(s.exec_insts, 100);
        assert_eq!(s.interp_insts, 40);
        assert_eq!(s.compiled_insts, 60);
    }

    #[test]
    fn region_counters_render_only_when_incremental() {
        let m = Metrics::new();
        let s = m.snapshot(1, 0, CacheStats::default());
        assert_eq!(s.regions_total, 0);
        assert!(!s.render().contains("regions"), "plain campaigns hide region counters");
        m.record_region_plan(10, 8, 1, 2400);
        m.record_region_plan(6, 6, 0, 1800);
        let s = m.snapshot(1, 0, CacheStats::default());
        assert_eq!(s.regions_total, 16);
        assert_eq!(s.regions_reused, 14);
        assert_eq!(s.regions_rerun, 1);
        assert_eq!(s.region_trials_saved, 4200);
        assert!(s.render().contains("regions 14/16 reused, 1 re-run, 4200 trials saved"), "{}", s.render());
    }

    #[test]
    fn prune_counters_render_only_when_pruning() {
        let m = Metrics::new();
        let s = m.snapshot(1, 0, CacheStats::default());
        assert_eq!(s.bits_proven_masked, 0);
        assert!(!s.render().contains("prune"), "unpruned campaigns hide prune counters");
        m.record_bits_proven(1234);
        m.record_pruned(56);
        let s = m.snapshot(1, 0, CacheStats::default());
        assert_eq!(s.bits_proven_masked, 1234);
        assert_eq!(s.bits_pruned_trials_saved, 56);
        assert!(s.render().contains("prune 1234 bits proven, 56 trials saved"), "{}", s.render());
    }

    #[test]
    fn dist_stats_render_per_worker() {
        let mut d = DistStats {
            workers_live: 2,
            leases_outstanding: 3,
            batches_requeued: 1,
            per_worker: vec![],
        };
        let mut w = WorkerStats::new(1);
        w.batches = 12;
        w.ff_insts = 75;
        w.exec_insts = 25;
        assert!((w.ff_ratio() - 0.75).abs() < 1e-12);
        d.per_worker.push(w);
        let mut gone = WorkerStats::new(2);
        gone.live = false;
        d.per_worker.push(gone);
        let line = d.render();
        assert!(line.contains("workers 2"), "{line}");
        assert!(line.contains("w1 12b ff 75%"), "{line}");
        assert!(line.contains("w2 0b ff 0% gone"), "{line}");
        let m = Metrics::new();
        assert!(m.snapshot(1, 0, CacheStats::default()).render_dist(&d).contains("| workers 2"));
    }
}
