//! End-to-end engine guarantees: thread-count invariance, agreement with
//! the single-campaign primitives, checkpoint/resume equivalence, and
//! deterministic adaptive early stopping.

use flowery_harness::{
    load_checkpoint, run_units, CheckpointLog, Control, GoldenCache, HarnessConfig, Layer, RunOptions, SnapshotStore,
    TrialUnit, UnitKey, UnitResult, Variant,
};
use flowery_inject::{run_asm_campaign, run_ir_campaign, CampaignConfig};
use flowery_ir::Module;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SRC_A: &str =
    "int main() { int s = 0; int i; for (i = 0; i < 25; i = i + 1) { s = s + i * i; } output(s); return s % 251; }";
const SRC_B: &str =
    "int main() { int p = 1; int i; for (i = 1; i < 12; i = i + 1) { p = p * i % 1009; } output(p); return p % 17; }";

fn module(src: &str) -> Arc<Module> {
    Arc::new(flowery_lang::compile("t", src).unwrap())
}

fn small_matrix() -> Vec<TrialUnit> {
    let backend = flowery_backend::BackendConfig::default();
    let a = module(SRC_A);
    let b = module(SRC_B);
    let a_prog = Arc::new(flowery_backend::compile_module(&a, &backend));
    let b_prog = Arc::new(flowery_backend::compile_module(&b, &backend));
    vec![
        TrialUnit::ir(UnitKey::new("a", Variant::Raw, 0.0, Layer::Ir), a.clone()),
        TrialUnit::asm(UnitKey::new("a", Variant::Raw, 0.0, Layer::Asm), a, a_prog),
        TrialUnit::ir(UnitKey::new("b", Variant::Raw, 0.0, Layer::Ir), b.clone()),
        TrialUnit::asm(UnitKey::new("b", Variant::Raw, 0.0, Layer::Asm), b, b_prog),
    ]
}

fn cfg(trials: u64, batch: u64, threads: usize) -> HarnessConfig {
    HarnessConfig {
        batch_size: batch,
        max_trials: trials,
        min_trials: trials.min(100),
        ci_target: None,
        seed: 0xABCD,
        threads,
        ..Default::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("flowery-harness-it-{}-{name}.jsonl", std::process::id()))
}

fn serialized(units: &[UnitResult]) -> String {
    serde_json::to_string(&units.to_vec()).unwrap()
}

#[test]
fn results_are_byte_identical_across_thread_counts() {
    let units = small_matrix();
    let cache1 = GoldenCache::new();
    let cache4 = GoldenCache::new();
    let r1 = run_units(&units, &cfg(300, 64, 1), &cache1, RunOptions::default());
    let r4 = run_units(&units, &cfg(300, 64, 4), &cache4, RunOptions::default());
    assert!(!r1.interrupted && !r4.interrupted);
    assert_eq!(r1.units.len(), 4);
    // The acceptance bar: serialized results match byte for byte.
    assert_eq!(serialized(&r1.units), serialized(&r4.units));
}

#[test]
fn engine_matches_single_campaign_primitives_and_hits_cache() {
    let units = small_matrix();
    let cache = GoldenCache::new();
    let hcfg = cfg(400, 100, 2);
    let report = run_units(&units, &hcfg, &cache, RunOptions::default());

    let mut ccfg = CampaignConfig::with_trials(400);
    ccfg.seed = hcfg.seed;
    let ir = run_ir_campaign(&units[0].module, &ccfg);
    let u = &report.units[0];
    assert_eq!(u.counts, ir.counts, "batched IR unit equals one-shot campaign");
    assert_eq!(u.sdc_by_inst, ir.sdc_by_inst);
    assert_eq!(u.golden_sites, ir.golden_sites);

    let asm = run_asm_campaign(&units[1].module, units[1].program.as_ref().unwrap(), &ccfg);
    let u = &report.units[1];
    assert_eq!(u.counts, asm.counts, "batched asm unit equals one-shot campaign");
    assert_eq!(u.sdc_insts, asm.sdc_insts, "SDC sites in trial order");
    assert_eq!(u.golden_cycles, asm.golden_cycles);

    // Golden runs are fetched again at merge time, so any executed run
    // reports cache hits.
    assert!(report.metrics.cache_hits > 0, "{:?}", report.metrics);
    // One snapshot-set fetch per unit; the capture run doubles as the
    // golden run, so merge-time golden lookups hit the seeded cache and
    // no plain golden execution happens. Concurrent workers may both
    // miss the same key (compute-outside-lock), so the miss count is a
    // floor.
    assert!(report.metrics.cache_misses >= 4, "{:?}", report.metrics);
    assert_eq!(report.metrics.goldens_run, 0, "{:?}", report.metrics);
    assert!(report.metrics.snap_captures >= 4, "{:?}", report.metrics);
    // Fast-forward accounting flows through to the metrics.
    assert_eq!(report.metrics.ff_insts + report.metrics.exec_insts, {
        let mut off = hcfg.clone();
        off.snapshots = false;
        let r = run_units(&units, &off, &GoldenCache::new(), RunOptions::default());
        assert_eq!(serialized(&report.units), serialized(&r.units), "snapshots must not change results");
        assert_eq!(r.metrics.ff_insts, 0);
        r.metrics.exec_insts
    });
}

#[test]
fn interrupted_run_resumes_to_identical_results() {
    let units = small_matrix();
    let hcfg = cfg(300, 50, 2); // 6 batches per unit, 24 total

    // Uninterrupted reference.
    let full = run_units(&units, &hcfg, &GoldenCache::new(), RunOptions::default());
    assert!(!full.interrupted);

    // Interrupted run: stop after 5 completed batches ("kill" mid-flight).
    let path = tmp("resume");
    let log = CheckpointLog::create(&path, &hcfg.header()).unwrap();
    let seen = AtomicU64::new(0);
    let stopper = |_: &flowery_harness::MetricsSnapshot| {
        if seen.fetch_add(1, Ordering::Relaxed) + 1 >= 5 {
            Control::Stop
        } else {
            Control::Continue
        }
    };
    let partial = run_units(
        &units,
        &hcfg,
        &GoldenCache::new(),
        RunOptions {
            checkpoint: Some(&log),
            preloaded: Vec::new(),
            progress: Some(&stopper),
            ..Default::default()
        },
    );
    drop(log);
    assert!(partial.interrupted);
    assert!(!partial.pending.is_empty(), "interrupt left unfinished units");

    // Resume: replay the log, finish the rest, keep checkpointing.
    let (header, preloaded) = load_checkpoint(&path).unwrap();
    assert_eq!(header, hcfg.header(), "resume validates the schedule parameters");
    assert!(preloaded.len() >= 5, "every finished batch was persisted");
    let log = CheckpointLog::append_to(&path).unwrap();
    let resumed = run_units(
        &units,
        &hcfg,
        &GoldenCache::new(),
        RunOptions { checkpoint: Some(&log), preloaded, ..Default::default() },
    );
    assert!(!resumed.interrupted);
    assert!(resumed.metrics.batches_reused >= 5);
    assert_eq!(
        serialized(&full.units),
        serialized(&resumed.units),
        "resumed campaign is bit-identical to the uninterrupted one"
    );

    // And a second resume of the now-complete log re-runs nothing.
    let (_, preloaded) = load_checkpoint(&path).unwrap();
    let replayed = run_units(
        &units,
        &hcfg,
        &GoldenCache::new(),
        RunOptions { checkpoint: None, preloaded, ..Default::default() },
    );
    assert_eq!(replayed.metrics.batches, replayed.metrics.batches_reused, "pure replay");
    assert_eq!(serialized(&full.units), serialized(&replayed.units));
    std::fs::remove_file(&path).ok();
}

#[test]
fn adaptive_early_stop_is_a_prefix_of_the_full_schedule() {
    let units = small_matrix();
    let mut hcfg = cfg(2000, 100, 2);
    hcfg.min_trials = 200;
    hcfg.ci_target = Some(0.05);
    let report = run_units(&units, &hcfg, &GoldenCache::new(), RunOptions::default());
    assert!(!report.interrupted);

    let mut any_early = false;
    for u in &report.units {
        assert_eq!(u.trials % hcfg.batch_size, 0, "stop points are batch-aligned");
        if u.stopped_early {
            any_early = true;
            assert!(u.trials < hcfg.max_trials);
            assert!(u.trials >= hcfg.min_trials);
            assert!(u.sdc.ci95 <= 0.05, "{}: reported half-width {} exceeds target", u.key, u.sdc.ci95);
            // The counts are exactly what a fixed campaign of the same
            // length produces: the stop point discards, never reorders.
            if u.key.layer == Layer::Ir {
                let mut ccfg = CampaignConfig::with_trials(u.trials);
                ccfg.seed = hcfg.seed;
                let fixed = run_ir_campaign(&units[0].module, &ccfg);
                if u.key == units[0].key {
                    assert_eq!(u.counts, fixed.counts);
                }
            }
        }
    }
    assert!(any_early, "5pp target on ~2000-trial units should stop early");

    // Tighter target -> never fewer trials per unit.
    let mut tight = hcfg.clone();
    tight.ci_target = Some(0.02);
    let report2 = run_units(&units, &tight, &GoldenCache::new(), RunOptions::default());
    for (a, b) in report.units.iter().zip(&report2.units) {
        assert!(b.trials >= a.trials, "{}: {} < {}", a.key, b.trials, a.trials);
    }
}

#[test]
fn snapshots_off_writes_no_snap_files() {
    let units = small_matrix();
    let mut hcfg = cfg(120, 60, 2);
    hcfg.snapshots = false;
    let dir = std::env::temp_dir().join(format!("flowery-harness-it-{}-nosnaps.snaps", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // Even with a store attached, a snapshots-off run must not persist
    // snapshot sets (no orphan .snap files for --no-snapshots).
    let cache = GoldenCache::with_store(SnapshotStore::at(dir.clone()));
    let r = run_units(&units, &hcfg, &cache, RunOptions::default());
    assert!(!r.interrupted);
    assert_eq!(r.metrics.snap_captures, 0, "{:?}", r.metrics);
    assert!(!dir.exists(), "snapshots off must leave no snapshot store behind");
}

#[test]
fn resume_rejects_mismatched_schedule() {
    let path = tmp("mismatch");
    let hcfg = cfg(300, 50, 1);
    CheckpointLog::create(&path, &hcfg.header()).unwrap();
    let (header, _) = load_checkpoint(&path).unwrap();
    let mut other = cfg(300, 50, 4); // thread count is NOT part of the schedule
    assert_eq!(header, other.header());
    other.seed ^= 1;
    assert_ne!(header, other.header(), "seed change invalidates the log");
    std::fs::remove_file(&path).ok();
}
