//! # flowery-workloads
//!
//! The 16 benchmark programs of the paper's Table 1, re-implemented in
//! MiniC with deterministic, scaled-down inputs (see DESIGN.md §2 for the
//! substitution rationale: the penetration phenomena depend on instruction
//! *mix*, not input size, and simulation-scale inputs make 3,000-campaign
//! fault injection tractable).

pub mod common;
pub mod mibench;
pub mod npb;
pub mod rodinia;

#[cfg(test)]
pub(crate) mod testutil;

pub use common::Scale;

/// Benchmark suite, as in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    Rodinia,
    Npb,
    MiBench,
}

impl Suite {
    pub fn name(self) -> &'static str {
        match self {
            Suite::Rodinia => "Rodinia",
            Suite::Npb => "NPB",
            Suite::MiBench => "MiBench",
        }
    }
}

/// One benchmark: metadata plus its generated MiniC source.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: &'static str,
    pub suite: Suite,
    pub domain: &'static str,
    pub source: String,
}

impl Workload {
    /// Compile this workload to a verified IR module.
    pub fn compile(&self) -> flowery_ir::Module {
        flowery_lang::compile(self.name, &self.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", self.name))
    }
}

/// The names of all 16 benchmarks, in Table 1 order.
pub const NAMES: [&str; 16] = [
    "backprop",
    "bfs",
    "pathfinder",
    "lud",
    "needle",
    "knn",
    "ep",
    "cg",
    "is",
    "fft2",
    "quicksort",
    "basicmath",
    "susan",
    "crc32",
    "stringsearch",
    "patricia",
];

/// Build one benchmark by name.
pub fn workload(name: &str, scale: Scale) -> Workload {
    let (suite, domain, source) = match name {
        "backprop" => (Suite::Rodinia, "Machine Learning", rodinia::backprop(scale)),
        "bfs" => (Suite::Rodinia, "Graph Algorithm", rodinia::bfs(scale)),
        "pathfinder" => (Suite::Rodinia, "Dynamic Programming", rodinia::pathfinder(scale)),
        "lud" => (Suite::Rodinia, "Linear Algebra", rodinia::lud(scale)),
        "needle" => (Suite::Rodinia, "Dynamic Programming", rodinia::needle(scale)),
        "knn" => (Suite::Rodinia, "Machine Learning", rodinia::knn(scale)),
        "ep" => (Suite::Npb, "Parallel Computing", npb::ep(scale)),
        "cg" => (Suite::Npb, "Gradient Algorithm", npb::cg(scale)),
        "is" => (Suite::Npb, "Sort Algorithm", npb::is(scale)),
        "fft2" => (Suite::MiBench, "Signal Processing", mibench::fft2(scale)),
        "quicksort" => (Suite::MiBench, "Sort Algorithm", mibench::quicksort(scale)),
        "basicmath" => (Suite::MiBench, "Mathematical Calculations", mibench::basicmath(scale)),
        "susan" => (Suite::MiBench, "Image Recognition", mibench::susan(scale)),
        "crc32" => (Suite::MiBench, "Error Detection", mibench::crc32(scale)),
        "stringsearch" => (Suite::MiBench, "Comparison Algorithm", mibench::stringsearch(scale)),
        "patricia" => (Suite::MiBench, "Data Structure", mibench::patricia(scale)),
        other => panic!("unknown workload '{other}'"),
    };
    let name = NAMES.iter().find(|&&n| n == name).expect("known name");
    Workload { name, suite, domain, source }
}

/// All 16 benchmarks at the given scale.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    NAMES.iter().map(|n| workload(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_compiles() {
        let all = all_workloads(Scale::Tiny);
        assert_eq!(all.len(), 16);
        for w in &all {
            let m = w.compile();
            assert!(m.main_func().is_some(), "{}", w.name);
        }
    }

    #[test]
    fn suites_match_table1() {
        assert_eq!(workload("backprop", Scale::Tiny).suite, Suite::Rodinia);
        assert_eq!(workload("ep", Scale::Tiny).suite, Suite::Npb);
        assert_eq!(workload("crc32", Scale::Tiny).suite, Suite::MiBench);
        assert_eq!(Suite::Npb.name(), "NPB");
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        workload("nosuch", Scale::Tiny);
    }

    #[test]
    fn sources_are_deterministic() {
        let a = workload("lud", Scale::Standard).source;
        let b = workload("lud", Scale::Standard).source;
        assert_eq!(a, b);
    }

    #[test]
    fn standard_scale_dyn_counts_are_tractable() {
        use flowery_ir::interp::{ExecConfig, Interpreter};
        for w in all_workloads(Scale::Standard) {
            let m = w.compile();
            let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
            assert!(r.status.is_completed(), "{}: {:?}", w.name, r.status);
            assert!(
                (1_000..2_000_000).contains(&r.dyn_insts),
                "{}: {} dynamic instructions out of range",
                w.name,
                r.dyn_insts
            );
        }
    }
}
