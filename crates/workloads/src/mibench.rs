//! MiBench-suite benchmark re-implementations (paper Table 1): FFT2,
//! quicksort, basicmath, susan, CRC32, stringsearch, patricia.

use crate::common::*;

/// FFT2: iterative radix-2 Cooley-Tukey over a random complex signal.
pub fn fft2(scale: Scale) -> String {
    let n: usize = match scale {
        Scale::Tiny => 8,
        Scale::Standard => 32,
    };
    let logn = n.trailing_zeros();
    let mut rng = rng_for("fft2");
    let re = rand_floats(&mut rng, n, -1.0, 1.0);
    let im = rand_floats(&mut rng, n, -1.0, 1.0);
    format!(
        "{}{}\
int main() {{\n\
  int i; int j; int k;\n\
  // bit-reversal permutation\n\
  for (i = 0; i < {n}; i = i + 1) {{\n\
    int rev = 0;\n\
    int v = i;\n\
    for (k = 0; k < {logn}; k = k + 1) {{\n\
      rev = (rev << 1) | (v & 1);\n\
      v = v >> 1;\n\
    }}\n\
    if (rev > i) {{\n\
      float tr = re[i]; re[i] = re[rev]; re[rev] = tr;\n\
      float ti = im[i]; im[i] = im[rev]; im[rev] = ti;\n\
    }}\n\
  }}\n\
  int len = 2;\n\
  float pi = 3.14159265358979323846;\n\
  while (len <= {n}) {{\n\
    float ang = (0.0 - 2.0) * pi / float(len);\n\
    for (i = 0; i < {n}; i = i + len) {{\n\
      for (j = 0; j < len / 2; j = j + 1) {{\n\
        float wr = cos(ang * float(j));\n\
        float wi = sin(ang * float(j));\n\
        int a = i + j;\n\
        int b = i + j + len / 2;\n\
        float xr = wr * re[b] - wi * im[b];\n\
        float xi = wr * im[b] + wi * re[b];\n\
        re[b] = re[a] - xr;\n\
        im[b] = im[a] - xi;\n\
        re[a] = re[a] + xr;\n\
        im[a] = im[a] + xi;\n\
      }}\n\
    }}\n\
    len = len * 2;\n\
  }}\n\
  float mag = 0.0;\n\
  for (i = 0; i < {n}; i = i + 1) {{ mag = mag + fabs(re[i]) + fabs(im[i]); }}\n\
  output(mag);\n\
  output(re[1]);\n\
  output(im[1]);\n\
  return int(mag);\n\
}}\n",
        global_float("re", &re),
        global_float("im", &im),
    )
}

/// Quicksort: recursive, last-element pivot.
pub fn quicksort(scale: Scale) -> String {
    let n = match scale {
        Scale::Tiny => 16,
        Scale::Standard => 80,
    };
    let mut rng = rng_for("quicksort");
    let data = rand_ints(&mut rng, n, -1000, 1000);
    format!(
        "{}\
void qsort(int* a, int lo, int hi) {{\n\
  if (lo >= hi) {{ return; }}\n\
  int pivot = a[hi];\n\
  int i = lo - 1;\n\
  int j;\n\
  for (j = lo; j < hi; j = j + 1) {{\n\
    if (a[j] <= pivot) {{\n\
      i = i + 1;\n\
      int t = a[i]; a[i] = a[j]; a[j] = t;\n\
    }}\n\
  }}\n\
  int t = a[i + 1]; a[i + 1] = a[hi]; a[hi] = t;\n\
  qsort(a, lo, i);\n\
  qsort(a, i + 2, hi);\n\
}}\n\
int main() {{\n\
  qsort(data, 0, {n} - 1);\n\
  int i;\n\
  int ok = 1;\n\
  int sum = 0;\n\
  for (i = 0; i < {n}; i = i + 1) {{\n\
    sum = sum + data[i] * (i + 1);\n\
    if (i > 0) {{ if (data[i - 1] > data[i]) {{ ok = 0; }} }}\n\
  }}\n\
  output(ok);\n\
  output(data[{n} / 2]);\n\
  output(sum);\n\
  return sum;\n\
}}\n",
        global_int("data", &data),
    )
}

/// Basicmath: integer square roots (Newton), cube-root solving, and
/// angle conversions.
pub fn basicmath(scale: Scale) -> String {
    let iters = match scale {
        Scale::Tiny => 8,
        Scale::Standard => 40,
    };
    format!(
        "int isqrt(int x) {{\n\
  if (x < 2) {{ return x; }}\n\
  int r = x;\n\
  int y = (r + 1) / 2;\n\
  while (y < r) {{\n\
    r = y;\n\
    y = (r + x / r) / 2;\n\
  }}\n\
  return r;\n\
}}\n\
float cbrt_newton(float v) {{\n\
  float x = 1.0;\n\
  if (v > 1.0) {{ x = v / 3.0; }}\n\
  int it;\n\
  for (it = 0; it < 12; it = it + 1) {{\n\
    x = (2.0 * x + v / (x * x)) / 3.0;\n\
  }}\n\
  return x;\n\
}}\n\
int main() {{\n\
  int i;\n\
  int isum = 0;\n\
  float fsum = 0.0;\n\
  float deg2rad = 3.14159265358979 / 180.0;\n\
  for (i = 1; i <= {iters}; i = i + 1) {{\n\
    isum = isum + isqrt(i * 37 + 11);\n\
    fsum = fsum + cbrt_newton(float(i) * 2.5);\n\
    fsum = fsum + sin(float(i * 9) * deg2rad);\n\
  }}\n\
  output(isum);\n\
  output(fsum);\n\
  return isum;\n\
}}\n"
    )
}

/// Susan: 3x3 smoothing plus a USAN-style corner response over a random
/// byte image.
pub fn susan(scale: Scale) -> String {
    let dim = match scale {
        Scale::Tiny => 8,
        Scale::Standard => 18,
    };
    let mut rng = rng_for("susan");
    let img = rand_bytes(&mut rng, dim * dim);
    format!(
        "{}{}\
int main() {{\n\
  int x; int y; int dx; int dy;\n\
  // 3x3 box smoothing (interior pixels)\n\
  for (y = 1; y < {dim} - 1; y = y + 1) {{\n\
    for (x = 1; x < {dim} - 1; x = x + 1) {{\n\
      int acc = 0;\n\
      for (dy = -1; dy <= 1; dy = dy + 1) {{\n\
        for (dx = -1; dx <= 1; dx = dx + 1) {{\n\
          acc = acc + img[(y + dy) * {dim} + x + dx];\n\
        }}\n\
      }}\n\
      smooth[y * {dim} + x] = acc / 9;\n\
    }}\n\
  }}\n\
  // USAN response: neighbours within threshold of the nucleus\n\
  int corners = 0;\n\
  int usum = 0;\n\
  int thresh = 20;\n\
  for (y = 1; y < {dim} - 1; y = y + 1) {{\n\
    for (x = 1; x < {dim} - 1; x = x + 1) {{\n\
      int c = smooth[y * {dim} + x];\n\
      int usan = 0;\n\
      for (dy = -1; dy <= 1; dy = dy + 1) {{\n\
        for (dx = -1; dx <= 1; dx = dx + 1) {{\n\
          int d = smooth[(y + dy) * {dim} + x + dx] - c;\n\
          if (d < 0) {{ d = 0 - d; }}\n\
          if (d < thresh) {{ usan = usan + 1; }}\n\
        }}\n\
      }}\n\
      usum = usum + usan;\n\
      if (usan < 5) {{ corners = corners + 1; }}\n\
    }}\n\
  }}\n\
  output(corners);\n\
  output(usum);\n\
  return usum;\n\
}}\n",
        global_byte("img", &img),
        global_zero("smooth", "byte", dim * dim),
    )
}

/// CRC32: bitwise CRC-32 (poly 0xEDB88320) over a random message.
pub fn crc32(scale: Scale) -> String {
    let n = match scale {
        Scale::Tiny => 32,
        Scale::Standard => 180,
    };
    let mut rng = rng_for("crc32");
    let msg = rand_bytes(&mut rng, n);
    format!(
        "{}\
int main() {{\n\
  int crc = 4294967295;\n\
  int poly = 3988292384;\n\
  int mask32 = 4294967295;\n\
  int i; int k;\n\
  for (i = 0; i < {n}; i = i + 1) {{\n\
    crc = (crc ^ msg[i]) & mask32;\n\
    for (k = 0; k < 8; k = k + 1) {{\n\
      int lsb = crc & 1;\n\
      crc = (crc >> 1) & mask32;\n\
      if (lsb == 1) {{ crc = (crc ^ poly) & mask32; }}\n\
    }}\n\
  }}\n\
  crc = crc ^ mask32;\n\
  output(crc);\n\
  return crc & 2147483647;\n\
}}\n",
        global_byte("msg", &msg),
    )
}

/// Stringsearch: Boyer-Moore-Horspool over a random lowercase text.
pub fn stringsearch(scale: Scale) -> String {
    let n = match scale {
        Scale::Tiny => 64,
        Scale::Standard => 220,
    };
    let mut rng = rng_for("stringsearch");
    let mut text: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'e')).collect();
    // Plant a needle so at least one pattern hits.
    let pat: Vec<u8> = b"cabed".to_vec();
    let plant = n / 2;
    text[plant..plant + pat.len()].copy_from_slice(&pat);
    let pat2: Vec<u8> = b"deadx".to_vec(); // absent ('x' not in alphabet)
    format!(
        "{}{}{}{}\
int search(byte* t, int tlen, byte* p, int plen) {{\n\
  int i;\n\
  for (i = 0; i < 256; i = i + 1) {{ shift[i] = plen; }}\n\
  for (i = 0; i < plen - 1; i = i + 1) {{ shift[p[i]] = plen - 1 - i; }}\n\
  int pos = 0;\n\
  while (pos <= tlen - plen) {{\n\
    int j = plen - 1;\n\
    while (j >= 0 && t[pos + j] == p[j]) {{ j = j - 1; }}\n\
    if (j < 0) {{ return pos; }}\n\
    pos = pos + shift[t[pos + plen - 1]];\n\
  }}\n\
  return -1;\n\
}}\n\
int main() {{\n\
  int hit1 = search(text, {n}, pat1, {plen1});\n\
  int hit2 = search(text, {n}, pat2, {plen2});\n\
  output(hit1);\n\
  output(hit2);\n\
  return hit1 * 100 + hit2;\n\
}}\n",
        global_byte("text", &text),
        global_byte("pat1", &pat),
        global_byte("pat2", &pat2),
        global_zero("shift", "int", 256),
        n = n,
        plen1 = pat.len(),
        plen2 = pat2.len(),
    )
}

/// Patricia: array-backed binary radix trie insert/lookup over 16-bit keys.
pub fn patricia(scale: Scale) -> String {
    let (n_insert, n_lookup) = match scale {
        Scale::Tiny => (10, 14),
        Scale::Standard => (40, 56),
    };
    let mut rng = rng_for("patricia");
    let inserts = rand_ints(&mut rng, n_insert, 0, 65536);
    // Half the lookups hit, half are random.
    let mut lookups = Vec::with_capacity(n_lookup);
    for i in 0..n_lookup {
        if i % 2 == 0 {
            lookups.push(inserts[i % n_insert]);
        } else {
            lookups.push(rng.gen_range(0..65536));
        }
    }
    let max_nodes = n_insert * 17 + 2;
    format!(
        "{}{}{}{}{}{}\
int insert(int key) {{\n\
  // returns 1 if newly inserted\n\
  int node = 0;\n\
  int bit;\n\
  for (bit = 15; bit >= 0; bit = bit - 1) {{\n\
    int side = (key >> bit) & 1;\n\
    int next = 0;\n\
    if (side == 1) {{ next = right[node]; }} else {{ next = left[node]; }}\n\
    if (next == 0) {{\n\
      next = nodecount[0];\n\
      nodecount[0] = next + 1;\n\
      if (side == 1) {{ right[node] = next; }} else {{ left[node] = next; }}\n\
    }}\n\
    node = next;\n\
  }}\n\
  if (leaf[node] == 0) {{ leaf[node] = 1; return 1; }}\n\
  return 0;\n\
}}\n\
int lookup(int key) {{\n\
  int node = 0;\n\
  int bit;\n\
  for (bit = 15; bit >= 0; bit = bit - 1) {{\n\
    int side = (key >> bit) & 1;\n\
    int next = 0;\n\
    if (side == 1) {{ next = right[node]; }} else {{ next = left[node]; }}\n\
    if (next == 0) {{ return 0; }}\n\
    node = next;\n\
  }}\n\
  return leaf[node];\n\
}}\n\
int main() {{\n\
  nodecount[0] = 1;\n\
  int i;\n\
  int inserted = 0;\n\
  for (i = 0; i < {n_insert}; i = i + 1) {{ inserted = inserted + insert(ikeys[i]); }}\n\
  int hits = 0;\n\
  for (i = 0; i < {n_lookup}; i = i + 1) {{ hits = hits + lookup(lkeys[i]); }}\n\
  output(inserted);\n\
  output(hits);\n\
  output(nodecount[0]);\n\
  return hits * 1000 + inserted;\n\
}}\n",
        global_int("ikeys", &inserts),
        global_int("lkeys", &lookups),
        global_zero("left", "int", max_nodes),
        global_zero("right", "int", max_nodes),
        global_zero("leaf", "int", max_nodes),
        global_zero("nodecount", "int", 1),
    )
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;

    #[test]
    fn fft2_runs() {
        check_workload(&fft2(Scale::Standard), "fft2");
    }

    #[test]
    fn quicksort_runs_and_sorts() {
        check_workload(&quicksort(Scale::Standard), "quicksort");
        let m = flowery_lang::compile("q", &quicksort(Scale::Tiny)).unwrap();
        let r = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        let out = flowery_ir::interp::decode_output(&r.output);
        assert_eq!(out[0], "i64:1", "sortedness flag: {out:?}");
    }

    #[test]
    fn basicmath_runs() {
        check_workload(&basicmath(Scale::Standard), "basicmath");
    }

    #[test]
    fn susan_runs() {
        check_workload(&susan(Scale::Standard), "susan");
    }

    #[test]
    fn crc32_runs_and_matches_reference() {
        check_workload(&crc32(Scale::Standard), "crc32");
        // Cross-check the CRC against a Rust reference implementation.
        let mut rng = rng_for("crc32");
        let msg = rand_bytes(&mut rng, 32);
        let mut crc: u32 = 0xFFFF_FFFF;
        for &b in &msg {
            crc ^= b as u32;
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb == 1 {
                    crc ^= 0xEDB8_8320;
                }
            }
        }
        crc ^= 0xFFFF_FFFF;
        let m = flowery_lang::compile("c", &crc32(Scale::Tiny)).unwrap();
        let r = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        let out = flowery_ir::interp::decode_output(&r.output);
        assert_eq!(out[0], format!("i64:{crc}"), "{out:?}");
    }

    #[test]
    fn stringsearch_finds_planted_pattern() {
        check_workload(&stringsearch(Scale::Standard), "stringsearch");
        let m = flowery_lang::compile("s", &stringsearch(Scale::Standard)).unwrap();
        let r = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        let out = flowery_ir::interp::decode_output(&r.output);
        assert_eq!(out[0], "i64:110", "planted at n/2: {out:?}");
        assert_eq!(out[1], "i64:-1", "absent pattern: {out:?}");
    }

    #[test]
    fn patricia_counts_hits() {
        check_workload(&patricia(Scale::Standard), "patricia");
        let m = flowery_lang::compile("p", &patricia(Scale::Tiny)).unwrap();
        let r = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        let out = flowery_ir::interp::decode_output(&r.output);
        // At least the planted half of lookups hit.
        let hits: i64 = out[1].strip_prefix("i64:").unwrap().parse().unwrap();
        assert!(hits >= 7, "{out:?}");
    }
}
