//! Shared helpers for generating benchmark MiniC sources with baked-in,
//! deterministically generated inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Benchmark input scale. FI campaigns execute the whole program thousands
/// of times, so default sizes are chosen to keep dynamic instruction counts
/// in the tens of thousands (the paper's absolute counts are irrelevant to
/// the cross-layer comparison; only the instruction mix matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Minimal sizes for fast unit tests.
    Tiny,
    /// The default experiment scale.
    #[default]
    Standard,
}

/// Deterministic RNG for a benchmark's inputs.
pub fn rng_for(name: &str) -> StdRng {
    let mut seed = [0u8; 32];
    for (i, b) in name.bytes().enumerate() {
        seed[i % 32] ^= b.wrapping_mul(31).wrapping_add(i as u8);
    }
    seed[31] ^= 0x5A;
    StdRng::from_seed(seed)
}

/// Format a `global int` array declaration with initializer.
pub fn global_int(name: &str, values: &[i64]) -> String {
    let mut s = format!("global int {name}[{}] = {{", values.len());
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push_str("};\n");
    s
}

/// Format a `global float` array declaration with initializer.
pub fn global_float(name: &str, values: &[f64]) -> String {
    let mut s = format!("global float {name}[{}] = {{", values.len());
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        // Full round-trip precision.
        let _ = write!(s, "{v:?}");
    }
    s.push_str("};\n");
    s
}

/// Format a `global byte` array declaration with initializer.
pub fn global_byte(name: &str, values: &[u8]) -> String {
    let mut s = format!("global byte {name}[{}] = {{", values.len());
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push_str("};\n");
    s
}

/// A zero-initialized global array declaration.
pub fn global_zero(name: &str, ty: &str, n: usize) -> String {
    format!("global {ty} {name}[{n}];\n")
}

/// Random integers in a range.
pub fn rand_ints(rng: &mut StdRng, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Random floats in a range.
pub fn rand_floats(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Random bytes.
pub fn rand_bytes(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen_range(0..=255u8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<i64> = rand_ints(&mut rng_for("bfs"), 5, 0, 100);
        let b: Vec<i64> = rand_ints(&mut rng_for("bfs"), 5, 0, 100);
        let c: Vec<i64> = rand_ints(&mut rng_for("lud"), 5, 0, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn formats_compile() {
        let src = format!(
            "{}{}{}{}int main() {{ return tbl[0] + int(w[1]) + img[2]; }}",
            global_int("tbl", &[5, -3]),
            global_float("w", &[0.25, 2.0]),
            global_byte("img", &[9, 8, 7]),
            global_zero("scratch", "int", 4),
        );
        let m = flowery_lang::compile("fmt", &src).unwrap();
        let r = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        assert_eq!(r.status, flowery_ir::interp::ExecStatus::Completed(5 + 2 + 7));
    }

    #[test]
    fn float_format_round_trips() {
        let vals = vec![0.1, -1e-9, 123456.789, 2.0];
        let src = format!(
            "{}int main() {{ output(w[0]); output(w[1]); output(w[2]); output(w[3]); return 0; }}",
            global_float("w", &vals)
        );
        let m = flowery_lang::compile("rt", &src).unwrap();
        let r = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        let out = flowery_ir::interp::decode_output(&r.output);
        assert_eq!(out[0], format!("f64:{}", 0.1));
        assert_eq!(out[2], format!("f64:{}", 123456.789));
    }
}
