//! Test helper: the standard cross-layer consistency check for a workload.

use flowery_backend::{compile_module, BackendConfig, Machine};
use flowery_ir::interp::{ExecConfig, Interpreter};

/// Compile the source, execute at both layers, and assert: successful
/// completion, non-trivial output, and bit-identical behaviour between the
/// IR interpreter and the machine simulator.
pub fn check_workload(src: &str, name: &str) {
    let m = flowery_lang::compile(name, src).unwrap_or_else(|e| panic!("{name} failed to compile: {e}\n{src}"));
    let ir = Interpreter::new(&m).run(&ExecConfig::default(), None);
    assert!(ir.status.is_completed(), "{name} IR run: {:?}", ir.status);
    assert!(!ir.output.is_empty(), "{name} produced no output");
    let prog = compile_module(&m, &BackendConfig::default());
    let asm = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
    assert_eq!(ir.status, asm.status, "{name}: status diverged between layers");
    assert_eq!(ir.output, asm.output, "{name}: output diverged between layers");
}
