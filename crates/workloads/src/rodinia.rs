//! Rodinia-suite benchmark re-implementations (paper Table 1): backprop,
//! BFS, pathfinder, LUD, needle (Needleman-Wunsch), kNN.

use crate::common::*;

/// Backprop: one training epoch of a tiny MLP (8-4-1) with sigmoid units.
pub fn backprop(scale: Scale) -> String {
    let (n_in, n_hid, samples) = match scale {
        Scale::Tiny => (4, 2, 2),
        Scale::Standard => (8, 4, 6),
    };
    let mut rng = rng_for("backprop");
    let w1 = rand_floats(&mut rng, n_in * n_hid, -0.5, 0.5);
    let w2 = rand_floats(&mut rng, n_hid, -0.5, 0.5);
    let xs = rand_floats(&mut rng, samples * n_in, 0.0, 1.0);
    let ts = rand_floats(&mut rng, samples, 0.0, 1.0);
    format!(
        "{}{}{}{}{}\
float sigmoid(float x) {{ return 1.0 / (1.0 + exp(0.0 - x)); }}\n\
int main() {{\n\
  int s; int i; int j;\n\
  float lr = 0.3;\n\
  for (s = 0; s < {samples}; s = s + 1) {{\n\
    // forward\n\
    for (j = 0; j < {n_hid}; j = j + 1) {{\n\
      float acc = 0.0;\n\
      for (i = 0; i < {n_in}; i = i + 1) {{ acc = acc + w1[j * {n_in} + i] * xs[s * {n_in} + i]; }}\n\
      hidden[j] = sigmoid(acc);\n\
    }}\n\
    float out = 0.0;\n\
    for (j = 0; j < {n_hid}; j = j + 1) {{ out = out + w2[j] * hidden[j]; }}\n\
    out = sigmoid(out);\n\
    // backward\n\
    float delta_o = (ts[s] - out) * out * (1.0 - out);\n\
    for (j = 0; j < {n_hid}; j = j + 1) {{\n\
      float delta_h = delta_o * w2[j] * hidden[j] * (1.0 - hidden[j]);\n\
      w2[j] = w2[j] + lr * delta_o * hidden[j];\n\
      for (i = 0; i < {n_in}; i = i + 1) {{\n\
        w1[j * {n_in} + i] = w1[j * {n_in} + i] + lr * delta_h * xs[s * {n_in} + i];\n\
      }}\n\
    }}\n\
  }}\n\
  float sum = 0.0;\n\
  for (j = 0; j < {n_hid}; j = j + 1) {{\n\
    sum = sum + w2[j];\n\
    for (i = 0; i < {n_in}; i = i + 1) {{ sum = sum + w1[j * {n_in} + i]; }}\n\
  }}\n\
  output(sum);\n\
  return int(sum * 1000.0);\n\
}}\n",
        global_float("w1", &w1),
        global_float("w2", &w2),
        global_float("xs", &xs),
        global_float("ts", &ts),
        global_zero("hidden", "float", n_hid),
    )
}

/// BFS over a random CSR graph; outputs the distance array checksum.
pub fn bfs(scale: Scale) -> String {
    let n = match scale {
        Scale::Tiny => 12,
        Scale::Standard => 48,
    };
    let mut rng = rng_for("bfs");
    // Random graph: each node gets 2..5 out-edges; ensure a spine so most
    // nodes are reachable from 0.
    let mut offsets = vec![0i64];
    let mut edges: Vec<i64> = Vec::new();
    for v in 0..n {
        if v + 1 < n {
            edges.push((v + 1) as i64); // spine edge
        }
        let extra = rng.gen_range(1..4usize);
        for _ in 0..extra {
            edges.push(rng.gen_range(0..n) as i64);
        }
        offsets.push(edges.len() as i64);
    }
    format!(
        "{}{}{}{}{}\
int main() {{\n\
  int i;\n\
  for (i = 0; i < {n}; i = i + 1) {{ cost[i] = -1; }}\n\
  cost[0] = 0;\n\
  queue[0] = 0;\n\
  int head = 0;\n\
  int tail = 1;\n\
  while (head < tail) {{\n\
    int v = queue[head];\n\
    head = head + 1;\n\
    int e;\n\
    for (e = offsets[v]; e < offsets[v + 1]; e = e + 1) {{\n\
      int w = edges[e];\n\
      if (cost[w] < 0) {{\n\
        cost[w] = cost[v] + 1;\n\
        queue[tail] = w;\n\
        tail = tail + 1;\n\
      }}\n\
    }}\n\
  }}\n\
  int sum = 0;\n\
  for (i = 0; i < {n}; i = i + 1) {{ sum = sum + cost[i] * (i + 1); }}\n\
  output(sum);\n\
  output(tail);\n\
  return sum;\n\
}}\n",
        global_int("offsets", &offsets),
        global_int("edges", &edges),
        global_zero("cost", "int", n),
        global_zero("queue", "int", n + 1),
        "",
    )
}

/// Pathfinder: bottom-up DP over a weight grid, keeping one row.
pub fn pathfinder(scale: Scale) -> String {
    let (rows, cols) = match scale {
        Scale::Tiny => (6, 8),
        Scale::Standard => (20, 24),
    };
    let mut rng = rng_for("pathfinder");
    let grid = rand_ints(&mut rng, rows * cols, 0, 10);
    format!(
        "{}{}{}\
int min2(int a, int b) {{ if (a < b) {{ return a; }} return b; }}\n\
int main() {{\n\
  int i; int j;\n\
  for (j = 0; j < {cols}; j = j + 1) {{ prev[j] = grid[j]; }}\n\
  for (i = 1; i < {rows}; i = i + 1) {{\n\
    for (j = 0; j < {cols}; j = j + 1) {{\n\
      int best = prev[j];\n\
      if (j > 0) {{ best = min2(best, prev[j - 1]); }}\n\
      if (j < {cols} - 1) {{ best = min2(best, prev[j + 1]); }}\n\
      cur[j] = grid[i * {cols} + j] + best;\n\
    }}\n\
    for (j = 0; j < {cols}; j = j + 1) {{ prev[j] = cur[j]; }}\n\
  }}\n\
  int best = prev[0];\n\
  for (j = 1; j < {cols}; j = j + 1) {{ best = min2(best, prev[j]); }}\n\
  int sum = 0;\n\
  for (j = 0; j < {cols}; j = j + 1) {{ sum = sum + prev[j]; }}\n\
  output(best);\n\
  output(sum);\n\
  return best;\n\
}}\n",
        global_int("grid", &grid),
        global_zero("prev", "int", cols),
        global_zero("cur", "int", cols),
    )
}

/// LUD: in-place Doolittle LU decomposition (no pivoting) of a
/// diagonally dominant matrix.
pub fn lud(scale: Scale) -> String {
    let n = match scale {
        Scale::Tiny => 5,
        Scale::Standard => 10,
    };
    let mut rng = rng_for("lud");
    let mut a = rand_floats(&mut rng, n * n, 1.0, 4.0);
    for i in 0..n {
        a[i * n + i] += 8.0 * n as f64; // dominance => no pivoting needed
    }
    format!(
        "{}\
int main() {{\n\
  int i; int j; int k;\n\
  for (k = 0; k < {n}; k = k + 1) {{\n\
    for (j = k; j < {n}; j = j + 1) {{\n\
      float acc = a[k * {n} + j];\n\
      for (i = 0; i < k; i = i + 1) {{ acc = acc - a[k * {n} + i] * a[i * {n} + j]; }}\n\
      a[k * {n} + j] = acc;\n\
    }}\n\
    for (i = k + 1; i < {n}; i = i + 1) {{\n\
      float acc = a[i * {n} + k];\n\
      for (j = 0; j < k; j = j + 1) {{ acc = acc - a[i * {n} + j] * a[j * {n} + k]; }}\n\
      a[i * {n} + k] = acc / a[k * {n} + k];\n\
    }}\n\
  }}\n\
  float sum = 0.0;\n\
  for (i = 0; i < {n}; i = i + 1) {{\n\
    for (j = 0; j < {n}; j = j + 1) {{ sum = sum + a[i * {n} + j]; }}\n\
  }}\n\
  output(sum);\n\
  return int(sum);\n\
}}\n",
        global_float("a", &a),
    )
}

/// Needle: Needleman-Wunsch sequence alignment DP.
pub fn needle(scale: Scale) -> String {
    let len = match scale {
        Scale::Tiny => 8,
        Scale::Standard => 20,
    };
    let mut rng = rng_for("needle");
    let seq1 = rand_ints(&mut rng, len, 0, 4);
    let seq2 = rand_ints(&mut rng, len, 0, 4);
    let dim = len + 1;
    format!(
        "{}{}{}\
int max3(int a, int b, int c) {{\n\
  int m = a;\n\
  if (b > m) {{ m = b; }}\n\
  if (c > m) {{ m = c; }}\n\
  return m;\n\
}}\n\
int main() {{\n\
  int i; int j;\n\
  int gap = -2;\n\
  for (i = 0; i < {dim}; i = i + 1) {{ table[i * {dim}] = i * gap; table[i] = i * gap; }}\n\
  for (i = 1; i < {dim}; i = i + 1) {{\n\
    for (j = 1; j < {dim}; j = j + 1) {{\n\
      int score = -1;\n\
      if (seq1[i - 1] == seq2[j - 1]) {{ score = 2; }}\n\
      table[i * {dim} + j] = max3(\n\
        table[(i - 1) * {dim} + j - 1] + score,\n\
        table[(i - 1) * {dim} + j] + gap,\n\
        table[i * {dim} + j - 1] + gap);\n\
    }}\n\
  }}\n\
  int sum = 0;\n\
  for (j = 0; j < {dim}; j = j + 1) {{ sum = sum + table[{len} * {dim} + j]; }}\n\
  output(table[{len} * {dim} + {len}]);\n\
  output(sum);\n\
  return sum;\n\
}}\n",
        global_int("seq1", &seq1),
        global_int("seq2", &seq2),
        global_zero("table", "int", dim * dim),
    )
}

/// kNN: nearest-neighbour search over random 2-D points.
pub fn knn(scale: Scale) -> String {
    let (n, k) = match scale {
        Scale::Tiny => (12, 2),
        Scale::Standard => (48, 5),
    };
    let mut rng = rng_for("knn");
    let lat = rand_floats(&mut rng, n, -90.0, 90.0);
    let lng = rand_floats(&mut rng, n, -180.0, 180.0);
    format!(
        "{}{}{}{}\
int main() {{\n\
  int i; int r;\n\
  float qlat = 12.5;\n\
  float qlng = -33.25;\n\
  for (i = 0; i < {n}; i = i + 1) {{\n\
    float dx = lat[i] - qlat;\n\
    float dy = lng[i] - qlng;\n\
    dist[i] = sqrt(dx * dx + dy * dy);\n\
  }}\n\
  float total = 0.0;\n\
  int picked_sum = 0;\n\
  for (r = 0; r < {k}; r = r + 1) {{\n\
    int best = -1;\n\
    float bestd = 1.0e18;\n\
    for (i = 0; i < {n}; i = i + 1) {{\n\
      if (taken[i] == 0) {{\n\
        if (dist[i] < bestd) {{ bestd = dist[i]; best = i; }}\n\
      }}\n\
    }}\n\
    taken[best] = 1;\n\
    total = total + bestd;\n\
    picked_sum = picked_sum + best;\n\
  }}\n\
  output(total);\n\
  output(picked_sum);\n\
  return picked_sum;\n\
}}\n",
        global_float("lat", &lat),
        global_float("lng", &lng),
        global_zero("dist", "float", n),
        global_zero("taken", "int", n),
    )
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;

    #[test]
    fn backprop_runs() {
        check_workload(&backprop(Scale::Standard), "backprop");
        check_workload(&backprop(Scale::Tiny), "backprop-tiny");
    }

    #[test]
    fn bfs_runs() {
        check_workload(&bfs(Scale::Standard), "bfs");
    }

    #[test]
    fn pathfinder_runs() {
        check_workload(&pathfinder(Scale::Standard), "pathfinder");
    }

    #[test]
    fn lud_runs() {
        check_workload(&lud(Scale::Standard), "lud");
    }

    #[test]
    fn needle_runs() {
        check_workload(&needle(Scale::Standard), "needle");
    }

    #[test]
    fn knn_runs() {
        check_workload(&knn(Scale::Standard), "knn");
    }
}
