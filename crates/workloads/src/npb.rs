//! NPB-suite benchmark re-implementations (paper Table 1): EP, CG, IS.

use crate::common::*;
use rand::Rng;

/// EP: embarrassingly parallel Gaussian-pair generation and annulus tally
/// (NAS EP kernel shape: LCG stream -> Box-Muller-style rejection).
pub fn ep(scale: Scale) -> String {
    let pairs = match scale {
        Scale::Tiny => 40,
        Scale::Standard => 220,
    };
    format!(
        "{}\
int main() {{\n\
  int k;\n\
  int lcg = 271828183;\n\
  int mask = 2147483647;\n\
  float sx = 0.0;\n\
  float sy = 0.0;\n\
  int accepted = 0;\n\
  for (k = 0; k < {pairs}; k = k + 1) {{\n\
    lcg = (lcg * 1103515245 + 12345) & mask;\n\
    float u1 = float(lcg) / 2147483648.0 * 2.0 - 1.0;\n\
    lcg = (lcg * 1103515245 + 12345) & mask;\n\
    float u2 = float(lcg) / 2147483648.0 * 2.0 - 1.0;\n\
    float t = u1 * u1 + u2 * u2;\n\
    if (t <= 1.0) {{\n\
      if (t > 0.0) {{\n\
        float f = sqrt(0.0 - 2.0 * log(t) / t);\n\
        float x = u1 * f;\n\
        float y = u2 * f;\n\
        float ax = fabs(x);\n\
        float ay = fabs(y);\n\
        float amax = ax;\n\
        if (ay > ax) {{ amax = ay; }}\n\
        int l = int(amax);\n\
        if (l > 9) {{ l = 9; }}\n\
        counts[l] = counts[l] + 1;\n\
        sx = sx + x;\n\
        sy = sy + y;\n\
        accepted = accepted + 1;\n\
      }}\n\
    }}\n\
  }}\n\
  int i;\n\
  int csum = 0;\n\
  for (i = 0; i < 10; i = i + 1) {{ csum = csum + counts[i] * (i + 1); }}\n\
  output(sx);\n\
  output(sy);\n\
  output(accepted);\n\
  output(csum);\n\
  return csum;\n\
}}\n",
        global_zero("counts", "int", 10),
    )
}

/// CG: conjugate gradient on a dense SPD (diagonally dominant) system.
pub fn cg(scale: Scale) -> String {
    let (n, iters) = match scale {
        Scale::Tiny => (6, 3),
        Scale::Standard => (14, 6),
    };
    let mut rng = rng_for("cg");
    // Symmetric, diagonally dominant A.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = rng.gen_range(-1.0..1.0);
            a[i * n + j] = v;
            a[j * n + i] = v;
        }
        a[i * n + i] = 2.0 * n as f64 + rng.gen_range(0.0..1.0);
    }
    let b = rand_floats(&mut rng, n, -5.0, 5.0);
    format!(
        "{}{}{}{}{}{}\
void matvec(float* v, float* out) {{\n\
  int i; int j;\n\
  for (i = 0; i < {n}; i = i + 1) {{\n\
    float acc = 0.0;\n\
    for (j = 0; j < {n}; j = j + 1) {{ acc = acc + amat[i * {n} + j] * v[j]; }}\n\
    out[i] = acc;\n\
  }}\n\
}}\n\
int main() {{\n\
  int i; int it;\n\
  float rho = 0.0;\n\
  for (i = 0; i < {n}; i = i + 1) {{ x[i] = 0.0; r[i] = bvec[i]; p[i] = bvec[i]; rho = rho + r[i] * r[i]; }}\n\
  for (it = 0; it < {iters}; it = it + 1) {{\n\
    matvec(p, q);\n\
    float pq = 0.0;\n\
    for (i = 0; i < {n}; i = i + 1) {{ pq = pq + p[i] * q[i]; }}\n\
    float alpha = rho / pq;\n\
    float rho_new = 0.0;\n\
    for (i = 0; i < {n}; i = i + 1) {{\n\
      x[i] = x[i] + alpha * p[i];\n\
      r[i] = r[i] - alpha * q[i];\n\
      rho_new = rho_new + r[i] * r[i];\n\
    }}\n\
    float beta = rho_new / rho;\n\
    rho = rho_new;\n\
    for (i = 0; i < {n}; i = i + 1) {{ p[i] = r[i] + beta * p[i]; }}\n\
  }}\n\
  float xsum = 0.0;\n\
  for (i = 0; i < {n}; i = i + 1) {{ xsum = xsum + x[i] * float(i + 1); }}\n\
  output(xsum);\n\
  output(rho);\n\
  return int(xsum * 100.0);\n\
}}\n",
        global_float("amat", &a),
        global_float("bvec", &b),
        global_zero("x", "float", n),
        global_zero("r", "float", n),
        global_zero("p", "float", n),
        global_zero("q", "float", n),
    )
}

/// IS: counting (bucket) sort of small integer keys with rank verification.
pub fn is(scale: Scale) -> String {
    let (n, maxkey) = match scale {
        Scale::Tiny => (40, 16),
        Scale::Standard => (240, 64),
    };
    let mut rng = rng_for("is");
    let keys = rand_ints(&mut rng, n, 0, maxkey as i64);
    format!(
        "{}{}{}\
int main() {{\n\
  int i;\n\
  for (i = 0; i < {n}; i = i + 1) {{ buckets[keys[i]] = buckets[keys[i]] + 1; }}\n\
  // prefix sum -> rank of each key value\n\
  int acc = 0;\n\
  for (i = 0; i < {maxkey}; i = i + 1) {{\n\
    int c = buckets[i];\n\
    buckets[i] = acc;\n\
    acc = acc + c;\n\
  }}\n\
  for (i = 0; i < {n}; i = i + 1) {{\n\
    int k = keys[i];\n\
    ranks[buckets[k]] = k;\n\
    buckets[k] = buckets[k] + 1;\n\
  }}\n\
  // verify sortedness + checksum\n\
  int ok = 1;\n\
  int sum = 0;\n\
  for (i = 1; i < {n}; i = i + 1) {{\n\
    if (ranks[i - 1] > ranks[i]) {{ ok = 0; }}\n\
    sum = sum + ranks[i] * (i % 7 + 1);\n\
  }}\n\
  output(ok);\n\
  output(sum);\n\
  return sum;\n\
}}\n",
        global_int("keys", &keys),
        global_zero("buckets", "int", maxkey),
        global_zero("ranks", "int", n),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;

    #[test]
    fn ep_runs() {
        check_workload(&ep(Scale::Standard), "ep");
    }

    #[test]
    fn cg_runs() {
        check_workload(&cg(Scale::Standard), "cg");
    }

    #[test]
    fn is_runs() {
        check_workload(&is(Scale::Standard), "is");
    }

    #[test]
    fn is_actually_sorts() {
        // The `ok` output must be 1.
        let m = flowery_lang::compile("is", &is(Scale::Tiny)).unwrap();
        let r = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        let out = flowery_ir::interp::decode_output(&r.output);
        assert_eq!(out[0], "i64:1", "{out:?}");
    }
}
