//! Checker ↔ synchronization-point provenance.
//!
//! The duplication pass guards every synchronization point (store, call,
//! conditional branch, return) with a compare-and-branch checker, and the
//! Flowery eager-store patch may later move a store *ahead* of the checker
//! that guards it. The static lint needs to know, for every checker, which
//! sync point it guards and on which side of it the checker sits — this
//! module reconstructs that relation structurally from the module shape the
//! passes emit (checker `icmp` + branch to a detector block).

use flowery_ir::inst::{Callee, InstKind, Intrinsic, IrRole, Terminator};
use flowery_ir::module::{Function, Module};
use flowery_ir::value::{BlockId, FuncId, InstId, Op};
use serde::{Deserialize, Serialize};

/// Where a checker sits relative to the sync point it guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Lazy (plain duplication): check, then perform the sync.
    Before,
    /// Eager (Flowery store patch): perform the store, then check.
    After,
}

/// The kind of synchronization point a checker guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncKind {
    Store,
    Call,
    Branch,
    Ret,
}

/// The location of a guarded sync point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncLoc {
    /// A body instruction (store or call).
    Inst(BlockId, InstId),
    /// A block terminator (conditional branch or return).
    Term(BlockId),
}

/// One checker and the sync point it guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckerLink {
    pub func: FuncId,
    /// The checker `icmp` (the compare whose mismatch arm detects).
    pub checker: InstId,
    /// Block holding the checker compare.
    pub block: BlockId,
    /// The guarded sync point, if one was identified.
    pub sync: Option<(SyncKind, SyncLoc)>,
    pub placement: Placement,
}

/// Checker↔sync provenance for a whole module.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PassProvenance {
    pub links: Vec<CheckerLink>,
}

impl PassProvenance {
    /// Links for one function.
    pub fn for_func(&self, fid: FuncId) -> impl Iterator<Item = &CheckerLink> {
        self.links.iter().filter(move |l| l.func == fid)
    }
}

/// Reconstruct checker↔sync links from the module structure.
pub fn collect(m: &Module) -> PassProvenance {
    let mut links = Vec::new();
    for (fi, f) in m.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        for (bi, block) in f.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            let Terminator::Br { cond, then_bb, else_bb } = &block.term else {
                continue;
            };
            let Some(cond_id) = cond.as_inst() else { continue };
            if f.inst(cond_id).role != IrRole::Checker {
                continue;
            }
            // A checker unit branches to a detector on one arm.
            let cont = if is_detector_block(f, *else_bb) {
                *then_bb
            } else if is_detector_block(f, *then_bb) {
                *else_bb
            } else {
                continue;
            };
            let (sync, placement) = match eager_store_in(f, bid, cond_id) {
                Some(store) => (Some((SyncKind::Store, SyncLoc::Inst(bid, store))), Placement::After),
                None => (find_guarded_sync(f, cont), Placement::Before),
            };
            links.push(CheckerLink { func: fid, checker: cond_id, block: bid, sync, placement });
        }
    }
    PassProvenance { links }
}

/// Does `b` hold a `detect_error` call (the duplication detector shape)?
fn is_detector_block(f: &Function, b: BlockId) -> bool {
    f.block(b)
        .insts
        .iter()
        .any(|&i| matches!(&f.inst(i).kind, InstKind::Call { callee: Callee::Intrinsic(Intrinsic::DetectError), .. }))
}

/// An eager-store pattern: an App store in `b` preceding the trailing
/// checker group, whose stored value the checker compares.
fn eager_store_in(f: &Function, b: BlockId, checker: InstId) -> Option<InstId> {
    let insts = &f.block(b).insts;
    let mut group_start = insts.len();
    while group_start > 0 && f.inst(insts[group_start - 1]).role == IrRole::Checker {
        group_start -= 1;
    }
    for &iid in insts[..group_start].iter().rev() {
        let d = f.inst(iid);
        if d.role == IrRole::App {
            if let InstKind::Store { val, .. } = &d.kind {
                if checker_reads(f, checker, *val) {
                    return Some(iid);
                }
            }
        }
    }
    None
}

/// Does the checker compare read `val`, directly or through one checker
/// bitcast (the float-compare shape)?
fn checker_reads(f: &Function, checker: InstId, val: Op) -> bool {
    for op in f.inst(checker).operands() {
        if op == val {
            return true;
        }
        if let Some(d) = op.as_inst() {
            let dd = f.inst(d);
            if dd.role == IrRole::Checker {
                if let InstKind::Cast { val: inner, .. } = &dd.kind {
                    if *inner == val {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Walk forward from a checker's continuation block to the sync point it
/// guards, skipping protection-internal instructions and following checker
/// chains (one checker per compared operand).
fn find_guarded_sync(f: &Function, start: BlockId) -> Option<(SyncKind, SyncLoc)> {
    let mut cur = start;
    for _ in 0..16 {
        for &iid in &f.block(cur).insts {
            let d = f.inst(iid);
            if d.role != IrRole::App {
                continue; // shadow / checker / patch machinery
            }
            match &d.kind {
                InstKind::Store { .. } => return Some((SyncKind::Store, SyncLoc::Inst(cur, iid))),
                InstKind::Call { .. } => return Some((SyncKind::Call, SyncLoc::Inst(cur, iid))),
                _ => {}
            }
        }
        match &f.block(cur).term {
            Terminator::Br { cond, then_bb, else_bb } => {
                let chain = cond.as_inst().is_some_and(|c| f.inst(c).role == IrRole::Checker)
                    && (is_detector_block(f, *then_bb) || is_detector_block(f, *else_bb));
                if chain {
                    // Next checker in the chain; keep walking its cont arm.
                    cur = if is_detector_block(f, *else_bb) { *then_bb } else { *else_bb };
                } else {
                    return Some((SyncKind::Branch, SyncLoc::Term(cur)));
                }
            }
            Terminator::Ret { .. } => return Some((SyncKind::Ret, SyncLoc::Term(cur))),
            Terminator::Jmp { dest } => cur = *dest,
            Terminator::Unreachable => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplicate::{duplicate_module, DupConfig};
    use crate::flowery::{apply_flowery, FloweryConfig};
    use crate::select::ProtectionPlan;

    fn duplicated(src: &str) -> (Module, usize) {
        let mut m = flowery_lang::compile("t", src).unwrap();
        let plan = ProtectionPlan::full(&m);
        let stats = duplicate_module(&mut m, &plan, &DupConfig::default());
        (m, stats.checkers)
    }

    const SRC: &str = "int main() { int a = 3; int b = a * 7 + 1; int c = b - a;\n\
                       if (c > 10) { output(c); } else { output(a); } return c; }";

    #[test]
    fn every_checker_gets_a_link_with_a_sync() {
        let (m, checkers) = duplicated(SRC);
        let prov = collect(&m);
        assert_eq!(prov.links.len(), checkers, "one link per checker");
        for l in &prov.links {
            assert_eq!(l.placement, Placement::Before);
            assert!(l.sync.is_some(), "plain duplication checkers all guard a sync: {l:?}");
        }
        // The source has stores, calls (output), a branch, and a return.
        let kinds: std::collections::HashSet<_> = prov.links.iter().filter_map(|l| l.sync.map(|(k, _)| k)).collect();
        assert!(kinds.contains(&SyncKind::Store), "{kinds:?}");
        assert!(kinds.contains(&SyncKind::Branch), "{kinds:?}");
    }

    #[test]
    fn eager_store_flips_placement_to_after() {
        let (mut m, checkers) = duplicated(SRC);
        let stats = apply_flowery(&mut m, &FloweryConfig::default());
        assert!(stats.eager_stores > 0);
        let prov = collect(&m);
        assert_eq!(prov.links.len(), checkers);
        let after = prov.links.iter().filter(|l| l.placement == Placement::After).count();
        assert_eq!(after, stats.eager_stores, "one After link per swapped store");
        for l in prov.links.iter().filter(|l| l.placement == Placement::After) {
            assert!(matches!(l.sync, Some((SyncKind::Store, _))));
        }
    }

    #[test]
    fn unduplicated_module_has_no_links() {
        let m = flowery_lang::compile("t", SRC).unwrap();
        assert!(collect(&m).links.is_empty());
    }
}
