//! Selective-protection planning: which static instructions to duplicate at
//! a given protection level.
//!
//! The paper (§3) formulates selection as a 0-1 knapsack: each duplicable
//! instruction has a *benefit* (the probability mass of SDCs attributable to
//! faults in it, estimated by fault injection) and a *cost* (its dynamic
//! execution count — the extra dynamic instructions duplication adds). The
//! protection level is the fraction of the total duplicable dynamic count
//! allowed as budget; the classic greedy benefit/cost heuristic fills it.

use flowery_ir::inst::{Callee, InstKind};
use flowery_ir::module::Module;
use flowery_ir::value::{FuncId, InstId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Is this instruction duplicable (pure compute, an IR-level fault site)?
pub fn is_duplicable(kind: &InstKind) -> bool {
    match kind {
        InstKind::Load { .. }
        | InstKind::Bin { .. }
        | InstKind::ICmp { .. }
        | InstKind::FCmp { .. }
        | InstKind::Cast { .. }
        | InstKind::Gep { .. }
        | InstKind::Select { .. } => true,
        InstKind::Call { callee: Callee::Intrinsic(i), .. } => i.is_math(),
        _ => false,
    }
}

/// Per-static-instruction SDC statistics from a profiling fault-injection
/// campaign on the unprotected program.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcProfile {
    /// Total fault-injection trials behind these statistics.
    pub trials: u64,
    /// `(func, inst, sdc_hits, exec_count)` per instruction that was hit at
    /// least once or executed at least once.
    pub entries: Vec<SdcEntry>,
}

/// One instruction's profile record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcEntry {
    pub func: FuncId,
    pub inst: InstId,
    /// Fault injections that landed here and produced an SDC.
    pub sdc_hits: u64,
    /// Dynamic executions in the golden run (the duplication cost).
    pub exec_count: u64,
}

/// The chosen set of instructions to duplicate, per function.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProtectionPlan {
    pub per_func: Vec<HashSet<InstId>>,
    /// The protection level this plan was built for (1.0 = full).
    pub level: f64,
}

impl ProtectionPlan {
    /// Protect every duplicable instruction (the paper's 100% level).
    pub fn full(m: &Module) -> ProtectionPlan {
        let per_func = m
            .functions
            .iter()
            .map(|f| {
                f.live_insts()
                    .into_iter()
                    .filter(|&iid| is_duplicable(&f.inst(iid).kind))
                    .collect()
            })
            .collect();
        ProtectionPlan { per_func, level: 1.0 }
    }

    /// Protect nothing.
    pub fn none(m: &Module) -> ProtectionPlan {
        ProtectionPlan {
            per_func: vec![HashSet::new(); m.functions.len()],
            level: 0.0,
        }
    }

    pub fn contains(&self, f: FuncId, i: InstId) -> bool {
        self.per_func.get(f.index()).is_some_and(|s| s.contains(&i))
    }

    /// Number of selected instructions.
    pub fn selected_count(&self) -> usize {
        self.per_func.iter().map(|s| s.len()).sum()
    }
}

/// Build a plan for `level` ∈ (0, 1]: greedy knapsack by SDC-benefit per
/// unit of dynamic-instruction cost.
///
/// Deterministic: ties break on (func, inst) order. Instructions with zero
/// observed SDC contribution are appended afterwards in ascending-cost
/// order, so the budget is always used (and `level = 1.0` selects
/// everything).
pub fn choose_protection(m: &Module, profile: &SdcProfile, level: f64) -> ProtectionPlan {
    assert!((0.0..=1.0).contains(&level), "protection level must be in [0, 1]");
    if level == 0.0 {
        return ProtectionPlan::none(m);
    }

    // Candidate list: duplicable instructions with their cost and benefit.
    struct Cand {
        func: FuncId,
        inst: InstId,
        cost: u64,
        benefit: f64,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for e in &profile.entries {
        let f = &m.functions[e.func.index()];
        if e.inst.index() >= f.insts.len() || !is_duplicable(&f.inst(e.inst).kind) {
            continue;
        }
        let benefit = if profile.trials > 0 {
            e.sdc_hits as f64 / profile.trials as f64
        } else {
            0.0
        };
        // Never-executed instructions cost nothing and protect nothing; a
        // minimum cost of 1 keeps ratios finite and selection stable.
        cands.push(Cand {
            func: e.func,
            inst: e.inst,
            cost: e.exec_count.max(1),
            benefit,
        });
    }

    let total_cost: u64 = cands.iter().map(|c| c.cost).sum();
    let budget = (level * total_cost as f64).ceil() as u64;

    // Greedy: positive-benefit by ratio desc, then zero-benefit by cost asc.
    cands.sort_by(|a, b| {
        let ra = a.benefit / a.cost as f64;
        let rb = b.benefit / b.cost as f64;
        rb.partial_cmp(&ra)
            .unwrap()
            .then_with(|| a.cost.cmp(&b.cost))
            .then_with(|| (a.func, a.inst).cmp(&(b.func, b.inst)))
    });

    let mut plan = ProtectionPlan { per_func: vec![HashSet::new(); m.functions.len()], level };
    let mut spent = 0u64;
    for c in &cands {
        if spent + c.cost > budget {
            continue; // smaller later items may still fit
        }
        spent += c.cost;
        plan.per_func[c.func.index()].insert(c.inst);
    }
    plan
}

/// Derive the cost entries (exec counts) for every duplicable instruction
/// from an execution profile, merging in SDC hit counts.
pub fn build_profile(
    m: &Module,
    exec_profile: &flowery_ir::interp::Profile,
    sdc_hits: &std::collections::HashMap<(FuncId, InstId), u64>,
    trials: u64,
) -> SdcProfile {
    let mut entries = Vec::new();
    for (fi, f) in m.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        for &iid in &f.live_insts() {
            if !is_duplicable(&f.inst(iid).kind) {
                continue;
            }
            let exec_count = exec_profile.count(fid, iid);
            let hits = sdc_hits.get(&(fid, iid)).copied().unwrap_or(0);
            if exec_count > 0 || hits > 0 {
                entries.push(SdcEntry { func: fid, inst: iid, sdc_hits: hits, exec_count });
            }
        }
    }
    SdcProfile { trials, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_module() -> Module {
        flowery_lang::compile(
            "t",
            "int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { s = s + i; } output(s); return s; }",
        )
        .unwrap()
    }

    fn profile_for(m: &Module) -> SdcProfile {
        let interp = flowery_ir::interp::Interpreter::new(m);
        let r = interp.profile_run(&flowery_ir::interp::ExecConfig::default());
        let exec = r.profile.unwrap();
        // Synthetic SDC hits: pretend every duplicable instruction caused
        // one SDC per 100 executions.
        let mut hits = std::collections::HashMap::new();
        for (fi, f) in m.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for &iid in &f.live_insts() {
                if is_duplicable(&f.inst(iid).kind) {
                    hits.insert((fid, iid), exec.count(fid, iid) / 2 + 1);
                }
            }
        }
        build_profile(m, &exec, &hits, 1000)
    }

    #[test]
    fn full_plan_selects_all_duplicable() {
        let m = test_module();
        let plan = ProtectionPlan::full(&m);
        let expected: usize = m.functions[0]
            .live_insts()
            .iter()
            .filter(|&&i| is_duplicable(&m.functions[0].inst(i).kind))
            .count();
        assert_eq!(plan.per_func[0].len(), expected);
        assert!(expected > 5);
    }

    #[test]
    fn level_one_equals_full() {
        let m = test_module();
        let prof = profile_for(&m);
        let plan = choose_protection(&m, &prof, 1.0);
        let full = ProtectionPlan::full(&m);
        assert_eq!(plan.per_func[0], full.per_func[0]);
    }

    #[test]
    fn levels_are_monotonic_in_cost() {
        let m = test_module();
        let prof = profile_for(&m);
        let cost = |plan: &ProtectionPlan| -> u64 {
            prof.entries
                .iter()
                .filter(|e| plan.contains(e.func, e.inst))
                .map(|e| e.exec_count.max(1))
                .sum()
        };
        let p30 = choose_protection(&m, &prof, 0.3);
        let p50 = choose_protection(&m, &prof, 0.5);
        let p70 = choose_protection(&m, &prof, 0.7);
        let (c30, c50, c70) = (cost(&p30), cost(&p50), cost(&p70));
        assert!(c30 <= c50 && c50 <= c70, "{c30} {c50} {c70}");
        assert!(p30.selected_count() > 0);
        let total: u64 = prof.entries.iter().map(|e| e.exec_count.max(1)).sum();
        assert!(c30 as f64 <= 0.3 * total as f64 + 1.0);
    }

    #[test]
    fn zero_level_selects_nothing() {
        let m = test_module();
        let prof = profile_for(&m);
        assert_eq!(choose_protection(&m, &prof, 0.0).selected_count(), 0);
    }

    #[test]
    fn selection_is_deterministic() {
        let m = test_module();
        let prof = profile_for(&m);
        let a = choose_protection(&m, &prof, 0.5);
        let b = choose_protection(&m, &prof, 0.5);
        assert_eq!(a.per_func, b.per_func);
    }

    #[test]
    fn high_benefit_instructions_chosen_first() {
        let m = test_module();
        // One instruction carries ALL the SDC mass.
        let interp = flowery_ir::interp::Interpreter::new(&m);
        let r = interp.profile_run(&flowery_ir::interp::ExecConfig::default());
        let exec = r.profile.unwrap();
        let star = m.functions[0]
            .live_insts()
            .into_iter()
            .find(|&i| is_duplicable(&m.functions[0].inst(i).kind))
            .unwrap();
        let mut hits = std::collections::HashMap::new();
        hits.insert((FuncId(0), star), 500u64);
        let prof = build_profile(&m, &exec, &hits, 1000);
        let plan = choose_protection(&m, &prof, 0.2);
        assert!(plan.contains(FuncId(0), star), "the SDC-heavy instruction must be selected");
    }
}
