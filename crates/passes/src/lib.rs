//! # flowery-passes
//!
//! IR transformation passes for the cross-layer soft-error study:
//!
//! - [`select`] — SDC-profile-driven knapsack selection of instructions to
//!   protect at a given protection level (paper §3),
//! - [`duplicate`] — SWIFT-style selective instruction duplication with
//!   checkers at synchronization points,
//! - [`flowery`] — the three Flowery patches (paper §6) that repair the
//!   assembly-level protection deficiencies.
//!
//! ```
//! use flowery_passes::duplicate::{duplicate_module, DupConfig};
//! use flowery_passes::flowery::{apply_flowery, FloweryConfig};
//! use flowery_passes::select::ProtectionPlan;
//!
//! let mut m = flowery_lang::compile("demo",
//!     "int main() { int x = 2 + 3; output(x); return x; }").unwrap();
//! let plan = ProtectionPlan::full(&m);
//! let stats = duplicate_module(&mut m, &plan, &DupConfig::default());
//! assert!(stats.shadows > 0);
//! let fstats = apply_flowery(&mut m, &FloweryConfig::default());
//! assert!(fstats.eager_stores > 0);
//! flowery_ir::verify::verify_module(&m).unwrap();
//! ```

pub mod duplicate;
pub mod flowery;
pub mod provenance;
pub mod select;

pub use duplicate::{duplicate_module, DupConfig, DupStats};
pub use flowery::{apply_flowery, FloweryConfig, FloweryStats};
pub use provenance::{CheckerLink, PassProvenance, Placement, SyncKind, SyncLoc};
pub use select::{choose_protection, ProtectionPlan, SdcProfile};
