//! The instruction duplication pass (SWIFT-style selective ID, paper §3).
//!
//! For every selected instruction a *shadow* copy is inserted right after
//! the original, computing on shadow operands where available. Before every
//! *synchronization point* — store, call, conditional branch, return — a
//! *checker* compares each operand that has a shadow; on mismatch control
//! transfers to a detector block that calls `detect_error`.
//!
//! Checkers are compare+branch sequences, so each one **splits the basic
//! block** ahead of the synchronization point. That split is not an
//! implementation accident: it is the reason the backend's register cache
//! cannot keep checked values in registers across the checker, producing
//! the reload `mov`s of the paper's store penetration and the `test`s of
//! its branch penetration.

use crate::select::{is_duplicable, ProtectionPlan};
use flowery_ir::inst::{Callee, InstData, InstKind, Intrinsic, IrRole, Terminator};
use flowery_ir::module::Module;
use flowery_ir::types::Type;
use flowery_ir::value::{BlockId, FuncId, InstId, Op, Value};
use flowery_ir::{CastKind, IPred};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which synchronization points receive checkers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DupConfig {
    pub check_stores: bool,
    pub check_branches: bool,
    pub check_calls: bool,
    pub check_rets: bool,
}

impl Default for DupConfig {
    fn default() -> DupConfig {
        DupConfig {
            check_stores: true,
            check_branches: true,
            check_calls: true,
            check_rets: true,
        }
    }
}

/// Statistics from a duplication run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DupStats {
    /// Shadow instructions inserted.
    pub shadows: usize,
    /// Checkers inserted (each is a compare + branch + detector block).
    pub checkers: usize,
}

/// Apply selective instruction duplication in place.
pub fn duplicate_module(m: &mut Module, plan: &ProtectionPlan, cfg: &DupConfig) -> DupStats {
    let mut stats = DupStats::default();
    for fi in 0..m.functions.len() {
        let fid = FuncId(fi as u32);
        let shadow_map = insert_shadows(m, fid, plan, &mut stats);
        insert_checkers(m, fid, &shadow_map, cfg, &mut stats);
    }
    stats
}

/// Phase A: allocate and place shadow instructions; returns orig -> shadow.
fn insert_shadows(m: &mut Module, fid: FuncId, plan: &ProtectionPlan, stats: &mut DupStats) -> HashMap<InstId, InstId> {
    let f = m.func_mut(fid);
    // Pass 1: allocate shadow ids for every selected duplicable instruction.
    let selected: Vec<InstId> = f
        .live_insts()
        .into_iter()
        .filter(|&iid| f.inst(iid).role == IrRole::App && is_duplicable(&f.inst(iid).kind) && plan.contains(fid, iid))
        .collect();
    let mut shadow_map: HashMap<InstId, InstId> = HashMap::with_capacity(selected.len());
    for &iid in &selected {
        let mut data = f.inst(iid).clone();
        data.role = IrRole::Shadow;
        data.dup_of = Some(iid);
        let sid = f.add_inst(data);
        shadow_map.insert(iid, sid);
    }
    // Pass 2: remap shadow operands to shadows where available.
    for (&orig, &sid) in &shadow_map {
        let _ = orig;
        let data = &mut f.insts[sid.index()];
        for op in data.operands_mut() {
            if let Op::Value(Value::Inst(d)) = op {
                if let Some(&sd) = shadow_map.get(d) {
                    *op = Op::inst(sd);
                }
            }
        }
    }
    // Pass 3: place each shadow right after its original.
    for block in &mut f.blocks {
        let mut new_insts = Vec::with_capacity(block.insts.len() * 2);
        for &iid in &block.insts {
            new_insts.push(iid);
            if let Some(&sid) = shadow_map.get(&iid) {
                new_insts.push(sid);
                stats.shadows += 1;
            }
        }
        block.insts = new_insts;
    }
    shadow_map
}

/// Phase B: walk every block; insert checkers ahead of synchronization
/// points whose operands have shadows.
fn insert_checkers(
    m: &mut Module,
    fid: FuncId,
    shadow_map: &HashMap<InstId, InstId>,
    cfg: &DupConfig,
    stats: &mut DupStats,
) {
    // Worklist of (block, first unprocessed position).
    let initial: Vec<(BlockId, usize)> = (0..m.func(fid).blocks.len()).map(|i| (BlockId(i as u32), 0)).collect();
    let mut work = initial;
    while let Some((bid, start)) = work.pop() {
        let mut pos = start;
        loop {
            let f = m.func(fid);
            let block = f.block(bid);
            if pos >= block.insts.len() {
                break;
            }
            let iid = block.insts[pos];
            let inst = f.inst(iid);
            let wants_check = inst.role == IrRole::App
                && match &inst.kind {
                    InstKind::Store { .. } => cfg.check_stores,
                    InstKind::Call { callee, .. } => {
                        cfg.check_calls
                            && match callee {
                                Callee::Func(_) => true,
                                Callee::Intrinsic(i) => !i.is_math(),
                            }
                    }
                    _ => false,
                };
            if wants_check {
                let checked = checked_operands(&inst.operands(), shadow_map);
                if !checked.is_empty() {
                    let (nb, npos) = emit_checker_chain(m, fid, bid, pos, &checked, stats);
                    // The synchronization point now sits at `npos` of `nb`;
                    // continue scanning right after it. The original
                    // terminator travelled to the tail block of the chain,
                    // which this worklist entry will reach.
                    work.push((nb, npos + 1));
                    break;
                }
            }
            pos += 1;
        }
        if pos < m.func(fid).block(bid).insts.len() {
            // We broke out after splitting; the remainder is on the worklist.
            continue;
        }

        // Terminator synchronization points (conditional branch / return).
        let f = m.func(fid);
        let term_checked: Vec<(Op, Op)> = match &f.block(bid).term {
            Terminator::Br { cond, .. } if cfg.check_branches => checked_operands(&[*cond], shadow_map),
            Terminator::Ret { val: Some(v) } if cfg.check_rets => checked_operands(&[*v], shadow_map),
            _ => Vec::new(),
        };
        if !term_checked.is_empty() {
            let pos = m.func(fid).block(bid).insts.len();
            emit_checker_chain(m, fid, bid, pos, &term_checked, stats);
        }
    }
}

/// The (original, shadow) operand pairs needing a check, deduplicated.
fn checked_operands(ops: &[Op], shadow_map: &HashMap<InstId, InstId>) -> Vec<(Op, Op)> {
    let mut out: Vec<(Op, Op)> = Vec::new();
    for op in ops {
        if let Op::Value(Value::Inst(d)) = op {
            if let Some(&sd) = shadow_map.get(d) {
                let pair = (*op, Op::inst(sd));
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
    }
    out
}

/// Insert one checker per pair before position `pos` of `bid`. Returns the
/// block now holding the instruction originally at `pos` and its index.
fn emit_checker_chain(
    m: &mut Module,
    fid: FuncId,
    bid: BlockId,
    pos: usize,
    pairs: &[(Op, Op)],
    stats: &mut DupStats,
) -> (BlockId, usize) {
    let mut cur_block = bid;
    let mut cur_pos = pos;
    for &(orig, shadow) in pairs {
        cur_block = emit_one_checker(m, fid, cur_block, cur_pos, orig, shadow);
        cur_pos = 0;
        stats.checkers += 1;
    }
    (cur_block, cur_pos)
}

/// Emit `if (orig != shadow) detect_error()` before position `pos`,
/// splitting the block. Returns the continuation block (which starts with
/// the instruction previously at `pos`).
fn emit_one_checker(m: &mut Module, fid: FuncId, bid: BlockId, pos: usize, orig: Op, shadow: Op) -> BlockId {
    let ty = m.op_ty(fid, orig).expect("checked operand has a type");
    let f = m.func_mut(fid);

    let cont = f.split_block(bid, pos);
    // Detector block.
    let detect = f.add_block(format!("detect{}", f.blocks.len()));
    let call = f.add_inst(InstData::with_role(
        InstKind::Call {
            callee: Callee::Intrinsic(Intrinsic::DetectError),
            args: vec![],
        },
        IrRole::Checker,
    ));
    f.block_mut(detect).insts.push(call);
    f.block_mut(detect).term = Terminator::Jmp { dest: cont };

    // Compare (bit-exact: floats are compared through integer bitcasts,
    // which is what LLVM-level duplicators do to avoid NaN/-0.0 pitfalls).
    let (a, b, cmp_ty) = if ty.is_float() {
        let ity = if ty == Type::F64 { Type::I64 } else { Type::I32 };
        let ba = f.add_inst(InstData::with_role(
            InstKind::Cast { kind: CastKind::Bitcast, from: ty, to: ity, val: orig },
            IrRole::Checker,
        ));
        let bb = f.add_inst(InstData::with_role(
            InstKind::Cast { kind: CastKind::Bitcast, from: ty, to: ity, val: shadow },
            IrRole::Checker,
        ));
        f.block_mut(bid).insts.push(ba);
        f.block_mut(bid).insts.push(bb);
        (Op::inst(ba), Op::inst(bb), ity)
    } else {
        (orig, shadow, ty)
    };
    let ok = f.add_inst(InstData::with_role(
        InstKind::ICmp { pred: IPred::Eq, ty: cmp_ty, lhs: a, rhs: b },
        IrRole::Checker,
    ));
    f.block_mut(bid).insts.push(ok);
    f.block_mut(bid).term = Terminator::Br { cond: Op::inst(ok), then_bb: cont, else_bb: detect };
    cont
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_ir::interp::{ExecConfig, ExecStatus, Interpreter};
    use flowery_ir::verify::verify_module;

    fn compile(src: &str) -> Module {
        flowery_lang::compile("t", src).unwrap()
    }

    const LOOP_SRC: &str =
        "int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { s = s + i; } output(s); return s; }";

    #[test]
    fn full_duplication_preserves_semantics() {
        let mut m = compile(LOOP_SRC);
        let golden = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let plan = ProtectionPlan::full(&m);
        let stats = duplicate_module(&mut m, &plan, &DupConfig::default());
        verify_module(&m).expect("duplicated module verifies");
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(r.status, golden.status);
        assert_eq!(r.output, golden.output);
        assert!(stats.shadows > 5);
        assert!(stats.checkers > 2);
        assert!(r.dyn_insts > golden.dyn_insts, "duplication adds work");
    }

    #[test]
    fn duplication_roughly_doubles_compute() {
        let mut m = compile(LOOP_SRC);
        let golden = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let ratio = r.dyn_insts as f64 / golden.dyn_insts as f64;
        assert!(ratio > 1.5 && ratio < 3.5, "overhead ratio {ratio}");
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let mut m = compile(LOOP_SRC);
        let before = m.clone();
        let plan = ProtectionPlan::none(&m);
        let stats = duplicate_module(&mut m, &plan, &DupConfig::default());
        assert_eq!(stats, DupStats::default());
        assert_eq!(m, before);
    }

    #[test]
    fn injected_fault_in_protected_chain_is_detected() {
        let mut m = compile("int main() { int a = 5; int b = a * 3; output(b); return b; }");
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let golden = interp.run(&ExecConfig::default(), None);
        assert_eq!(golden.status, ExecStatus::Completed(15));
        // Sweep all sites and bits: every completed run must match golden —
        // full protection at IR level leaves no SDC (paper Observation 3).
        let mut detected = 0;
        for site in 0..golden.fault_sites {
            for bit in 0..8 {
                let r = interp.run(&ExecConfig::default(), Some(flowery_ir::interp::FaultSpec::single(site, bit)));
                match r.status {
                    ExecStatus::Completed(_) => {
                        assert_eq!(r.output, golden.output, "SDC escaped at site {site} bit {bit}");
                    }
                    ExecStatus::Detected => detected += 1,
                    ExecStatus::Trapped(_) => {}
                }
            }
        }
        assert!(detected > 0, "checkers must fire for some faults");
    }

    #[test]
    fn float_chains_are_checked_bit_exactly() {
        let mut m = compile("int main() { float x = 1.5; float y = x * 2.0 + 0.25; output(y); return 0; }");
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let golden = interp.run(&ExecConfig::default(), None);
        for site in 0..golden.fault_sites {
            let r = interp.run(&ExecConfig::default(), Some(flowery_ir::interp::FaultSpec::single(site, 51)));
            if let ExecStatus::Completed(_) = r.status {
                assert_eq!(r.output, golden.output, "float SDC escaped at site {site}");
            }
        }
    }

    #[test]
    fn branch_conditions_are_checked() {
        let mut m = compile("int main() { int x = 7; if (x > 3) { output(1); } else { output(2); } return 0; }");
        let plan = ProtectionPlan::full(&m);
        let stats = duplicate_module(&mut m, &plan, &DupConfig::default());
        verify_module(&m).unwrap();
        assert!(stats.checkers >= 1);
        // The icmp feeding the branch must be compared against its shadow.
        let f = &m.functions[m.main_func().unwrap().index()];
        let has_checker_icmp = f
            .live_insts()
            .iter()
            .any(|&i| f.inst(i).role == IrRole::Checker && matches!(f.inst(i).kind, InstKind::ICmp { .. }));
        assert!(has_checker_icmp);
    }

    #[test]
    fn selective_plan_duplicates_subset() {
        let m = compile(LOOP_SRC);
        let full = ProtectionPlan::full(&m);
        // Take roughly half the instructions.
        let mut partial = ProtectionPlan {
            per_func: vec![Default::default(); m.functions.len()],
            level: 0.5,
        };
        for (fi, set) in full.per_func.iter().enumerate() {
            let mut v: Vec<_> = set.iter().copied().collect();
            v.sort();
            partial.per_func[fi] = v.into_iter().step_by(2).collect();
        }
        let mut m1 = m.clone();
        let s1 = duplicate_module(&mut m1, &partial, &DupConfig::default());
        let mut m2 = m.clone();
        let s2 = duplicate_module(&mut m2, &full, &DupConfig::default());
        verify_module(&m1).unwrap();
        assert!(s1.shadows < s2.shadows);
        let g = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let r1 = Interpreter::new(&m1).run(&ExecConfig::default(), None);
        assert_eq!(g.output, r1.output);
    }

    #[test]
    fn checker_config_toggles_respected() {
        let m = compile(LOOP_SRC);
        let plan = ProtectionPlan::full(&m);
        let mut none_checked = m.clone();
        let s = duplicate_module(
            &mut none_checked,
            &plan,
            &DupConfig {
                check_stores: false,
                check_branches: false,
                check_calls: false,
                check_rets: false,
            },
        );
        assert_eq!(s.checkers, 0);
        assert!(s.shadows > 0);
        let mut stores_only = m.clone();
        let s2 = duplicate_module(
            &mut stores_only,
            &plan,
            &DupConfig {
                check_stores: true,
                check_branches: false,
                check_calls: false,
                check_rets: false,
            },
        );
        assert!(s2.checkers > 0);
        verify_module(&stores_only).unwrap();
    }

    #[test]
    fn recursion_and_calls_survive_duplication() {
        let mut m = compile(
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
             int main() { return fib(10); }",
        );
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        verify_module(&m).unwrap();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Completed(55));
    }

    #[test]
    fn duplicated_module_compiles_to_machine_code() {
        let mut m = compile(LOOP_SRC);
        let golden = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let r = flowery_backend::Machine::new(&m, &prog).run(&ExecConfig::default(), None);
        assert_eq!(r.status, golden.status);
        assert_eq!(r.output, golden.output);
    }
}
