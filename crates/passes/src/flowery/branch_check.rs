//! Flowery patch 2: **postponed branch condition check** (paper §6.2).
//!
//! An unfused conditional branch re-establishes RFLAGS with a `test`
//! instruction at the assembly level; a fault there silently steers the
//! program down the wrong path (branch penetration). The branch itself
//! cannot be duplicated, so Flowery checks *after the fact*: the taken
//! direction is recorded in a global before the branch, and a checker on
//! each outgoing edge verifies that the architecturally taken edge matches
//! the recorded intent.
//!
//! Edge checkers are placed on *trampoline* blocks so that other
//! predecessors of the successor blocks are unaffected.

use flowery_ir::inst::{Callee, InstData, InstKind, Intrinsic, IrRole, Terminator};
use flowery_ir::module::{Global, GlobalInit, Module};
use flowery_ir::types::Type;
use flowery_ir::value::{BlockId, FuncId, GlobalId, Op};
use flowery_ir::{CastKind, IPred};

/// Name of the module global holding the expected branch direction.
pub const EXPECT_GLOBAL: &str = "__flowery_branch_expect";

/// Apply the postponed-branch-check transformation in place. Only branches
/// that are *at risk* — whose condition is not produced by the immediately
/// preceding, single-use compare (the backend's fusion pattern) — are
/// patched, keeping overhead low. Returns the number of patched branches.
pub fn apply(m: &mut Module) -> usize {
    let expect = ensure_global(m);
    let mut patched = 0;
    for fi in 0..m.functions.len() {
        patched += patch_function(m, FuncId(fi as u32), expect);
    }
    patched
}

fn ensure_global(m: &mut Module) -> GlobalId {
    m.find_global(EXPECT_GLOBAL).unwrap_or_else(|| {
        m.add_global(Global {
            name: EXPECT_GLOBAL.into(),
            elem: Type::I64,
            count: 1,
            init: GlobalInit::Zero,
        })
    })
}

fn patch_function(m: &mut Module, fid: FuncId, expect: GlobalId) -> usize {
    let mut patched = 0;
    // Snapshot candidate blocks: App-role conditional branches at risk.
    let candidates: Vec<BlockId> = {
        let f = m.func(fid);
        f.iter_blocks()
            .filter(|(bid, block)| {
                let Terminator::Br { cond, .. } = &block.term else {
                    return false;
                };
                // Skip checker/patch branches: those guard detectors.
                if let Some(ci) = cond.as_inst() {
                    if f.inst(ci).role != IrRole::App {
                        return false;
                    }
                } else {
                    // Constant conditions (left by folding) are comparison
                    // penetration, handled by the anti-cmp patch instead.
                    return false;
                }
                at_risk(f, *bid)
            })
            .map(|(bid, _)| bid)
            .collect()
    };

    for bid in candidates {
        let f = m.func_mut(fid);
        let Terminator::Br { cond, then_bb, else_bb } = f.block(bid).term.clone() else {
            continue;
        };
        // Record intent: zext the condition and store it to the global.
        let z = f.add_inst(InstData::with_role(
            InstKind::Cast {
                kind: CastKind::Zext,
                from: Type::I1,
                to: Type::I64,
                val: cond,
            },
            IrRole::Patch,
        ));
        let st = f.add_inst(InstData::with_role(
            InstKind::Store { val: Op::inst(z), ptr: Op::Global(expect), ty: Type::I64 },
            IrRole::Patch,
        ));
        f.block_mut(bid).insts.push(z);
        f.block_mut(bid).insts.push(st);
        // Trampolines on both edges.
        let t_tramp = make_trampoline(f, expect, then_bb, 1);
        let e_tramp = make_trampoline(f, expect, else_bb, 0);
        f.block_mut(bid).term = Terminator::Br { cond, then_bb: t_tramp, else_bb: e_tramp };
        patched += 1;
    }
    patched
}

/// Is the branch of `bid` at risk of the `test` lowering? (Condition not
/// the immediately preceding single-use compare.)
fn at_risk(f: &flowery_ir::Function, bid: BlockId) -> bool {
    let block = f.block(bid);
    let Terminator::Br { cond, .. } = &block.term else {
        return false;
    };
    let Some(ci) = cond.as_inst() else { return true };
    let last = match block.insts.last() {
        Some(&l) => l,
        None => return true,
    };
    if last != ci {
        return true;
    }
    if !matches!(f.inst(ci).kind, InstKind::ICmp { .. } | InstKind::FCmp { .. }) {
        return true;
    }
    // Single use? Count uses across the function.
    let mut uses = 0;
    for block in &f.blocks {
        for &iid in &block.insts {
            uses += f.inst(iid).operands().iter().filter(|o| o.as_inst() == Some(ci)).count();
        }
        if block.term.operand().and_then(|o| o.as_inst()) == Some(ci) {
            uses += 1;
        }
    }
    uses != 1
}

/// Build `tramp: if (load @expect == want) goto dest; else detect`.
fn make_trampoline(f: &mut flowery_ir::Function, expect: GlobalId, dest: BlockId, want: i64) -> BlockId {
    let tramp = f.add_block(format!("br.check{}", f.blocks.len()));
    let detect = f.add_block(format!("br.detect{}", f.blocks.len()));
    let load = f.add_inst(InstData::with_role(
        InstKind::Load { ptr: Op::Global(expect), ty: Type::I64 },
        IrRole::Patch,
    ));
    let cmp = f.add_inst(InstData::with_role(
        InstKind::ICmp {
            pred: IPred::Eq,
            ty: Type::I64,
            lhs: Op::inst(load),
            rhs: Op::ci64(want),
        },
        IrRole::Patch,
    ));
    f.block_mut(tramp).insts = vec![load, cmp];
    f.block_mut(tramp).term = Terminator::Br { cond: Op::inst(cmp), then_bb: dest, else_bb: detect };
    let call = f.add_inst(InstData::with_role(
        InstKind::Call {
            callee: Callee::Intrinsic(Intrinsic::DetectError),
            args: vec![],
        },
        IrRole::Patch,
    ));
    f.block_mut(detect).insts.push(call);
    f.block_mut(detect).term = Terminator::Jmp { dest };
    tramp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplicate::{duplicate_module, DupConfig};
    use crate::select::ProtectionPlan;
    use flowery_ir::interp::{ExecConfig, Interpreter};
    use flowery_ir::verify::verify_module;

    const SRC: &str = "int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { if (i % 3 == 0) { s = s + i; } } output(s); return s; }";

    fn duplicated() -> Module {
        let mut m = flowery_lang::compile("t", SRC).unwrap();
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        m
    }

    #[test]
    fn patches_at_risk_branches_and_verifies() {
        let mut m = duplicated();
        let n = apply(&mut m);
        assert!(n > 0, "duplicated code has checker-split branches at risk");
        verify_module(&m).unwrap();
        assert!(m.find_global(EXPECT_GLOBAL).is_some());
    }

    #[test]
    fn preserves_semantics() {
        let mut m = duplicated();
        let before = Interpreter::new(&m).run(&ExecConfig::default(), None);
        apply(&mut m);
        let after = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(before.status, after.status);
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn fused_branches_are_not_patched() {
        // Without duplication, the loop compare feeds its branch directly:
        // fusable, not at risk, no patch.
        let mut m =
            flowery_lang::compile("t", "int main() { int i = 0; while (i < 5) { i = i + 1; } return i; }").unwrap();
        let n = apply(&mut m);
        assert_eq!(n, 0, "fusable branches must not be patched");
    }

    #[test]
    fn wrong_path_faults_are_detected_at_assembly() {
        use flowery_backend::{compile_module, AsmFaultSpec, BackendConfig, Machine};
        use flowery_ir::interp::ExecStatus;
        // Compare outcome populations: with the patch, flags faults on the
        // `test` of the protected branch must be detected instead of
        // corrupting output.
        let plain = duplicated();
        let mut patched = plain.clone();
        apply(&mut patched);
        let run_flags_faults = |m: &Module| -> (u64, u64) {
            let prog = compile_module(m, &BackendConfig::default());
            let mach = Machine::new(m, &prog);
            let golden = mach.run(&ExecConfig::default(), None);
            let cfg = ExecConfig::with_budget_for(golden.dyn_insts);
            let (mut sdc, mut detected) = (0u64, 0u64);
            // Sweep all sites with bit pattern 0 (ZF-class flip on flags).
            for site in 0..golden.fault_sites {
                let r = mach.run(&cfg, Some(AsmFaultSpec::single(site, 1)));
                match r.status {
                    ExecStatus::Completed(_) if r.output != golden.output => sdc += 1,
                    ExecStatus::Detected => detected += 1,
                    _ => {}
                }
            }
            (sdc, detected)
        };
        let (sdc_plain, _) = run_flags_faults(&plain);
        let (sdc_patched, det_patched) = run_flags_faults(&patched);
        assert!(det_patched > 0);
        assert!(
            sdc_patched < sdc_plain,
            "patch must reduce silent corruptions: {sdc_patched} vs {sdc_plain}"
        );
    }

    #[test]
    fn trampolines_do_not_disturb_other_predecessors() {
        // Two branches into the same join block; patching one must not
        // make entries from the other path trip the checker.
        let src = "int main() { int x = 4; int r = 0;\n\
                   if (x > 2) { r = 1; } \n\
                   if (x > 3) { r = r + 2; }\n\
                   output(r); return r; }";
        let mut m = flowery_lang::compile("t", src).unwrap();
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        let before = Interpreter::new(&m).run(&ExecConfig::default(), None);
        apply(&mut m);
        verify_module(&m).unwrap();
        let after = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(before.status, after.status);
        assert_eq!(before.output, after.output);
    }
}
