//! Flowery patch 1: **eager mode of store** (paper §6.1).
//!
//! Plain duplication checks a value *before* storing it (lazy mode), which
//! places the store in the continuation block after the checker's branch —
//! so the `-O0` backend must reload the value from its stack home, and that
//! reload `mov` is an unprotected fault site (store penetration).
//!
//! The eager mode swaps the store with its checker: store first (in the
//! same block as the value's definition, where the register cache still
//! holds it), check afterwards. If the stored value was corrupted the
//! checker still fires before any further progress; the program never
//! *uses* the bad memory (paper: "if the error data has been detected, we
//! don't need to keep running this program").

use flowery_ir::inst::{InstKind, IrRole, Terminator};
use flowery_ir::module::Module;
use flowery_ir::value::{BlockId, Op};

/// Apply the eager-store transformation in place; returns how many stores
/// were swapped with their checkers.
pub fn apply(m: &mut Module) -> usize {
    let mut moved = 0;
    for f in &mut m.functions {
        // Pattern per block B:
        //   B:     ... ; <checker cmp group> ; br %ok, CONT, DETECT
        //   CONT:  store <val> ...  (first instruction, role App)
        // and the checker compares <val> against its shadow.
        // Rewrite: move the store to B, before the checker group.
        loop {
            let mut change: Option<(BlockId, BlockId)> = None;
            for (bi, block) in f.blocks.iter().enumerate() {
                let Terminator::Br { cond, then_bb, else_bb } = &block.term else {
                    continue;
                };
                let Some(cond_id) = cond.as_inst() else { continue };
                if f.inst(cond_id).role != IrRole::Checker {
                    continue;
                }
                // `else` must be a detector block (checker shape).
                if !is_detector_block(f, *else_bb) {
                    continue;
                }
                let cont = *then_bb;
                let Some(&first) = f.block(cont).insts.first() else {
                    continue;
                };
                let finst = f.inst(first);
                if finst.role != IrRole::App {
                    continue;
                }
                let InstKind::Store { val, .. } = &finst.kind else {
                    continue;
                };
                // Only swap when the checker guards this store's value:
                // the checker compare must read `val` (directly, or through
                // a bitcast for floats).
                if !checker_reads(f, cond_id, *val) {
                    continue;
                }
                change = Some((BlockId(bi as u32), cont));
                break;
            }
            let Some((b, cont)) = change else { break };
            // Move the store from cont[0] to before the checker group in b.
            let store_id = f.block_mut(cont).insts.remove(0);
            let insert_at = checker_group_start(f, b);
            f.block_mut(b).insts.insert(insert_at, store_id);
            moved += 1;
        }
    }
    moved
}

/// Position of the first instruction of the trailing checker group in `b`.
fn checker_group_start(f: &flowery_ir::Function, b: BlockId) -> usize {
    let insts = &f.block(b).insts;
    let mut start = insts.len();
    while start > 0 && f.inst(insts[start - 1]).role == IrRole::Checker {
        start -= 1;
    }
    start
}

/// Does `b` look like a duplication detector block (`detect_error` call)?
fn is_detector_block(f: &flowery_ir::Function, b: BlockId) -> bool {
    f.block(b).insts.iter().any(|&i| {
        matches!(
            &f.inst(i).kind,
            InstKind::Call {
                callee: flowery_ir::Callee::Intrinsic(flowery_ir::Intrinsic::DetectError),
                ..
            }
        )
    })
}

/// Does the checker compare `cond_id` read operand `val` (directly or
/// through one checker bitcast)?
fn checker_reads(f: &flowery_ir::Function, cond_id: flowery_ir::InstId, val: Op) -> bool {
    for op in f.inst(cond_id).operands() {
        if op == val {
            return true;
        }
        if let Some(d) = op.as_inst() {
            let dd = f.inst(d);
            if dd.role == IrRole::Checker {
                if let InstKind::Cast { val: inner, .. } = &dd.kind {
                    if *inner == val {
                        return true;
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplicate::{duplicate_module, DupConfig};
    use crate::select::ProtectionPlan;
    use flowery_ir::interp::{ExecConfig, Interpreter};
    use flowery_ir::verify::verify_module;

    const SRC: &str = "int main() { int a = 3; int b = a * 7 + 1; int c = b - a; output(c); return c; }";

    fn duplicated() -> Module {
        let mut m = flowery_lang::compile("t", SRC).unwrap();
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        m
    }

    #[test]
    fn moves_stores_ahead_of_checkers() {
        let mut m = duplicated();
        let moved = apply(&mut m);
        assert!(moved > 0, "expected stores to be swapped");
        verify_module(&m).unwrap();
    }

    #[test]
    fn preserves_semantics() {
        let mut m = duplicated();
        let before = Interpreter::new(&m).run(&ExecConfig::default(), None);
        apply(&mut m);
        let after = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(before.status, after.status);
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn store_lands_in_same_block_as_value_definition() {
        let mut m = duplicated();
        apply(&mut m);
        // For each swapped store, its value's defining instruction must now
        // be in the same block (so the backend register cache can serve it).
        let f = &m.functions[m.main_func().unwrap().index()];
        let mut colocated = 0;
        for block in &f.blocks {
            for &iid in &block.insts {
                if let InstKind::Store { val, .. } = &f.inst(iid).kind {
                    if let Some(d) = val.as_inst() {
                        if block.insts.contains(&d) {
                            colocated += 1;
                        }
                    }
                }
            }
        }
        assert!(colocated > 0);
    }

    #[test]
    fn removes_store_reload_movs_at_assembly_level() {
        use flowery_backend::mir::AOp;
        use flowery_backend::{compile_module, AKind, AsmRole, BackendConfig};
        let lazy = duplicated();
        let mut eager = lazy.clone();
        apply(&mut eager);
        let count_store_reloads = |m: &Module| -> usize {
            let prog = compile_module(m, &BackendConfig::default());
            prog.insts
                .iter()
                .filter(|i| {
                    i.role == AsmRole::OperandReload
                        && matches!(i.kind, AKind::Mov { src: AOp::Mem(_), dst: AOp::Reg(_), .. })
                        && i.prov.is_some_and(|(fid, iid)| {
                            matches!(m.functions[fid.index()].inst(iid).kind, InstKind::Store { .. })
                        })
                })
                .count()
        };
        let lazy_reloads = count_store_reloads(&lazy);
        let eager_reloads = count_store_reloads(&eager);
        assert!(
            eager_reloads < lazy_reloads,
            "eager mode must remove store-feeding reloads: {eager_reloads} vs {lazy_reloads}"
        );
    }

    #[test]
    fn unduplicated_module_is_untouched() {
        let mut m = flowery_lang::compile("t", SRC).unwrap();
        let before = m.clone();
        assert_eq!(apply(&mut m), 0);
        assert_eq!(m, before);
    }
}
