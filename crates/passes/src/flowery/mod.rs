//! The Flowery mitigation (paper §6): three compiler patches applied on top
//! of instruction duplication that close the cross-layer protection gap.
//!
//! 1. [`eager_store`] — store before checking, so the stored value is still
//!    register-cached (kills store penetration).
//! 2. [`branch_check`] — record the intended branch direction in a global
//!    and verify it on both outgoing edges (kills branch penetration).
//! 3. [`anti_cmp`] — isolate duplicated comparisons behind an opaque guard
//!    block so backend folding cannot remove them (kills comparison
//!    penetration).
//!
//! Call and mapping penetration have no LLVM-level fix (paper §6.3, last
//! paragraph); the three patches above cover ~94% of deficiency cases.

pub mod anti_cmp;
pub mod branch_check;
pub mod eager_store;

use flowery_ir::Module;
use serde::{Deserialize, Serialize};

/// Which Flowery patches to apply.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FloweryConfig {
    pub eager_store: bool,
    pub branch_check: bool,
    pub anti_cmp: bool,
}

impl Default for FloweryConfig {
    fn default() -> FloweryConfig {
        FloweryConfig { eager_store: true, branch_check: true, anti_cmp: true }
    }
}

/// Statistics from one Flowery run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloweryStats {
    /// Stores swapped ahead of their checkers.
    pub eager_stores: usize,
    /// Branches given postponed condition checks.
    pub checked_branches: usize,
    /// Comparison checkers isolated from folding.
    pub isolated_compares: usize,
}

/// Apply the configured Flowery patches to an already-duplicated module.
pub fn apply_flowery(m: &mut Module, cfg: &FloweryConfig) -> FloweryStats {
    let mut stats = FloweryStats::default();
    // Order matters: anti-cmp isolates comparison checkers first (it keys
    // on the original checker shape), then eager-store swaps stores, then
    // branch checks wrap the remaining at-risk branches.
    if cfg.anti_cmp {
        stats.isolated_compares = anti_cmp::apply(m);
    }
    if cfg.eager_store {
        stats.eager_stores = eager_store::apply(m);
    }
    if cfg.branch_check {
        stats.checked_branches = branch_check::apply(m);
    }
    stats
}
