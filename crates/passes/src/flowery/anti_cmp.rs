//! Flowery patch 3: **anti-comparison-duplication optimization** (§6.3).
//!
//! The backend's block-local value analysis recognizes a duplicated
//! comparison as redundant and folds the checker compare into a constant
//! (comparison penetration). Flowery defeats the analysis by *separating
//! the compare from the definitions of its operands*: the shadow compare
//! and the checker are moved into a dedicated block, reached through an
//! opaque conditional guard. The equivalence between the original and
//! shadow compares can then no longer be established block-locally, so the
//! folding never fires and the protection survives to the assembly level.

use flowery_ir::inst::{Callee, InstData, InstKind, Intrinsic, IrRole, Terminator};
use flowery_ir::module::{Global, GlobalInit, Module};
use flowery_ir::types::Type;
use flowery_ir::value::{BlockId, FuncId, GlobalId, InstId, Op};
use flowery_ir::IPred;

/// Name of the opaque guard global (always 1; the compiler cannot know).
pub const OPAQUE_GLOBAL: &str = "__flowery_opaque";

/// Apply the anti-comparison transformation in place. Returns the number of
/// comparison checkers that were isolated.
pub fn apply(m: &mut Module) -> usize {
    let opaque = ensure_global(m);
    let mut isolated = 0;
    for fi in 0..m.functions.len() {
        isolated += patch_function(m, FuncId(fi as u32), opaque);
    }
    isolated
}

fn ensure_global(m: &mut Module) -> GlobalId {
    m.find_global(OPAQUE_GLOBAL).unwrap_or_else(|| {
        m.add_global(Global {
            name: OPAQUE_GLOBAL.into(),
            elem: Type::I64,
            count: 1,
            init: GlobalInit::Elems(vec![1]),
        })
    })
}

fn patch_function(m: &mut Module, fid: FuncId, opaque: GlobalId) -> usize {
    let mut isolated = 0;
    let mut bi = 0;
    while bi < m.func(fid).blocks.len() {
        let bid = BlockId(bi as u32);
        bi += 1;
        let Some((shadow_pos, detect)) = find_comparison_checker(m.func(fid), bid) else {
            continue;
        };
        let f = m.func_mut(fid);
        // Split so the shadow compare + checker group live in their own
        // block, then guard entry to it with an opaque condition.
        let cmp_block = f.split_block(bid, shadow_pos);
        let load = f.add_inst(InstData::with_role(
            InstKind::Load { ptr: Op::Global(opaque), ty: Type::I64 },
            IrRole::Patch,
        ));
        let guard = f.add_inst(InstData::with_role(
            InstKind::ICmp {
                pred: IPred::Eq,
                ty: Type::I64,
                lhs: Op::inst(load),
                rhs: Op::ci64(1),
            },
            IrRole::Patch,
        ));
        f.block_mut(bid).insts.push(load);
        f.block_mut(bid).insts.push(guard);
        f.block_mut(bid).term = Terminator::Br { cond: Op::inst(guard), then_bb: cmp_block, else_bb: detect };
        isolated += 1;
    }
    isolated
}

/// Detect the paper's comparison-validation shape in `bid`:
///
/// ```text
///   ... ; %orig = icmp/fcmp (App) ; %shadow = icmp/fcmp (Shadow) ;
///   [checker casts]* ; %chk = icmp eq (Checker) ;
///   br %chk, CONT, DETECT
/// ```
///
/// Returns the position of the shadow compare and the detector block.
fn find_comparison_checker(f: &flowery_ir::Function, bid: BlockId) -> Option<(usize, BlockId)> {
    let block = f.block(bid);
    let Terminator::Br { cond, else_bb, .. } = &block.term else {
        return None;
    };
    let chk = cond.as_inst()?;
    let chk_data = f.inst(chk);
    if chk_data.role != IrRole::Checker {
        return None;
    }
    if !is_detector_block(f, *else_bb) {
        return None;
    }
    // The checker must validate a *comparison*: one of its compared values
    // is a Shadow compare instruction.
    let InstKind::ICmp { lhs, rhs, .. } = &chk_data.kind else {
        return None;
    };
    let shadow_cmp = [lhs, rhs].into_iter().filter_map(|o| o.as_inst()).find(|&i| {
        let d = f.inst(i);
        d.role == IrRole::Shadow && matches!(d.kind, InstKind::ICmp { .. } | InstKind::FCmp { .. })
    })?;
    // The shadow compare must be in this very block (otherwise the folder
    // could not fold it and no isolation is needed).
    let shadow_pos = block.insts.iter().position(|&i| i == shadow_cmp)?;
    // Idempotence: in unpatched code the shadow always follows its original
    // in the same block (position >= 1). A shadow at position 0 means this
    // block is already an isolated compare block from a previous run.
    if shadow_pos == 0 {
        return None;
    }
    Some((shadow_pos, *else_bb))
}

fn is_detector_block(f: &flowery_ir::Function, b: BlockId) -> bool {
    f.block(b)
        .insts
        .iter()
        .any(|&i| matches!(&f.inst(i).kind, InstKind::Call { callee: Callee::Intrinsic(Intrinsic::DetectError), .. }))
}

/// Statistics helper for experiments: count comparison checkers that
/// survive backend folding.
pub fn surviving_compare_checkers(m: &Module) -> usize {
    let mut folded = m.clone();
    flowery_backend::fold::fold_redundant_compares(&mut folded);
    folded
        .functions
        .iter()
        .map(|f| {
            f.live_insts()
                .iter()
                .filter(|&&i| {
                    f.inst(i).role == IrRole::Checker
                        && matches!(f.inst(i).kind, InstKind::ICmp { .. })
                        && checker_compares_shadow_cmp(f, i)
                })
                .count()
        })
        .sum()
}

fn checker_compares_shadow_cmp(f: &flowery_ir::Function, chk: InstId) -> bool {
    let InstKind::ICmp { lhs, rhs, .. } = &f.inst(chk).kind else {
        return false;
    };
    [lhs, rhs].into_iter().filter_map(|o| o.as_inst()).any(|i| {
        let d = f.inst(i);
        d.role == IrRole::Shadow && matches!(d.kind, InstKind::ICmp { .. } | InstKind::FCmp { .. })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplicate::{duplicate_module, DupConfig};
    use crate::select::ProtectionPlan;
    use flowery_ir::interp::{ExecConfig, Interpreter};
    use flowery_ir::verify::verify_module;

    const SRC: &str = "int main() { int a = 3; int b = 9; if (a < b) { output(1); } else { output(2); } return 0; }";

    fn duplicated() -> Module {
        let mut m = flowery_lang::compile("t", SRC).unwrap();
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        m
    }

    #[test]
    fn isolates_comparison_checkers() {
        let mut m = duplicated();
        let n = apply(&mut m);
        assert!(n > 0, "the branch-condition checker must be isolated");
        verify_module(&m).unwrap();
        assert!(m.find_global(OPAQUE_GLOBAL).is_some());
    }

    #[test]
    fn preserves_semantics() {
        let mut m = duplicated();
        let before = Interpreter::new(&m).run(&ExecConfig::default(), None);
        apply(&mut m);
        let after = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(before.status, after.status);
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn defeats_backend_compare_folding() {
        let plain = duplicated();
        let mut patched = plain.clone();
        apply(&mut patched);
        let before = surviving_compare_checkers(&plain);
        let after = surviving_compare_checkers(&patched);
        assert_eq!(before, 0, "without the patch, folding kills every comparison checker");
        assert!(after > 0, "with the patch, comparison checkers survive folding");
    }

    #[test]
    fn idempotent_application() {
        let mut m = duplicated();
        let n1 = apply(&mut m);
        let snapshot = m.clone();
        let n2 = apply(&mut m);
        assert!(n1 > 0);
        assert_eq!(n2, 0, "second application must find nothing to patch");
        assert_eq!(m, snapshot);
    }

    #[test]
    fn detected_faults_at_assembly_after_patch() {
        use flowery_backend::{compile_module, AsmFaultSpec, BackendConfig, Machine};
        use flowery_ir::interp::ExecStatus;
        let plain = duplicated();
        let mut patched = plain.clone();
        apply(&mut patched);
        // The comparison itself (setcc result) must now be protected at the
        // assembly level: faults that silently flipped the output before
        // are detected after the patch.
        let sweep = |m: &Module| -> (u64, u64) {
            let prog = compile_module(m, &BackendConfig::default());
            let mach = Machine::new(m, &prog);
            let golden = mach.run(&ExecConfig::default(), None);
            let cfg = ExecConfig::with_budget_for(golden.dyn_insts);
            let (mut sdc, mut det) = (0, 0);
            for site in 0..golden.fault_sites {
                for bit in [0u32, 1] {
                    let r = mach.run(&cfg, Some(AsmFaultSpec::single(site, bit)));
                    match r.status {
                        ExecStatus::Completed(_) if r.output != golden.output => sdc += 1,
                        ExecStatus::Detected => det += 1,
                        _ => {}
                    }
                }
            }
            (sdc, det)
        };
        let (sdc_plain, _) = sweep(&plain);
        let (sdc_patched, det) = sweep(&patched);
        assert!(det > 0);
        assert!(sdc_patched <= sdc_plain, "{sdc_patched} vs {sdc_plain}");
    }
}
