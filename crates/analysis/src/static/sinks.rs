//! Sink and guard definitions for the Layer-1 taint pass.
//!
//! A *sink* is an architectural escape point: once a corruptible value
//! reaches one without an intervening validation compare, the fault can
//! become a silent data corruption. A *guard* is a compare whose mismatch
//! arm transfers to a detector (`ud2.detect`) — the machine-code shape of a
//! duplication checker, a Flowery patch check, or an assembly-hardening
//! read-back verification.

use flowery_backend::mir::{AKind, AOp, AsmRole, Loc};
use flowery_backend::AsmProgram;
use flowery_ir::IrRole;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The set of possibly-corrupted locations along one dataflow path.
/// Ordered so it can key a visited-state set deterministically.
pub type TaintSet = BTreeSet<Loc>;

/// The architectural sink a corrupted value escaped through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sink {
    /// Tainted operand reaches an output port (`out.*`).
    Output,
    /// Tainted flags steer an unguarded conditional branch.
    Branch,
    /// Tainted argument register flows into a call.
    CallArg,
    /// Tainted return value (rax/xmm0) leaves the function.
    RetVal,
    /// Corrupted non-frame memory (global/heap image) outlives the
    /// function or is visible to a callee.
    MemEscape,
    /// The fault corrupts the control image itself (pushed return address
    /// or saved frame pointer) — statically unprovable safe.
    ControlImage,
    /// The per-site state budget was exhausted; flagged conservatively.
    Unbounded,
}

impl Sink {
    pub fn name(self) -> &'static str {
        match self {
            Sink::Output => "output",
            Sink::Branch => "branch-flags",
            Sink::CallArg => "call-arg",
            Sink::RetVal => "ret-val",
            Sink::MemEscape => "mem-escape",
            Sink::ControlImage => "control-image",
            Sink::Unbounded => "unbounded",
        }
    }
}

/// Precomputed guard classification for every instruction of a program.
#[derive(Debug, Clone)]
pub struct Guards {
    /// `cmp`/`test`/`ucomi` whose flag consumer branches to a detector:
    /// the validation compares of checkers, Flowery patches, and hardening.
    guarded_compare: Vec<bool>,
    /// `jcc` with one arm leading straight to a detector (the consumer of a
    /// guarded compare). Corrupted flags here either fire the detector or
    /// fall onto the clean arm — never a silent wrong direction.
    detect_jcc: Vec<bool>,
    /// Application `jcc` whose *every* successor enters a Flowery
    /// branch-check trampoline (patch code revalidating the direction
    /// against the recorded expectation).
    guarded_branch: Vec<bool>,
}

impl Guards {
    pub fn compute(prog: &AsmProgram) -> Guards {
        let n = prog.insts.len();
        let mut guarded_compare = vec![false; n];
        let mut detect_jcc = vec![false; n];
        let mut guarded_branch = vec![false; n];
        for i in 0..n {
            let inst = &prog.insts[i];
            if let AKind::Jcc { target, .. } = inst.kind {
                if leads_to_detect(prog, target) || leads_to_detect(prog, i as u32 + 1) {
                    detect_jcc[i] = true;
                }
            }
            if inst.kind.is_compare()
                && (matches!(inst.ir_role, IrRole::Checker | IrRole::Patch) || inst.role == AsmRole::Harden)
                && i + 1 < n
                && detect_jcc_at(prog, i + 1)
            {
                guarded_compare[i] = true;
            }
        }
        for i in 0..n {
            if let AKind::Jcc { target, .. } = prog.insts[i].kind {
                if !detect_jcc[i]
                    && trampoline_guarded(prog, &guarded_compare, target)
                    && trampoline_guarded(prog, &guarded_compare, i as u32 + 1)
                {
                    guarded_branch[i] = true;
                }
            }
        }
        Guards { guarded_compare, detect_jcc, guarded_branch }
    }

    /// Is instruction `idx` a validation compare backed by a detector?
    pub fn compare_is_guarded(&self, idx: u32) -> bool {
        self.guarded_compare.get(idx as usize).copied().unwrap_or(false)
    }

    /// Is `idx` a `jcc` with a detector arm (a guard's own branch)?
    pub fn jcc_has_detect_arm(&self, idx: u32) -> bool {
        self.detect_jcc.get(idx as usize).copied().unwrap_or(false)
    }

    /// Is `idx` an application branch whose direction is revalidated by
    /// Flowery trampolines on every outgoing edge?
    pub fn branch_is_guarded(&self, idx: u32) -> bool {
        self.guarded_branch.get(idx as usize).copied().unwrap_or(false)
    }
}

fn detect_jcc_at(prog: &AsmProgram, i: usize) -> bool {
    match prog.insts[i].kind {
        AKind::Jcc { target, .. } => leads_to_detect(prog, target) || leads_to_detect(prog, i as u32 + 1),
        _ => false,
    }
}

/// Following unconditional jumps only, is the first real instruction from
/// `idx` a detector trap? (Linker sentinels / out-of-range targets: no.)
fn leads_to_detect(prog: &AsmProgram, mut idx: u32) -> bool {
    for _ in 0..8 {
        let Some(inst) = prog.insts.get(idx as usize) else {
            return false;
        };
        match inst.kind {
            AKind::Jmp { target } => idx = target,
            AKind::DetectTrap => return true,
            _ => return false,
        }
    }
    false
}

/// Following jumps, does `idx` enter a run of Patch-role instructions that
/// contains a guarded compare within a few steps (a branch-check
/// trampoline)?
fn trampoline_guarded(prog: &AsmProgram, guarded_compare: &[bool], mut idx: u32) -> bool {
    for _ in 0..8 {
        let Some(inst) = prog.insts.get(idx as usize) else {
            return false;
        };
        match inst.kind {
            AKind::Jmp { target } => idx = target,
            _ if inst.ir_role == IrRole::Patch => {
                if guarded_compare[idx as usize] {
                    return true;
                }
                idx += 1;
            }
            _ => return false,
        }
    }
    false
}

/// Two-strength taint state for one dataflow path.
///
/// `def` holds *definitely corrupted* locations: an unbroken chain of
/// precise reads links them to the fault destination, so their value is
/// guaranteed to differ from the golden run (the injector always flips a
/// bit within the destination width). `weak` holds *possibly corrupted*
/// locations: the chain passed through the non-addressable `Mem` summary
/// at least once, so a read may or may not have hit the corrupted cell.
///
/// The distinction is what makes the checker kill rule sound in both
/// directions: a guarded compare of a one-sided **definite** value always
/// fires the detector (the path ends), while a one-sided **weak** value
/// may compare clean and sail through (the path continues, flags clean).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Taint {
    pub def: TaintSet,
    pub weak: TaintSet,
}

impl Taint {
    pub fn definite(loc: Loc) -> Taint {
        Taint { def: [loc].into(), weak: TaintSet::new() }
    }

    pub fn weak(loc: Loc) -> Taint {
        Taint { def: TaintSet::new(), weak: [loc].into() }
    }

    pub fn is_empty(&self) -> bool {
        self.def.is_empty() && self.weak.is_empty()
    }

    pub fn contains(&self, loc: Loc) -> bool {
        self.def.contains(&loc) || self.weak.contains(&loc)
    }

    pub fn remove(&mut self, loc: Loc) {
        self.def.remove(&loc);
        self.weak.remove(&loc);
    }

    /// Any tracked global cell tainted (definitely or weakly)?
    pub fn any_global(&self) -> bool {
        let is_global = |l: &&Loc| matches!(l, Loc::Global(_));
        self.def.iter().any(|l| is_global(&l)) || self.weak.iter().any(|l| is_global(&l))
    }

    /// Is corruption visible through memory at large — the summary, or any
    /// global cell (globals stay addressable through pointers)? This is
    /// the escape test for calls and returns.
    pub fn memory_visible(&self) -> bool {
        self.contains(Loc::Mem) || self.any_global()
    }

    /// May-alias closure for the field-sensitive memory model: a read of a
    /// tracked global cell may hit summary corruption, and a summary
    /// (pointer) read may hit a corrupted global cell. Frame slots never
    /// alias anything (spill homes are not address-taken).
    pub fn mem_aliases(&self, loc: Loc) -> bool {
        match loc {
            Loc::Global(_) => self.contains(Loc::Mem),
            Loc::Mem => self.any_global(),
            _ => false,
        }
    }

    /// Is the *value* this operand denotes possibly corrupted? For a
    /// memory operand this covers the addressed cell, its may-alias
    /// closure, and a corrupted base register (which makes the access read
    /// the wrong cell).
    pub fn op_value_tainted(&self, op: &AOp) -> bool {
        match op {
            AOp::Reg(r) => self.contains(Loc::Reg(*r)),
            AOp::Imm(_) => false,
            AOp::Mem(m) => {
                let l = m.loc();
                self.contains(l) || self.mem_aliases(l) || m.base.is_some_and(|b| self.contains(Loc::Reg(b)))
            }
        }
    }

    /// Is this operand's value *definitely* corrupted — reachable from the
    /// fault through precise locations only? (A corrupted base register
    /// counts: the access reads the wrong cell, which differs from the
    /// golden value in all but pathological coincidences.)
    pub fn op_definitely_tainted(&self, op: &AOp) -> bool {
        match op {
            AOp::Reg(r) => self.def.contains(&Loc::Reg(*r)),
            AOp::Imm(_) => false,
            AOp::Mem(m) => {
                (m.loc().is_strong() && self.def.contains(&m.loc()))
                    || m.base.is_some_and(|b| self.def.contains(&Loc::Reg(b)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_backend::mir::{MemRef, Reg};
    use flowery_backend::{compile_module, BackendConfig};
    use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};

    #[test]
    fn guards_exist_only_in_protected_code() {
        let src = "int main() { int a = 2; int b = a * 3 + 1; output(b); return b; }";
        let raw = flowery_lang::compile("t", src).unwrap();
        let raw_prog = compile_module(&raw, &BackendConfig::default());
        let raw_guards = Guards::compute(&raw_prog);
        assert!(
            (0..raw_prog.insts.len() as u32).all(|i| !raw_guards.compare_is_guarded(i)),
            "no validation compares without protection"
        );

        let mut m = raw.clone();
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        let prog = compile_module(&m, &BackendConfig::default());
        let guards = Guards::compute(&prog);
        let guarded: Vec<u32> = (0..prog.insts.len() as u32).filter(|&i| guards.compare_is_guarded(i)).collect();
        assert!(!guarded.is_empty(), "duplication checkers must be recognized");
        for &i in &guarded {
            assert!(prog.insts[i as usize].kind.is_compare());
            assert!(guards.jcc_has_detect_arm(i + 1), "a guarded compare is consumed by a detector-armed jcc");
        }
    }

    #[test]
    fn weak_taint_is_not_definite() {
        let t = Taint::weak(Loc::Mem);
        let opaque = AOp::Mem(MemRef { base: None, disp: 64 });
        assert!(t.op_value_tainted(&opaque), "global read may alias the corrupted summary");
        assert!(!t.op_definitely_tainted(&opaque), "but is never a guaranteed mismatch");

        // The field-sensitive split: a named global cell is strong, so
        // definite taint survives, and it aliases the summary both ways.
        let g = Taint::definite(Loc::Global(64));
        assert!(g.op_value_tainted(&opaque));
        assert!(g.op_definitely_tainted(&opaque), "a named global cell keeps its identity");
        assert!(g.memory_visible(), "globals stay addressable through pointers");
        assert!(g.mem_aliases(Loc::Mem), "summary reads may hit the corrupted global");
        assert!(!g.mem_aliases(Loc::Frame(-8)), "frame slots never alias");

        let d = Taint::definite(Loc::Reg(Reg::Rcx));
        let through_base = AOp::Mem(MemRef { base: Some(Reg::Rcx), disp: 0 });
        assert!(d.op_value_tainted(&through_base));
        assert!(d.op_definitely_tainted(&through_base), "corrupted base reads the wrong cell");
        assert!(!d.op_value_tainted(&AOp::Imm(7)));
    }
}
