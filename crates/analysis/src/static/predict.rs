//! Static penetration prediction and cross-validation against injection
//! ground truth.
//!
//! [`predict_program`] runs the Layer-1 taint engine over every injectable
//! site of a hardened program and classifies each flagged site with the
//! same category signatures the dynamic root-cause classifier uses,
//! yielding a *predicted* [`PenetrationBreakdown`] without firing a single
//! fault. [`cross_validate`] then scores the predictions against measured
//! SDC sites from an injection campaign: per-category recall ("of the
//! sites the campaign proved vulnerable, how many did the lint flag?"),
//! a precision lower bound, and category agreement.
//!
//! Two deliberate category divergences from the dynamic classifier (both
//! documented in DESIGN.md §7): corruption of a data move's *memory image*
//! (the stored cell itself) is predicted `Unprotected` — it lies outside
//! instruction duplication's sphere of replication and no patch can guard
//! it — where the dynamic classifier folds it into `Store`; and an operand
//! reload feeding an output escape is predicted `Call` (the escape shape)
//! where the dynamic classifier groups it with store feeds.

use super::sinks::Sink;
use super::taint::{TaintEngine, Verdict};
use crate::report::{pct, render_table};
use crate::rootcause::{Classifier, Penetration, PenetrationBreakdown};
use flowery_backend::mir::{AKind, AOp, AsmRole, FaultDest};
use flowery_backend::{AInst, AsmProgram};
use flowery_ir::inst::InstKind;
use flowery_ir::module::Module;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// One statically flagged site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SitePrediction {
    /// Instruction index in the linked program.
    pub idx: u32,
    /// The sink the taint reached.
    pub sink: Sink,
    /// Predicted penetration category.
    pub category: Penetration,
}

/// Result of a static pass over one program.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StaticReport {
    /// Injectable sites examined (fault destination exists).
    pub sites: u64,
    /// Sites proven protected: every corruption path detects or dies.
    pub protected: u64,
    /// Sites with an unchecked path to a sink, in instruction order.
    pub flagged: Vec<SitePrediction>,
    /// Predicted category distribution over the flagged sites.
    pub breakdown: PenetrationBreakdown,
}

impl StaticReport {
    pub fn is_flagged(&self, idx: u32) -> bool {
        self.flagged.binary_search_by_key(&idx, |p| p.idx).is_ok()
    }
}

/// Run the taint engine over every injectable site of `prog`.
///
/// `fold_enabled` must match the backend configuration `prog` was compiled
/// with (it decides which duplication chains lost their shadow to compare
/// folding, the comparison-penetration signature).
pub fn predict_program(m: &Module, prog: &AsmProgram, fold_enabled: bool) -> StaticReport {
    let engine = TaintEngine::new(m, prog);
    let classifier = Classifier::new(m, fold_enabled);
    let mut report = StaticReport::default();
    for idx in 0..prog.insts.len() as u32 {
        let inst = &prog.insts[idx as usize];
        if matches!(inst.kind.fault_dest(), FaultDest::None) {
            continue;
        }
        report.sites += 1;
        match engine.analyze_site(idx) {
            Verdict::Protected => report.protected += 1,
            Verdict::Penetrates(sink) => {
                let category = predicted_category(m, &classifier, inst, sink);
                report.breakdown.record(category);
                report.flagged.push(SitePrediction { idx, sink, category });
            }
        }
    }
    report
}

/// Predicted category for a flagged site — the dynamic classifier's rules,
/// with the two documented divergences.
pub fn predicted_category(m: &Module, classifier: &Classifier<'_>, inst: &AInst, sink: Sink) -> Penetration {
    // Memory-image corruption: the fault lands in the cell a data move just
    // wrote. The value was validated *before* the write; no duplication-
    // style check can re-validate the image. Outside the sphere of
    // replication, so: unprotected (the dynamic classifier attributes these
    // to store penetration of the guarded store they serve).
    if matches!(inst.kind.fault_dest(), FaultDest::MemVal(_))
        && matches!(inst.kind, AKind::Mov { dst: AOp::Mem(_), .. } | AKind::MovSd { dst: AOp::Mem(_), .. })
    {
        return Penetration::Unprotected;
    }
    // Reload feeding an output escape: the corrupted value flows into the
    // out-port / call rather than a store's data. Predicted as the escape
    // shape (call) even though the dynamic classifier groups it with store
    // feeds.
    if inst.role == AsmRole::OperandReload {
        if let Some((fid, iid)) = inst.prov {
            if matches!(m.functions[fid.index()].inst(iid).kind, InstKind::Call { .. }) {
                return Penetration::Call;
            }
        }
    }
    let base = classifier.classify(inst);
    // A control-image corruption that the base rules leave unexplained is a
    // register-to-memory mapping artifact (saved rbp / return address).
    if sink == Sink::ControlImage && matches!(base, Penetration::Unprotected | Penetration::Other) {
        return Penetration::Mapping;
    }
    // A branch prediction is only honest when the escape actually steers a
    // branch. If the signature says "condition reload" but the taint
    // escaped through data (the branch itself was guarded), reattribute by
    // sink: the corruption reaches the output through the data path.
    if base == Penetration::Branch && sink != Sink::Branch {
        return match sink {
            Sink::MemEscape => Penetration::Store,
            Sink::RetVal | Sink::CallArg | Sink::Output => Penetration::Call,
            Sink::ControlImage => Penetration::Mapping,
            _ => Penetration::Unprotected,
        };
    }
    base
}

/// Per-category agreement between static predictions and measured SDCs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CategoryRow {
    pub category: Penetration,
    /// Unique measured SDC sites the dynamic classifier puts here.
    pub measured: u64,
    /// Of those, how many the static pass flagged (any category).
    pub flagged: u64,
    /// Static predictions in this category (whole program).
    pub predicted: u64,
    /// Measured sites flagged *with the matching* predicted category.
    pub agree: u64,
}

impl CategoryRow {
    /// Site-level recall: measured sites flagged / measured sites.
    pub fn recall(&self) -> f64 {
        if self.measured == 0 {
            1.0
        } else {
            self.flagged as f64 / self.measured as f64
        }
    }
}

/// Cross-validation of a static report against injection ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Validation {
    pub rows: Vec<CategoryRow>,
    /// Unique measured SDC sites.
    pub measured_sites: u64,
    /// Of those, statically flagged.
    pub flagged_measured: u64,
    /// Total statically flagged sites.
    pub flagged_total: u64,
}

impl Validation {
    /// Overall site-level recall (soundness measure).
    pub fn overall_recall(&self) -> f64 {
        if self.measured_sites == 0 {
            1.0
        } else {
            self.flagged_measured as f64 / self.measured_sites as f64
        }
    }

    /// Precision *lower bound*: flagged sites the campaign confirmed /
    /// flagged sites. A lower bound because the campaign samples — an
    /// unconfirmed flag may be a false positive or an unsampled true one.
    pub fn precision_lb(&self) -> f64 {
        if self.flagged_total == 0 {
            1.0
        } else {
            self.flagged_measured as f64 / self.flagged_total as f64
        }
    }

    /// Recall for one dynamic category.
    pub fn recall_of(&self, p: Penetration) -> f64 {
        self.rows.iter().find(|r| r.category == p).map_or(1.0, |r| r.recall())
    }
}

/// All seven classification buckets, real categories first.
const ALL_CLASSES: [Penetration; 7] = [
    Penetration::Store,
    Penetration::Branch,
    Penetration::Comparison,
    Penetration::Call,
    Penetration::Mapping,
    Penetration::Unprotected,
    Penetration::Other,
];

/// Score `report`'s predictions against the unique SDC sites of an
/// injection campaign (`sdc_insts` may contain duplicates).
pub fn cross_validate(
    m: &Module,
    prog: &AsmProgram,
    report: &StaticReport,
    sdc_insts: &[u32],
    fold_enabled: bool,
) -> Validation {
    let classifier = Classifier::new(m, fold_enabled);
    let measured: BTreeSet<u32> = sdc_insts.iter().copied().collect();
    let predicted_cat: HashMap<u32, Penetration> = report.flagged.iter().map(|p| (p.idx, p.category)).collect();
    let mut rows: Vec<CategoryRow> = ALL_CLASSES
        .iter()
        .map(|&category| CategoryRow {
            category,
            measured: 0,
            flagged: 0,
            predicted: report.breakdown.get(category),
            agree: 0,
        })
        .collect();
    let mut flagged_measured = 0;
    for &idx in &measured {
        let dyn_cat = classifier.classify(&prog.insts[idx as usize]);
        let row = rows.iter_mut().find(|r| r.category == dyn_cat).unwrap();
        row.measured += 1;
        if let Some(&pcat) = predicted_cat.get(&idx) {
            row.flagged += 1;
            flagged_measured += 1;
            if pcat == dyn_cat {
                row.agree += 1;
            }
        }
    }
    Validation {
        rows,
        measured_sites: measured.len() as u64,
        flagged_measured,
        flagged_total: report.flagged.len() as u64,
    }
}

/// Render the cross-validation table.
pub fn render_validation(v: &Validation) -> String {
    let rows: Vec<Vec<String>> = v
        .rows
        .iter()
        .map(|r| {
            vec![
                r.category.name().to_string(),
                r.measured.to_string(),
                r.flagged.to_string(),
                if r.measured == 0 { "-".into() } else { pct(r.recall()) },
                r.predicted.to_string(),
                r.agree.to_string(),
            ]
        })
        .collect();
    let mut s = render_table(&["category", "measured", "flagged", "recall", "predicted", "agree"], &rows);
    s.push_str(&format!(
        "overall: {}/{} measured SDC sites statically flagged ({}); precision >= {} ({} flagged)\n",
        v.flagged_measured,
        v.measured_sites,
        pct(v.overall_recall()),
        pct(v.precision_lb()),
        v.flagged_total,
    ));
    s
}

/// Per-IR-instruction prior for vulnerability ranking: how many flagged
/// machine sites trace back (via provenance) to each IR instruction.
pub fn static_prior(
    prog: &AsmProgram,
    report: &StaticReport,
) -> HashMap<(flowery_ir::FuncId, flowery_ir::InstId), u64> {
    let mut prior = HashMap::new();
    for p in &report.flagged {
        if let Some(prov) = prog.insts[p.idx as usize].prov {
            *prior.entry(prov).or_insert(0) += 1;
        }
    }
    prior
}
