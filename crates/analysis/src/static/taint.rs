//! Layer-1 forward taint dataflow over the hardened machine program.
//!
//! For every fault-injectable instruction (the *site*), the engine asks:
//! can a bit-flip in that instruction's architected destination reach an
//! architectural sink before a validation compare discharges it? The fault
//! model matches the injector exactly: the flip lands *after* the
//! instruction executes, within the destination's width, so a corrupted
//! value always differs from its golden counterpart.
//!
//! The walk is per-path (depth-first over `(instruction, taint-state)`
//! states) rather than a joined fixpoint: the checker kill rule — "exactly
//! one compare side definitely tainted ⇒ the detector fires" — is only
//! sound on unmerged path states, because a join could combine one path
//! that taints the compared value with another that taints something else
//! entirely. States revisiting through loops converge because taint only
//! changes monotonically along most paths and the visited set dedups exact
//! repeats; a per-site state budget bounds pathological cases (exhaustion
//! flags the site conservatively).

use super::sinks::{Guards, Sink, Taint};
use flowery_backend::mir::{AKind, AOp, FaultDest, Loc, Reg};
use flowery_backend::AsmProgram;
use flowery_ir::module::Module;
use flowery_ir::value::FuncId;
use std::collections::HashSet;

/// Verdict for one fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every corruption path either reaches a detector or dies before any
    /// sink: a fault here cannot silently corrupt the output.
    Protected,
    /// Some path reaches the given sink unchecked.
    Penetrates(Sink),
}

impl Verdict {
    pub fn is_flagged(self) -> bool {
        matches!(self, Verdict::Penetrates(_))
    }
}

/// Per-program taint analysis context. Fields are crate-visible so the
/// bit-lattice engine ([`super::bits`]) reuses the same ABI tables.
pub struct TaintEngine<'a> {
    pub(crate) prog: &'a AsmProgram,
    guards: Guards,
    /// Function table index per instruction (`usize::MAX` if none).
    pub(crate) func_of: Vec<usize>,
    /// Return-value register per function table entry, if it returns one.
    pub(crate) ret_reg: Vec<Option<Loc>>,
    /// Argument registers per IR function id (callee view).
    pub(crate) arg_regs: Vec<Vec<Loc>>,
    /// Per-site state budget before conservative flagging.
    pub(crate) max_states: usize,
}

impl<'a> TaintEngine<'a> {
    pub fn new(m: &Module, prog: &'a AsmProgram) -> TaintEngine<'a> {
        let mut func_of = vec![usize::MAX; prog.insts.len()];
        for (fi, f) in prog.funcs.iter().enumerate() {
            for i in f.entry..f.end {
                func_of[i as usize] = fi;
            }
        }
        let ret_reg = prog
            .funcs
            .iter()
            .map(|f| {
                m.functions[f.ir_id.index()].ret_ty.map(|ty| {
                    if ty.is_float() {
                        Loc::Reg(Reg::Xmm0)
                    } else {
                        Loc::Reg(Reg::Rax)
                    }
                })
            })
            .collect();
        let arg_regs = m
            .functions
            .iter()
            .map(|f| {
                let (mut ni, mut nf) = (0, 0);
                let mut regs = Vec::new();
                for ty in &f.params {
                    if ty.is_float() {
                        if nf < Reg::FLOAT_ARGS.len() {
                            regs.push(Loc::Reg(Reg::FLOAT_ARGS[nf]));
                        }
                        nf += 1;
                    } else {
                        if ni < Reg::INT_ARGS.len() {
                            regs.push(Loc::Reg(Reg::INT_ARGS[ni]));
                        }
                        ni += 1;
                    }
                }
                regs
            })
            .collect();
        TaintEngine {
            prog,
            guards: Guards::compute(prog),
            func_of,
            ret_reg,
            arg_regs,
            max_states: 50_000,
        }
    }

    /// The guard table (shared with callers that classify branches).
    pub fn guards(&self) -> &Guards {
        &self.guards
    }

    /// The initial taint a fault at `idx` induces, or an immediate verdict.
    fn initial_taint(&self, idx: u32) -> Result<Taint, Verdict> {
        let inst = &self.prog.insts[idx as usize];
        match inst.kind.fault_dest() {
            FaultDest::None => Err(Verdict::Protected),
            FaultDest::Gpr(r, _) => Ok(Taint::definite(Loc::Reg(r))),
            FaultDest::Flags => Ok(Taint::definite(Loc::Flags)),
            FaultDest::MemVal(_) => match inst.kind {
                AKind::Mov { dst: AOp::Mem(m), .. } | AKind::MovSd { dst: AOp::Mem(m), .. } => {
                    Ok(match m.loc() {
                        // A frame slot or absolute global cell keeps its
                        // identity: later reads of the same cell definitely
                        // see the corruption (globals additionally alias
                        // the summary weakly — see `step`).
                        l @ (Loc::Frame(_) | Loc::Global(_)) => Taint::definite(l),
                        // A pointer-addressed cell loses its identity in
                        // the summary: later summary reads may or may not
                        // hit it.
                        _ => Taint::weak(Loc::Mem),
                    })
                }
                // Corrupted return address / saved frame pointer: control
                // integrity cannot be re-validated by value checks.
                _ => Err(Verdict::Penetrates(Sink::ControlImage)),
            },
        }
    }

    /// Analyze one fault site: can a flip in this instruction's destination
    /// escape to a sink?
    pub fn analyze_site(&self, idx: u32) -> Verdict {
        let init = match self.initial_taint(idx) {
            Ok(t) => t,
            Err(v) => return v,
        };
        let fi = self.func_of[idx as usize];
        if fi == usize::MAX {
            return Verdict::Penetrates(Sink::Unbounded);
        }
        let (lo, hi) = (self.prog.funcs[fi].entry, self.prog.funcs[fi].end);

        let mut stack: Vec<(u32, Taint)> = Vec::new();
        for s in self.prog.insts[idx as usize].kind.successors(idx) {
            if s >= lo && s < hi {
                stack.push((s, init.clone()));
            }
        }
        let mut visited: HashSet<(u32, Taint)> = HashSet::new();
        let mut budget = self.max_states;
        while let Some((j, taint)) = stack.pop() {
            if !visited.insert((j, taint.clone())) {
                continue;
            }
            if budget == 0 {
                return Verdict::Penetrates(Sink::Unbounded);
            }
            budget -= 1;
            match self.step(j, &taint) {
                Step::Sink(s) => return Verdict::Penetrates(s),
                Step::End => {}
                Step::Continue(t) => {
                    for s in self.prog.insts[j as usize].kind.successors(j) {
                        if s >= lo && s < hi {
                            stack.push((s, t.clone()));
                        }
                    }
                }
            }
        }
        Verdict::Protected
    }

    /// Transfer function for one instruction under one path state.
    fn step(&self, j: u32, taint: &Taint) -> Step {
        let inst = &self.prog.insts[j as usize];
        let k = &inst.kind;

        // Validation compare: the mismatch arm reaches a detector. With
        // exactly one side tainted and that side *definitely* corrupted,
        // the detector fires — the path ends. With both sides tainted
        // (replica correlation: both reload from the same corrupted cell)
        // the check passes corrupted-equals-corrupted; with only weak taint
        // the value may be clean and sail through. Either way, any
        // continuing execution leaves the compare with clean flags.
        if self.guards.compare_is_guarded(j) {
            let (lhs, rhs) = k.compare_operands().expect("guarded compare has operands");
            let lt = taint.op_value_tainted(&lhs);
            let rt = taint.op_value_tainted(&rhs);
            let definite = (lt && taint.op_definitely_tainted(&lhs)) || (rt && taint.op_definitely_tainted(&rhs));
            if lt != rt && definite {
                return Step::End;
            }
            let mut t = taint.clone();
            t.remove(Loc::Flags);
            return Step::cont(t);
        }

        match *k {
            AKind::Jcc { .. } => {
                if taint.contains(Loc::Flags) {
                    // A detector-armed jcc (the guard's own branch) either
                    // fires or falls onto the clean arm; a trampoline-
                    // guarded application branch is revalidated on every
                    // edge. Anything else silently takes a wrong direction.
                    if self.guards.jcc_has_detect_arm(j) || self.guards.branch_is_guarded(j) {
                        let mut t = taint.clone();
                        t.remove(Loc::Flags);
                        return Step::cont(t);
                    }
                    return Step::Sink(Sink::Branch);
                }
                Step::cont(taint.clone())
            }
            AKind::Out { src, .. } => {
                if taint.op_value_tainted(&src) {
                    return Step::Sink(Sink::Output);
                }
                Step::cont(taint.clone())
            }
            AKind::Call { func, .. } => {
                if taint.memory_visible() {
                    return Step::Sink(Sink::MemEscape);
                }
                for &a in &self.arg_regs[func.index()] {
                    if taint.contains(a) {
                        return Step::Sink(Sink::CallArg);
                    }
                }
                // The callee ran on clean inputs; on return the
                // caller-saved state is callee-derived, hence clean.
                let mut t = taint.clone();
                for r in Reg::GPR_POOL {
                    t.remove(Loc::Reg(r));
                }
                for r in Reg::XMM_POOL {
                    t.remove(Loc::Reg(r));
                }
                t.remove(Loc::Flags);
                Step::cont(t)
            }
            AKind::Ret => {
                if taint.memory_visible() {
                    return Step::Sink(Sink::MemEscape);
                }
                let fi = self.func_of[j as usize];
                if let Some(rr) = self.ret_reg[fi] {
                    if taint.contains(rr) {
                        return Step::Sink(Sink::RetVal);
                    }
                }
                Step::End
            }
            _ => {
                // Ordinary dataflow: a definitely-tainted input propagates
                // definite taint, a weakly-tainted one weak taint; clean
                // input strongly kills precise destinations (the write
                // replaces the corrupted value). A memory-summary write
                // always degrades to weak: the cell's identity is lost.
                // Reads additionally pick up *weak* taint through the
                // Global↔Mem may-alias closure.
                let reads = k.reads();
                let def_in = reads.iter().any(|l| taint.def.contains(l));
                let weak_in = reads.iter().any(|l| taint.weak.contains(l) || taint.mem_aliases(*l));
                let mut t = taint.clone();
                for w in k.writes() {
                    if w.is_strong() {
                        t.def.remove(&w);
                        t.weak.remove(&w);
                        if def_in {
                            t.def.insert(w);
                        } else if weak_in {
                            t.weak.insert(w);
                        }
                    } else if def_in || weak_in {
                        t.weak.insert(Loc::Mem);
                    }
                }
                Step::cont(t)
            }
        }
    }
}

enum Step {
    /// Escaped through a sink.
    Sink(Sink),
    /// Path terminated (detected, or taint fully discharged).
    End,
    Continue(Taint),
}

impl Step {
    fn cont(t: Taint) -> Step {
        if t.is_empty() {
            Step::End
        } else {
            Step::Continue(t)
        }
    }
}

/// Convenience: which IR function id owns instruction `idx`?
pub fn prov_func(prog: &AsmProgram, idx: u32) -> Option<FuncId> {
    prog.func_of(idx).map(|f| f.ir_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_backend::{compile_module, BackendConfig};
    use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};

    fn program(src: &str, protect: bool) -> (Module, AsmProgram) {
        let mut m = flowery_lang::compile("t", src).unwrap();
        if protect {
            let plan = ProtectionPlan::full(&m);
            duplicate_module(&mut m, &plan, &DupConfig::default());
        }
        let prog = compile_module(&m, &BackendConfig::default());
        (m, prog)
    }

    const SRC: &str = "int main() { int a = 3; int b = a * 7 + 1; output(b); return b; }";

    #[test]
    fn unprotected_compute_penetrates() {
        let (m, prog) = program(SRC, false);
        let engine = TaintEngine::new(&m, &prog);
        // Without checkers, a corrupted value on the chain to output()
        // must escape: nothing discharges the taint.
        let escaped = (0..prog.insts.len() as u32)
            .filter(|&i| !matches!(prog.insts[i as usize].kind.fault_dest(), FaultDest::None))
            .filter(|&i| engine.analyze_site(i).is_flagged())
            .count();
        assert!(escaped > 0, "raw program must have penetrating sites");
    }

    #[test]
    fn duplication_proves_sites_protected() {
        let (m, prog) = program(SRC, true);
        let engine = TaintEngine::new(&m, &prog);
        let (mut protected, mut sites) = (0, 0);
        for i in 0..prog.insts.len() as u32 {
            if matches!(prog.insts[i as usize].kind.fault_dest(), FaultDest::None) {
                continue;
            }
            sites += 1;
            if engine.analyze_site(i) == Verdict::Protected {
                protected += 1;
            }
        }
        assert!(
            protected > 0 && protected < sites,
            "duplication proves some but not all of {sites} sites ({protected} protected)"
        );
        // And strictly more than the raw program proves (the checkers are
        // what discharge the taint).
        let (mr, pr) = program(SRC, false);
        let raw_engine = TaintEngine::new(&mr, &pr);
        let raw_protected = (0..pr.insts.len() as u32)
            .filter(|&i| !matches!(pr.insts[i as usize].kind.fault_dest(), FaultDest::None))
            .filter(|&i| raw_engine.analyze_site(i) == Verdict::Protected)
            .count();
        assert!(protected > raw_protected, "checkers must prove more sites");
    }

    #[test]
    fn guarded_kill_requires_definite_taint() {
        // Weak (memory-summary) taint must survive a one-sided guarded
        // compare: the compared value may be clean even though the summary
        // is dirty, so the detector cannot be assumed to fire. This is the
        // engine-level distinction behind Taint::{def,weak}.
        let t = Taint::weak(Loc::Mem);
        assert!(!t.is_empty());
        assert!(t.contains(Loc::Mem));
        let mut d = Taint::definite(Loc::Reg(Reg::Rax));
        assert!(d.contains(Loc::Reg(Reg::Rax)));
        d.remove(Loc::Reg(Reg::Rax));
        assert!(d.is_empty());
    }

    #[test]
    fn control_image_faults_flag_immediately() {
        let (m, prog) =
            program("int g(int x) { return x + 1; } int main() { int a = g(4); output(a); return a; }", true);
        let engine = TaintEngine::new(&m, &prog);
        // Call return-address pushes corrupt the control image; the engine
        // must flag them without walking.
        let mut found = false;
        for i in 0..prog.insts.len() as u32 {
            if matches!(prog.insts[i as usize].kind, AKind::Call { .. }) {
                assert_eq!(engine.analyze_site(i), Verdict::Penetrates(Sink::ControlImage));
                found = true;
            }
        }
        assert!(found, "program calls output()");
    }
}
