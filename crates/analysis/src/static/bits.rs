//! Layer-1b: the bit-vector lattice — per-(site, bit) masking proofs.
//!
//! The value-level engine ([`super::taint`]) asks *whether* a corrupted
//! destination can reach a sink; this engine asks *which bits* of the
//! destination can. It tracks all 64 sampled bit positions of one fault
//! site simultaneously as a family of independent single-bit deviations
//! and propagates them through exact MIR semantics: width-canonical
//! register writes, AND/OR immediates, shifts and truncations kill bits;
//! sign-extension, carries, and float arithmetic scramble them; flag
//! consumers, address bases, output ports, calls and returns observe them.
//! A family bit that is never observed on any path is *proven masked*:
//! injecting that (site, bit) pair provably reproduces the golden run.
//!
//! Family encoding: injector run `b` (the sampled `FaultSpec::bit`,
//! `0..64`) flips destination position `b % W`, where `W` is the
//! destination width in bits — exactly `apply_fault`'s modulo. A state
//! maps each [`Loc`] to a pair of 64-bit masks `(pos, scr)` over family
//! indices: bit `b` set in `pos` means "in run `b` this location deviates
//! *at most* as a single-bit XOR at position `b % W`"; set in `scr`
//! ("scrambled") means "may deviate anywhere within the location". For
//! flag destinations the position space is the four condition classes
//! (`CONDITION_BITS[b % 4]`), so `pos` is class-exact rather than
//! bit-exact. Everything is conservative toward *vulnerable*: only
//! deviations proven invisible to every architectural observation count
//! as masked.
//!
//! The memory model is the field-sensitive split of DESIGN.md §12: frame
//! slots and absolute global cells are tracked per-address; deviations
//! escaping into pointer-addressed memory are observations (globals stay
//! addressable through pointers, so summary loads observe global
//! deviations, while spill slots are never address-taken).

use super::taint::TaintEngine;
use flowery_backend::mir::{AKind, AOp, AluOp, FaultDest, Loc, MemRef, OutKind, Reg, ShiftOp, CC};
use flowery_backend::AsmProgram;
use flowery_ir::module::Module;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Analyzer version tag, folded into [`BitTable::fingerprint`] so any rule
/// change invalidates recorded prune provenance.
pub const BITS_VERSION: &str = "bits-v1";

/// Per-site bit verdict: which sampled `FaultSpec::bit` values (0..64) are
/// proven masked vs possibly vulnerable. The two masks are complementary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitVerdict {
    /// Bit `b` set: injecting sampled bit `b` at this site provably
    /// reproduces the golden run (outcome Benign, bit-identical output).
    pub proven_masked: u64,
    /// Bit `b` set: the deviation may be observed (or the proof gave up).
    pub vulnerable: u64,
}

impl BitVerdict {
    /// Nothing proven: every sampled bit treated as live.
    pub fn all_vulnerable() -> BitVerdict {
        BitVerdict { proven_masked: 0, vulnerable: u64::MAX }
    }

    /// Is the sampled bit value proven masked?
    pub fn masked(&self, bit: u32) -> bool {
        (self.proven_masked >> (bit % 64)) & 1 == 1
    }
}

/// The per-program prune table: one [`BitVerdict`] per instruction index
/// (non-site instructions get [`BitVerdict::all_vulnerable`], which is
/// never consulted by the sampler).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitTable {
    pub verdicts: Vec<BitVerdict>,
    /// Number of static fault-site instructions analyzed.
    pub sites: u32,
    /// Total proven-masked (site, bit) pairs across all sites.
    pub proven_pairs: u64,
}

impl BitTable {
    /// Mean vulnerable fraction over fault sites (1.0 when nothing is
    /// proven). Drives flagged-first batch ordering.
    pub fn mean_vulnerable(&self) -> f64 {
        if self.sites == 0 {
            1.0
        } else {
            1.0 - self.proven_pairs as f64 / (64.0 * self.sites as f64)
        }
    }

    /// Provenance hash: analyzer version + program identity + every
    /// verdict word. Recorded in checkpoint headers and batch records so
    /// resumes refuse to mix prune recipes.
    pub fn fingerprint(&self, program_hash: u64) -> u64 {
        let mut h = fnv1a(BITS_VERSION.as_bytes());
        h = fnv_fold(h, program_hash);
        h = fnv_fold(h, self.verdicts.len() as u64);
        for v in &self.verdicts {
            h = fnv_fold(h, v.proven_masked);
        }
        h
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Run the bit-lattice analysis over every instruction of `prog`.
pub fn analyze_bits(m: &Module, prog: &AsmProgram) -> BitTable {
    let te = TaintEngine::new(m, prog);
    let eng = BitsEngine { te: &te };
    let mut verdicts = Vec::with_capacity(prog.insts.len());
    let (mut sites, mut proven_pairs) = (0u32, 0u64);
    for idx in 0..prog.insts.len() as u32 {
        let v = if prog.insts[idx as usize].kind.is_fault_site() {
            sites += 1;
            eng.analyze_site_bits(idx)
        } else {
            BitVerdict::all_vulnerable()
        };
        proven_pairs += v.proven_masked.count_ones() as u64;
        verdicts.push(v);
    }
    BitTable { verdicts, sites, proven_pairs }
}

/// Deviation state of one location: `(pos, scr)` family masks (see module
/// docs). Stored sparsely — absent location = clean.
type Dev = (u64, u64);
type StateMap = BTreeMap<Loc, Dev>;

/// Family-position helpers bound to one site's destination width.
#[derive(Clone, Copy)]
struct Fam {
    /// Destination width in bits (8/16/32/64); family `b` flips `b % w`.
    w: u32,
}

impl Fam {
    fn pos(self, b: u32) -> u32 {
        b % self.w
    }

    /// Families whose flip position is `< k`.
    fn below(self, k: u32) -> u64 {
        let mut m = 0u64;
        for b in 0..64 {
            if self.pos(b) < k {
                m |= 1 << b;
            }
        }
        m
    }

    /// Families visible when the value is read at `bytes` width.
    fn low(self, bytes: u8) -> u64 {
        self.below(8 * bytes as u32)
    }

    /// Families whose flip position is exactly the msb of a
    /// `bytes`-wide value (the only position additive carries preserve).
    fn top(self, bytes: u8) -> u64 {
        let p = 8 * bytes as u32 - 1;
        let mut m = 0u64;
        for b in 0..64 {
            if self.pos(b) == p {
                m |= 1 << b;
            }
        }
        m
    }

    /// Families whose flip position has a 1-bit in constant `c` (taken at
    /// `bytes` width) — the survivors of `and imm`.
    fn const_bits(self, c: u64, bytes: u8) -> u64 {
        let lim = 8 * bytes as u32;
        let mut m = 0u64;
        for b in 0..64 {
            let p = self.pos(b);
            if p < lim && (c >> p) & 1 == 1 {
                m |= 1 << b;
            }
        }
        m
    }
}

/// Condition classes a `cc` reads, as a nibble over
/// `CONDITION_BITS = [CF, ZF, SF, OF]` indices, expanded to family space
/// (class of family `b` is `b % 4`, matching `apply_fault`).
fn class_mask(cc: CC) -> u64 {
    let nibble: u64 = match cc {
        CC::E | CC::Ne => 0b0010, // ZF
        CC::L | CC::Ge => 0b1100, // SF, OF
        CC::Le | CC::G => 0b1110, // ZF, SF, OF
        CC::B | CC::Ae => 0b0001, // CF
        CC::Be | CC::A => 0b0011, // CF, ZF
    };
    nibble * 0x1111_1111_1111_1111
}

fn get(st: &StateMap, loc: Loc) -> Dev {
    st.get(&loc).copied().unwrap_or((0, 0))
}

fn set(st: &mut StateMap, loc: Loc, dev: Dev) {
    if dev == (0, 0) {
        st.remove(&loc);
    } else {
        st.insert(loc, dev);
    }
}

fn all(dev: Dev) -> u64 {
    dev.0 | dev.1
}

/// Union of all global-cell deviations — what a pointer (summary) load may
/// observe.
fn global_dev(st: &StateMap) -> u64 {
    st.iter()
        .filter(|(l, _)| matches!(l, Loc::Global(_)))
        .map(|(_, d)| all(*d))
        .fold(0, |a, b| a | b)
}

struct BitsEngine<'a, 'b> {
    te: &'b TaintEngine<'a>,
}

enum Flow {
    Cont(StateMap),
    End,
}

impl BitsEngine<'_, '_> {
    /// The initial deviation a flip at `idx` induces, or an immediate
    /// all-vulnerable bail-out. Returns the family width alongside.
    fn initial(&self, idx: u32) -> Option<(StateMap, Fam)> {
        let inst = &self.te.prog.insts[idx as usize];
        match inst.kind.fault_dest() {
            FaultDest::None => None,
            FaultDest::Gpr(r, w) => {
                // A corrupted frame/stack pointer breaks the addressing
                // discipline every rule below relies on.
                if matches!(r, Reg::Rbp | Reg::Rsp) {
                    return None;
                }
                let mut st = StateMap::new();
                st.insert(Loc::Reg(r), (u64::MAX, 0));
                Some((st, Fam { w: 8 * w as u32 }))
            }
            FaultDest::Flags => {
                // Class-exact: family `b` flips condition class `b % 4`.
                let mut st = StateMap::new();
                st.insert(Loc::Flags, (u64::MAX, 0));
                Some((st, Fam { w: 64 }))
            }
            FaultDest::MemVal(w) => match inst.kind {
                AKind::Mov { dst: AOp::Mem(mr), .. } | AKind::MovSd { dst: AOp::Mem(mr), .. } => {
                    match mr.loc() {
                        l @ (Loc::Frame(_) | Loc::Global(_)) => {
                            let mut st = StateMap::new();
                            st.insert(l, (u64::MAX, 0));
                            Some((st, Fam { w: 8 * w as u32 }))
                        }
                        // Pointer-addressed cell: identity lost at birth.
                        _ => None,
                    }
                }
                // Corrupted return address / saved frame pointer.
                _ => None,
            },
        }
    }

    /// Prove which sampled bits of site `idx` are masked.
    pub fn analyze_site_bits(&self, idx: u32) -> BitVerdict {
        let Some((init, fam)) = self.initial(idx) else {
            return BitVerdict::all_vulnerable();
        };
        let fi = self.te.func_of[idx as usize];
        if fi == usize::MAX {
            return BitVerdict::all_vulnerable();
        }
        let (lo, hi) = (self.te.prog.funcs[fi].entry, self.te.prog.funcs[fi].end);

        let mut vuln: u64 = 0;
        let mut stack: Vec<(u32, StateMap)> = Vec::new();
        for s in self.te.prog.insts[idx as usize].kind.successors(idx) {
            if s >= lo && s < hi {
                stack.push((s, init.clone()));
            }
        }
        let mut visited: HashSet<(u32, StateMap)> = HashSet::new();
        let mut budget = self.te.max_states;
        while let Some((j, mut state)) = stack.pop() {
            // Families already vulnerable need no further tracking.
            strip(&mut state, vuln);
            if state.is_empty() {
                continue;
            }
            if vuln == u64::MAX {
                break;
            }
            if !visited.insert((j, state.clone())) {
                continue;
            }
            if budget == 0 {
                // Give up: every family still live anywhere is unproven.
                for (_, s) in &stack {
                    vuln |= s.values().map(|d| all(*d)).fold(0, |a, b| a | b);
                }
                vuln |= state.values().map(|d| all(*d)).fold(0, |a, b| a | b);
                break;
            }
            budget -= 1;
            let (observed, flow) = self.step_bits(j, &state, fam);
            vuln |= observed;
            if let Flow::Cont(mut t) = flow {
                strip(&mut t, vuln);
                if !t.is_empty() {
                    for s in self.te.prog.insts[j as usize].kind.successors(j) {
                        if s >= lo && s < hi {
                            stack.push((s, t.clone()));
                        }
                    }
                }
            }
        }
        BitVerdict { proven_masked: !vuln, vulnerable: vuln }
    }

    /// Deviation visible when reading `op` at `w` bytes, plus observation
    /// bits (corrupted address base; summary load aliasing a corrupted
    /// global).
    fn read_op(&self, st: &StateMap, op: &AOp, w: u8, fam: Fam) -> (Dev, u64) {
        match op {
            AOp::Imm(_) => ((0, 0), 0),
            AOp::Reg(r) => {
                let (p, s) = get(st, Loc::Reg(*r));
                ((p & fam.low(w), s), 0)
            }
            AOp::Mem(mr) => {
                let mut obs = self.addr_obs(st, mr);
                let dev = match mr.loc() {
                    l @ (Loc::Frame(_) | Loc::Global(_)) => {
                        let (p, s) = get(st, l);
                        (p & fam.low(w), s)
                    }
                    _ => {
                        // Pointer load: may hit any corrupted global cell
                        // (spill slots are never address-taken).
                        obs |= global_dev(st);
                        (0, 0)
                    }
                };
                (dev, obs)
            }
        }
    }

    /// A deviated base register makes the access read/write the wrong
    /// cell — observed.
    fn addr_obs(&self, st: &StateMap, mr: &MemRef) -> u64 {
        mr.base.map_or(0, |b| all(get(st, Loc::Reg(b))))
    }

    /// Strong register write. A deviation written into rbp/rsp breaks the
    /// addressing discipline — observed instead of tracked.
    fn write_reg(&self, st: &mut StateMap, r: Reg, dev: Dev) -> u64 {
        if matches!(r, Reg::Rbp | Reg::Rsp) && dev != (0, 0) {
            return all(dev);
        }
        set(st, Loc::Reg(r), dev);
        0
    }

    /// Transfer one instruction: returns observed family bits and the
    /// continuation state.
    fn step_bits(&self, j: u32, st: &StateMap, fam: Fam) -> (u64, Flow) {
        let inst = &self.te.prog.insts[j as usize];
        let mut t = st.clone();
        let mut obs = 0u64;
        match inst.kind {
            AKind::Mov { w, dst, src } | AKind::MovSd { w, dst, src } => {
                let (dev, o) = self.read_op(st, &src, w, fam);
                obs |= o;
                match dst {
                    AOp::Reg(r) => obs |= self.write_reg(&mut t, r, dev),
                    AOp::Mem(mr) => {
                        obs |= self.addr_obs(st, &mr);
                        match mr.loc() {
                            l @ (Loc::Frame(_) | Loc::Global(_)) => {
                                // Partial update: a width-w store replaces
                                // the cell's low 8w bits only.
                                let (op, os) = get(st, l);
                                let np = dev.0 | (op & !fam.low(w));
                                let ns = dev.1 | if w < 8 { os } else { 0 };
                                set(&mut t, l, (np, ns));
                            }
                            // A deviation escaping into pointer-addressed
                            // memory loses its identity for good.
                            _ => obs |= all(dev),
                        }
                    }
                    AOp::Imm(_) => {}
                }
            }
            AKind::MovSx { ws, dst, src, .. } => {
                let ((p, s), o) = self.read_op(st, &src, ws, fam);
                obs |= o;
                // Positions below the source sign bit survive sign
                // extension exactly; a deviated sign bit smears upward.
                let sign = fam.low(ws) & !fam.below(8 * ws as u32 - 1);
                obs |= self.write_reg(&mut t, dst, (p & fam.below(8 * ws as u32 - 1), s | (p & sign)));
            }
            AKind::Lea { dst, mem } => match mem.base {
                // base + disp is an addition: only an msb deviation
                // survives carries position-exactly.
                Some(b) => {
                    let (p, s) = get(st, Loc::Reg(b));
                    obs |= self.write_reg(&mut t, dst, (p & fam.top(8), s | (p & !fam.top(8))));
                }
                None => obs |= self.write_reg(&mut t, dst, (0, 0)),
            },
            AKind::Alu { op, w, dst, src } => {
                let (a, oa) = self.read_op(st, &AOp::Reg(dst), w, fam);
                let (b, ob) = self.read_op(st, &src, w, fam);
                obs |= oa | ob;
                let imm = match src {
                    AOp::Imm(v) => Some(v as u64),
                    _ => None,
                };
                let wmask = if w >= 8 { u64::MAX } else { (1u64 << (8 * w)) - 1 };
                let self_op = src == AOp::Reg(dst);
                let res: Dev = match op {
                    // Sub r,r and Xor r,r produce a constant: clean kill.
                    AluOp::Sub | AluOp::Xor if self_op => (0, 0),
                    AluOp::Add | AluOp::Sub | AluOp::Imul => {
                        // Carries: only msb deviations stay single-bit.
                        let p = (a.0 | b.0) & fam.top(w);
                        (p, a.1 | b.1 | ((a.0 | b.0) & !fam.top(w)))
                    }
                    // Bitwise ops are position-exact; an immediate mask
                    // additionally kills positions it forces constant
                    // (`and 0` / `or ~0` even defeats scrambles).
                    AluOp::And => match imm {
                        Some(c) if c & wmask == 0 => (0, 0),
                        Some(c) => (a.0 & fam.const_bits(c, w), a.1),
                        None => (a.0 | b.0, a.1 | b.1),
                    },
                    AluOp::Or => match imm {
                        Some(c) if !c & wmask == 0 => (0, 0),
                        Some(c) => (a.0 & fam.const_bits(!c, w), a.1),
                        None => (a.0 | b.0, a.1 | b.1),
                    },
                    AluOp::Xor => (a.0 | b.0, a.1 | b.1),
                };
                // Flags: Add/Sub carry/overflow depend on the operands;
                // the bitwise family's flags are a function of the result.
                let fdev = match op {
                    AluOp::Add | AluOp::Sub => all(a) | all(b),
                    _ => all(res),
                };
                set(&mut t, Loc::Flags, (0, fdev));
                obs |= self.write_reg(&mut t, dst, res);
            }
            AKind::Shift { op, w, dst, amt } => {
                let (a, _) = self.read_op(st, &AOp::Reg(dst), w, fam);
                let res: Dev = match amt {
                    AOp::Imm(k) => {
                        let k = (k as u64 & 0xff) as u32 & (8 * w as u32 - 1);
                        let wbits = 8 * w as u32;
                        let surviving = match op {
                            // Positions shifted out of the width die; the
                            // rest move (position no longer the family's).
                            ShiftOp::Shl => a.0 & fam.below(wbits - k),
                            ShiftOp::Shr => a.0 & !fam.below(k),
                            // A deviated sign bit replicates on the way
                            // down; low positions below the shift die.
                            ShiftOp::Sar => (a.0 & !fam.below(k)) | (a.0 & fam.low(w) & !fam.below(wbits - 1)),
                        };
                        (0, surviving | a.1)
                    }
                    _ => {
                        // Variable amount (cl): a deviated amount or value
                        // scrambles; nothing can be killed.
                        let (amt_dev, _) = self.read_op(st, &amt, 1, fam);
                        (0, all(a) | all(amt_dev))
                    }
                };
                set(&mut t, Loc::Flags, (0, all(res)));
                obs |= self.write_reg(&mut t, dst, res);
            }
            AKind::Cqo { .. } => {
                // rdx = sign of rax bit 63 (full-width read regardless of
                // w): only a bit-63 deviation flips it — into all of rdx.
                let (p, s) = get(st, Loc::Reg(Reg::Rax));
                let sign63 = fam.top(8);
                obs |= self.write_reg(&mut t, Reg::Rdx, (0, (p & sign63) | s));
            }
            AKind::ZeroRdx => {
                obs |= self.write_reg(&mut t, Reg::Rdx, (0, 0));
            }
            AKind::Div { src, .. } => {
                // Deviated dividend or divisor risks a divide trap
                // (divisor 0, signed overflow) on top of a scrambled
                // quotient: observed outright. rdx is written, not read.
                let a = get(st, Loc::Reg(Reg::Rax));
                let (b, ob) = self.read_op(st, &src, 8, fam);
                obs |= ob | all(a) | all(b);
                obs |= self.write_reg(&mut t, Reg::Rax, (0, 0));
                obs |= self.write_reg(&mut t, Reg::Rdx, (0, 0));
            }
            AKind::Cmp { w, lhs, rhs } => {
                let (a, oa) = self.read_op(st, &lhs, w, fam);
                let (b, ob) = self.read_op(st, &rhs, w, fam);
                obs |= oa | ob;
                set(&mut t, Loc::Flags, (0, all(a) | all(b)));
            }
            AKind::Test { w, lhs, rhs } => {
                // Flags are a pure function of `lhs & rhs`: an immediate
                // mask kills position-exact deviations outside it.
                let (a, oa) = self.read_op(st, &lhs, w, fam);
                let (b, ob) = self.read_op(st, &rhs, w, fam);
                obs |= oa | ob;
                let rdev = match rhs {
                    AOp::Imm(c) => (a.0 & fam.const_bits(c as u64, w)) | a.1,
                    _ => all(a) | all(b),
                };
                set(&mut t, Loc::Flags, (0, rdev));
            }
            AKind::Ucomi { w, lhs, rhs } => {
                let (a, _) = self.read_op(st, &AOp::Reg(lhs), w, fam);
                let (b, ob) = self.read_op(st, &rhs, w, fam);
                obs |= ob;
                set(&mut t, Loc::Flags, (0, all(a) | all(b)));
            }
            AKind::SetCC { cc, dst } => {
                // Branchless: a deviated condition flips the materialized
                // 0/1 — tracked, not observed.
                let (fp, fs) = get(st, Loc::Flags);
                let affected = (fp & class_mask(cc)) | fs;
                obs |= self.write_reg(&mut t, dst, (0, affected));
            }
            AKind::Cmov { cc, w, dst, src } => {
                let (fp, fs) = get(st, Loc::Flags);
                let affected = (fp & class_mask(cc)) | fs;
                let (d, _) = self.read_op(st, &AOp::Reg(dst), w, fam);
                let (s, os) = self.read_op(st, &src, w, fam);
                obs |= os;
                // Conditional write: no kill; a deviated condition picks
                // the wrong source.
                set(&mut t, Loc::Reg(dst), (d.0 | s.0, d.1 | s.1 | affected));
            }
            AKind::Jcc { cc, .. } => {
                // Any deviated flag class the condition reads steers the
                // branch wrong — even toward a detector (Detected is not
                // the golden outcome). Class-exact deviations in unread
                // classes survive the branch.
                let (fp, fs) = get(st, Loc::Flags);
                obs |= (fp & class_mask(cc)) | fs;
                set(&mut t, Loc::Flags, (fp & !class_mask(cc), 0));
            }
            AKind::Jmp { .. } => {}
            AKind::Call { func, .. } => {
                // Callee sees argument registers and all of global memory;
                // the caller frame is unaddressable from the callee.
                for a in &self.te.arg_regs[func.index()] {
                    obs |= all(get(st, *a));
                }
                obs |= global_dev(st);
                obs |= all(get(st, Loc::Mem));
                for r in Reg::GPR_POOL {
                    t.remove(&Loc::Reg(r));
                }
                for r in Reg::XMM_POOL {
                    t.remove(&Loc::Reg(r));
                }
                t.remove(&Loc::Flags);
            }
            AKind::Ret => {
                // The caller reads the return register; per the value
                // engine's contract everything else (dead scratch state,
                // the callee frame) is discarded at the boundary.
                let fi = self.te.func_of[j as usize];
                if let Some(rr) = self.te.ret_reg[fi] {
                    obs |= all(get(st, rr));
                }
                obs |= global_dev(st);
                obs |= all(get(st, Loc::Mem));
                return (obs, Flow::End);
            }
            AKind::Push { src } => {
                // A deviation entering the push/pop area loses identity.
                let (dev, o) = self.read_op(st, &src, 8, fam);
                obs |= o | all(dev);
            }
            AKind::Pop { dst } => {
                // Tracked deviations provably never reach the stack area
                // (deviated pushes are observed above): clean kill.
                obs |= self.write_reg(&mut t, dst, (0, 0));
            }
            AKind::Sse { dst, src, .. } => {
                let (a, _) = self.read_op(st, &AOp::Reg(dst), 8, fam);
                let (b, ob) = self.read_op(st, &src, 8, fam);
                obs |= ob;
                obs |= self.write_reg(&mut t, dst, (0, all(a) | all(b)));
            }
            AKind::Cvtsi2f { dst, src, .. } => {
                let (b, ob) = self.read_op(st, &src, 8, fam);
                obs |= ob;
                obs |= self.write_reg(&mut t, dst, (0, all(b)));
            }
            AKind::Cvtf2si { wf, dst, src } => {
                let (b, ob) = self.read_op(st, &src, wf, fam);
                obs |= ob;
                obs |= self.write_reg(&mut t, dst, (0, all(b)));
            }
            AKind::Cvtff { dst, src, .. } => {
                let (b, _) = self.read_op(st, &AOp::Reg(src), 8, fam);
                obs |= self.write_reg(&mut t, dst, (0, all(b)));
            }
            AKind::MovQ { w, dst, src } => {
                let (dev, _) = self.read_op(st, &AOp::Reg(src), w, fam);
                obs |= self.write_reg(&mut t, dst, dev);
            }
            AKind::Math { dst, a, b, .. } => {
                let (da, _) = self.read_op(st, &AOp::Reg(a), 8, fam);
                let db = b.map_or((0, 0), |r| get(st, Loc::Reg(r)));
                obs |= self.write_reg(&mut t, dst, (0, all(da) | all(db)));
            }
            AKind::Out { kind, src } => {
                // The port reads 8 bytes; the byte port truncates to the
                // low byte, leaving higher deviations unobserved.
                let (dev, o) = self.read_op(st, &src, 8, fam);
                obs |= o;
                obs |= match kind {
                    OutKind::Byte => (dev.0 & fam.low(1)) | dev.1,
                    OutKind::I64 | OutKind::F64 => all(dev),
                };
            }
            AKind::DetectTrap => {
                // Reachable only off a detect arm; for still-tracked
                // families the golden path never comes here.
                return (obs, Flow::End);
            }
        }
        (obs, Flow::Cont(t))
    }
}

/// Drop already-vulnerable family bits from every entry.
fn strip(st: &mut StateMap, vuln: u64) {
    if vuln == 0 {
        return;
    }
    st.retain(|_, d| {
        d.0 &= !vuln;
        d.1 &= !vuln;
        *d != (0, 0)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_backend::{compile_module, BackendConfig};
    use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};

    fn program(src: &str, protect: bool) -> (Module, AsmProgram) {
        let mut m = flowery_lang::compile("t", src).unwrap();
        if protect {
            let plan = ProtectionPlan::full(&m);
            duplicate_module(&mut m, &plan, &DupConfig::default());
        }
        let prog = compile_module(&m, &BackendConfig::default());
        (m, prog)
    }

    const SRC: &str = "int main() { int s = 0; int i; for (i = 0; i < 20; i = i + 1) {\n\
                       s = s + i * 3; } output(s); return s; }";

    #[test]
    fn verdicts_are_complementary_and_indexed_per_inst() {
        let (m, prog) = program(SRC, false);
        let table = analyze_bits(&m, &prog);
        assert_eq!(table.verdicts.len(), prog.insts.len());
        for v in &table.verdicts {
            assert_eq!(v.proven_masked & v.vulnerable, 0);
            assert_eq!(v.proven_masked | v.vulnerable, u64::MAX);
        }
        assert!(table.sites > 0);
    }

    #[test]
    fn narrow_width_proves_high_bits() {
        // 32-bit compute: families repeat mod 32, so nothing is provable
        // *by width alone* — but a `cmp`-consumed value whose flags feed a
        // single-class jcc must prove the unread classes benign on
        // flag-destination sites.
        let (m, prog) = program(SRC, false);
        let table = analyze_bits(&m, &prog);
        let mut flag_site_proven = 0u64;
        for (i, inst) in prog.insts.iter().enumerate() {
            if matches!(inst.kind.fault_dest(), FaultDest::Flags) {
                flag_site_proven += table.verdicts[i].proven_masked.count_ones() as u64;
            }
        }
        assert!(
            flag_site_proven > 0,
            "single-class jcc consumers leave unread flag classes provably benign"
        );
    }

    #[test]
    fn protection_does_not_reduce_proven_pairs_to_zero() {
        let (m, prog) = program(SRC, true);
        let table = analyze_bits(&m, &prog);
        assert!(table.proven_pairs > 0, "hardened program still has maskable (site, bit) pairs");
        assert!(table.mean_vulnerable() < 1.0);
        // Fingerprint is content-sensitive.
        let f1 = table.fingerprint(1);
        let f2 = table.fingerprint(2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn class_masks_cover_expected_condition_bits() {
        // Family b maps to CONDITION_BITS[b % 4] = [CF, ZF, SF, OF].
        assert_eq!(class_mask(CC::E) & 0xf, 0b0010);
        assert_eq!(class_mask(CC::L) & 0xf, 0b1100);
        assert_eq!(class_mask(CC::A) & 0xf, 0b0011);
        // Periodic over the whole family space.
        assert_eq!(class_mask(CC::E).count_ones(), 16);
    }
}
