//! `flowery-statline`: the two-layer static penetration analyzer.
//!
//! Layer 1 ([`taint`], [`sinks`]) is a forward "corruptible value reaches
//! an architectural sink unchecked" dataflow over the hardened machine
//! program; [`predict`] turns its per-site verdicts into a predicted
//! penetration breakdown and cross-validates it against injection ground
//! truth. Layer 2 ([`invariants`]) lints the duplicated IR module for
//! sphere-of-replication invariant violations. See DESIGN.md §7.

pub mod bits;
pub mod invariants;
pub mod predict;
pub mod sinks;
pub mod taint;

pub use bits::{analyze_bits, BitTable, BitVerdict, BITS_VERSION};
pub use invariants::{lint_module, Finding, InvariantKind};
pub use predict::{
    cross_validate, predict_program, render_validation, static_prior, CategoryRow, SitePrediction, StaticReport,
    Validation,
};
pub use sinks::{Guards, Sink, Taint, TaintSet};
pub use taint::{TaintEngine, Verdict};
