//! Layer-2 sphere-of-replication invariant lint over the duplicated IR.
//!
//! Four structural invariants must hold for the protection to be credible
//! *before* any machine-level reasoning:
//!
//! 1. **Shadow liveness** — every checker compares a value against a live
//!    shadow of that value ([`InvariantKind::MissingShadow`] otherwise);
//! 2. **Sync coverage** — every synchronization point (store / call /
//!    conditional branch / return) consuming a protected value is guarded
//!    by some checker ([`InvariantKind::UncheckedSync`]);
//! 3. **Checker dominance** — a lazy checker dominates the sync it guards
//!    (an eager Flowery checker sits after its store, in the same block)
//!    ([`InvariantKind::CheckerNotDominating`]);
//! 4. **Fold resistance** — no checker's shadow chain is structurally
//!    foldable by `backend::fold` (else the check compares a value against
//!    itself and detects nothing — the comparison-penetration shape;
//!    Flowery's `anti_cmp` patch exists to prevent exactly this)
//!    ([`InvariantKind::FoldableChecker`]).

use flowery_ir::analysis::{inst_points, DomTree, Point, TERM_POS};
use flowery_ir::inst::{Callee, CastKind, InstKind, Intrinsic, IrRole, Terminator};
use flowery_ir::module::{Function, Module};
use flowery_ir::value::{BlockId, FuncId, InstId, Op};
use flowery_passes::provenance::{self, Placement, SyncLoc};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The invariant an IR-level finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvariantKind {
    /// A checker compare has no live shadow operand.
    MissingShadow,
    /// A sync point consumes a protected value but no checker guards it.
    UncheckedSync,
    /// A lazy checker does not dominate the sync it guards (or an eager
    /// checker does not follow its store).
    CheckerNotDominating,
    /// Backend compare folding erases this value's shadow chain, leaving
    /// its checker comparing a value to itself.
    FoldableChecker,
}

impl InvariantKind {
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::MissingShadow => "missing-shadow",
            InvariantKind::UncheckedSync => "unchecked-sync",
            InvariantKind::CheckerNotDominating => "checker-not-dominating",
            InvariantKind::FoldableChecker => "foldable-checker",
        }
    }
}

/// One IR-level invariant violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    pub kind: InvariantKind,
    pub func: FuncId,
    pub detail: String,
}

/// Lint a protected module against the four invariants. An unprotected
/// module (no checkers anywhere) trivially passes: there is no sphere of
/// replication to violate.
pub fn lint_module(m: &Module) -> Vec<Finding> {
    let prov = provenance::collect(m);
    let mut findings = Vec::new();
    if prov.links.is_empty() {
        return findings;
    }

    for (fi, f) in m.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        let links: Vec<_> = prov.for_func(fid).collect();
        if links.is_empty() {
            continue;
        }
        // Dominance over the *semantic* CFG: a detector block never falls
        // through (DetectError halts), but its CFG edge back into the
        // continuation — shared detect blocks have many predecessors —
        // would otherwise fabricate checker-bypassing paths.
        let dom = DomTree::compute(&detector_truncated(f));
        let points = inst_points(f);
        let live: HashSet<InstId> = f.live_insts().into_iter().collect();
        let shadowed = shadowed_insts(f, &live);

        let mut guarded: HashSet<SyncPoint> = HashSet::new();
        for l in &links {
            // Invariant 1: the checker must compare against a live shadow.
            if !checker_has_shadow_operand(f, l.checker) {
                findings.push(Finding {
                    kind: InvariantKind::MissingShadow,
                    func: fid,
                    detail: format!("checker %{} compares no live shadow", l.checker.index()),
                });
            }
            let Some((kind, loc)) = l.sync else { continue };
            guarded.insert(sync_point_of(loc));
            // Invariant 3: placement-respecting dominance.
            let cp = points.get(&l.checker).copied();
            let sp: Option<Point> = match loc {
                SyncLoc::Inst(_, iid) => points.get(&iid).copied(),
                SyncLoc::Term(b) => Some((b, TERM_POS)),
            };
            if let (Some(cp), Some(sp)) = (cp, sp) {
                let ok = match l.placement {
                    Placement::Before => dom.dominates_point(cp, sp),
                    // Eager: store then checker, same block.
                    Placement::After => sp.0 == cp.0 && sp.1 <= cp.1,
                };
                if !ok {
                    findings.push(Finding {
                        kind: InvariantKind::CheckerNotDominating,
                        func: fid,
                        detail: format!(
                            "checker %{} ({:?}) does not dominate its {kind:?} sync",
                            l.checker.index(),
                            l.placement
                        ),
                    });
                }
            }
        }

        // Invariant 2: every sync consuming a shadowed (protected) value is
        // guarded by some checker.
        for (bid, block) in f.iter_blocks() {
            for &iid in &block.insts {
                let d = f.inst(iid);
                if d.role != IrRole::App || !live.contains(&iid) {
                    continue;
                }
                let consumes = match &d.kind {
                    // A call that is itself duplicated (pure math intrinsics
                    // get a shadow call) lies inside the sphere of
                    // replication — not a sync point.
                    InstKind::Call { .. } if shadowed.contains(&iid) => false,
                    InstKind::Store { .. } | InstKind::Call { .. } => {
                        d.operands().iter().any(|op| op_is_shadowed(*op, &shadowed))
                    }
                    _ => false,
                };
                if consumes && !guarded.contains(&SyncPoint::Inst(iid)) {
                    findings.push(Finding {
                        kind: InvariantKind::UncheckedSync,
                        func: fid,
                        detail: format!("sync %{} consumes a protected value unguarded", iid.index()),
                    });
                }
            }
            let term_consumes = match &block.term {
                Terminator::Br { cond, .. } => op_is_shadowed(*cond, &shadowed),
                Terminator::Ret { val: Some(v) } => op_is_shadowed(*v, &shadowed),
                _ => false,
            };
            if term_consumes && !guarded.contains(&SyncPoint::Term(bid)) {
                findings.push(Finding {
                    kind: InvariantKind::UncheckedSync,
                    func: fid,
                    detail: format!("terminator of b{} consumes a protected value unguarded", bid.index()),
                });
            }
        }
    }

    // Invariant 4: fold a clone and diff the surviving shadows. Any value
    // that loses its shadow to folding had a structurally foldable checker.
    let mut folded = m.clone();
    flowery_backend::fold::fold_redundant_compares(&mut folded);
    for (fi, f) in m.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        let live: HashSet<InstId> = f.live_insts().into_iter().collect();
        let before = shadowed_insts(f, &live);
        let ff = &folded.functions[fi];
        let flive: HashSet<InstId> = ff.live_insts().into_iter().collect();
        let after = shadowed_insts(ff, &flive);
        let mut lost: Vec<_> = before.difference(&after).collect();
        lost.sort();
        for iid in lost {
            findings.push(Finding {
                kind: InvariantKind::FoldableChecker,
                func: fid,
                detail: format!("shadow of %{} is erased by compare folding", iid.index()),
            });
        }
    }
    findings
}

/// Sync identity that unifies the two `SyncLoc` shapes for coverage tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SyncPoint {
    Inst(InstId),
    Term(BlockId),
}

fn sync_point_of(loc: SyncLoc) -> SyncPoint {
    match loc {
        SyncLoc::Inst(_, iid) => SyncPoint::Inst(iid),
        SyncLoc::Term(b) => SyncPoint::Term(b),
    }
}

/// A copy of `f` in which every block that calls the `DetectError`
/// intrinsic ends in `Unreachable`: detection halts the program, so the
/// detector's fall-through edge is not a real execution path.
fn detector_truncated(f: &Function) -> Function {
    let mut g = f.clone();
    let cut: Vec<BlockId> = g
        .iter_blocks()
        .filter(|(_, b)| {
            b.insts.iter().any(|&i| {
                matches!(&g.inst(i).kind, InstKind::Call { callee: Callee::Intrinsic(Intrinsic::DetectError), .. })
            })
        })
        .map(|(bid, _)| bid)
        .collect();
    for bid in cut {
        g.block_mut(bid).term = Terminator::Unreachable;
    }
    g
}

/// App instructions with a live shadow (the protected value set).
fn shadowed_insts(f: &Function, live: &HashSet<InstId>) -> HashSet<InstId> {
    let mut set = HashSet::new();
    for &iid in live {
        let d = f.inst(iid);
        if d.role == IrRole::Shadow {
            if let Some(orig) = d.dup_of {
                set.insert(orig);
            }
        }
    }
    set
}

fn op_is_shadowed(op: Op, shadowed: &HashSet<InstId>) -> bool {
    op.as_inst().is_some_and(|i| shadowed.contains(&i))
}

/// Does the checker compare read a live Shadow-role value, directly or
/// through one Checker-role bitcast (the float-compare shape)?
fn checker_has_shadow_operand(f: &Function, checker: InstId) -> bool {
    f.inst(checker).operands().iter().any(|op| {
        op.as_inst().is_some_and(|i| {
            let d = f.inst(i);
            if d.role == IrRole::Shadow {
                return true;
            }
            d.role == IrRole::Checker
                && matches!(&d.kind, InstKind::Cast { kind: CastKind::Bitcast, .. })
                && d.operands()
                    .iter()
                    .any(|inner| inner.as_inst().is_some_and(|j| f.inst(j).role == IrRole::Shadow))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};

    const SRC: &str = "int main() { int s = 0; int i; for (i = 0; i < 12; i = i + 1) {\n\
                       if (i % 3 == 0) { s = s + i * 2; } } output(s); return s; }";

    fn compiled(src: &str) -> Module {
        flowery_lang::compile("t", src).unwrap()
    }

    fn duplicated(src: &str) -> Module {
        let mut m = compiled(src);
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        m
    }

    #[test]
    fn unprotected_module_trivially_passes() {
        assert!(lint_module(&compiled(SRC)).is_empty());
    }

    #[test]
    fn plain_duplication_is_structurally_sound_but_foldable() {
        let m = duplicated(SRC);
        let findings = lint_module(&m);
        // The duplication pass itself places live shadows and dominating
        // checkers at every sync...
        for f in &findings {
            assert_eq!(f.kind, InvariantKind::FoldableChecker, "unexpected structural violation: {f:?}");
        }
        // ...but its shadow compares fold (the comparison-penetration
        // deficiency the anti-cmp patch exists for).
        assert!(!findings.is_empty(), "compare-heavy code must show foldable checkers");
    }

    #[test]
    fn flowery_clears_the_foldable_findings() {
        let mut m = duplicated(SRC);
        apply_flowery(&mut m, &FloweryConfig::default());
        let findings = lint_module(&m);
        assert!(findings.is_empty(), "Flowery must lint clean here: {findings:?}");
    }

    #[test]
    fn erasing_a_shadow_operand_is_detected() {
        // Rewire every checker's shadow operand to the original value —
        // the compare now checks a value against itself, exactly what
        // fold-erasure produces. The lint must call out each checker.
        let mut m = duplicated(SRC);
        let f = &mut m.functions[0];
        let mut edits: Vec<(InstId, Op, Op)> = Vec::new();
        for iid in f.live_insts() {
            let d = f.inst(iid);
            if d.role != IrRole::Checker {
                continue;
            }
            for op in d.operands() {
                let Some(i) = op.as_inst() else { continue };
                let sd = f.inst(i);
                if sd.role == IrRole::Shadow {
                    if let Some(orig) = sd.dup_of {
                        edits.push((iid, op, Op::inst(orig)));
                    }
                }
            }
        }
        assert!(!edits.is_empty(), "duplicated module has checkers with shadow operands");
        for (iid, old, new) in edits {
            if let InstKind::ICmp { lhs, rhs, .. } | InstKind::FCmp { lhs, rhs, .. } = &mut f.inst_mut(iid).kind {
                if *lhs == old {
                    *lhs = new;
                } else if *rhs == old {
                    *rhs = new;
                }
            }
        }
        let findings = lint_module(&m);
        let missing = findings.iter().filter(|f| f.kind == InvariantKind::MissingShadow).count();
        assert!(missing > 0, "self-compares must be flagged: {findings:?}");
    }
}
