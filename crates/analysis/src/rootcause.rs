//! Penetration root-cause classification (paper §5.2).
//!
//! Given the assembly instructions on which SDC-causing faults landed,
//! attribute each case to one of the paper's five penetration categories
//! using the provenance and micro-role metadata the backend attaches to
//! every machine instruction:
//!
//! | category   | signature |
//! |------------|-----------|
//! | store      | reload `mov` feeding a store / the store's own memory write / output-escape feeds |
//! | branch     | `test`/flag re-establishment for an unfused branch, or the condition reload |
//! | comparison | any site whose IR provenance is an application compare (protection folded away) |
//! | call       | argument moves, parameter spills, return-value moves, the call's return-address push |
//! | mapping    | prologue/epilogue code and `alloca` address materialization (no IR counterpart) |
//!
//! Sites that do not match any signature are either `Unprotected`
//! (application compute that simply was not selected for duplication —
//! partial-protection escapes, not cross-layer deficiencies) or `Other`.

use flowery_backend::mir::{AInst, AsmRole};
use flowery_backend::AsmProgram;
use flowery_ir::inst::InstKind;
use flowery_ir::module::Module;
use flowery_ir::IrRole;
use serde::{Deserialize, Serialize};

/// The paper's five penetration categories, plus two bookkeeping classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Penetration {
    Store,
    Branch,
    Comparison,
    Call,
    Mapping,
    /// Application compute not selected for protection (partial levels).
    Unprotected,
    /// Faults inside the protection machinery itself, or unclassified.
    Other,
}

impl Penetration {
    pub fn name(self) -> &'static str {
        match self {
            Penetration::Store => "store",
            Penetration::Branch => "branch",
            Penetration::Comparison => "comparison",
            Penetration::Call => "call",
            Penetration::Mapping => "mapping",
            Penetration::Unprotected => "unprotected",
            Penetration::Other => "other",
        }
    }

    /// The five real categories, in the paper's Figure 3 order.
    pub const CATEGORIES: [Penetration; 5] = [
        Penetration::Store,
        Penetration::Branch,
        Penetration::Comparison,
        Penetration::Call,
        Penetration::Mapping,
    ];
}

/// Reusable classifier for one protected module.
///
/// Precomputes which application instructions *lost their shadow* to the
/// backend's compare folding (the shadow compare and its private operand
/// chain are dead-code-eliminated once the checker folds — Figure 9), so
/// SDCs anywhere in those chains attribute to comparison penetration.
pub struct Classifier<'m> {
    m: &'m Module,
    folded_shadowless: std::collections::HashSet<(flowery_ir::FuncId, flowery_ir::InstId)>,
    live_shadowed: std::collections::HashSet<(flowery_ir::FuncId, flowery_ir::InstId)>,
}

impl<'m> Classifier<'m> {
    /// Build from the protected (duplicated) module. `fold_enabled` must
    /// match the backend configuration the program was compiled with: it
    /// decides whether shadow compares were folded away.
    pub fn new(m: &'m Module, fold_enabled: bool) -> Classifier<'m> {
        let shadows_of = |module: &Module| -> std::collections::HashSet<(flowery_ir::FuncId, flowery_ir::InstId)> {
            let mut set = std::collections::HashSet::new();
            for (fi, f) in module.functions.iter().enumerate() {
                for &iid in &f.live_insts() {
                    let d = f.inst(iid);
                    if d.role == IrRole::Shadow {
                        if let Some(orig) = d.dup_of {
                            set.insert((flowery_ir::FuncId(fi as u32), orig));
                        }
                    }
                }
            }
            set
        };
        let before = shadows_of(m);
        let after = if fold_enabled {
            let mut folded = m.clone();
            flowery_backend::fold::fold_redundant_compares(&mut folded);
            shadows_of(&folded)
        } else {
            before.clone()
        };
        let folded_shadowless = before.difference(&after).copied().collect();
        Classifier { m, folded_shadowless, live_shadowed: after }
    }

    /// Classify one SDC-causing machine instruction.
    pub fn classify(&self, inst: &AInst) -> Penetration {
        let base = classify_site(self.m, inst);
        if matches!(base, Penetration::Unprotected | Penetration::Other) {
            if let Some(prov) = inst.prov {
                if self.folded_shadowless.contains(&prov) {
                    // The chain was duplicated but folding removed its
                    // shadow: a comparison penetration (paper Figure 9).
                    return Penetration::Comparison;
                }
            }
            // Spill-slot corruption of a live-shadowed (i.e. protected)
            // value escapes the checker through the stack home — the
            // register-spilling mechanism of store penetration.
            if inst.role == AsmRole::ResultSpill
                && inst.ir_role == IrRole::App
                && inst.prov.is_some_and(|p| self.live_shadowed.contains(&p))
            {
                return Penetration::Store;
            }
        }
        base
    }
}

/// Classify one SDC-causing machine instruction (context-free rules only;
/// prefer [`Classifier`] which also attributes folded-away chains).
pub fn classify_site(m: &Module, inst: &AInst) -> Penetration {
    // Faults inside shadow/checker/patch code that still caused SDCs are
    // protection-internal oddities.
    if matches!(inst.ir_role, IrRole::Shadow | IrRole::Checker | IrRole::Patch) {
        return Penetration::Other;
    }
    let prov_kind = inst.prov.map(|(fid, iid)| &m.functions[fid.index()].inst(iid).kind);

    match inst.role {
        AsmRole::Prologue | AsmRole::Epilogue => Penetration::Mapping,
        AsmRole::ParamSpill | AsmRole::ArgMove | AsmRole::RetMove => Penetration::Call,
        AsmRole::FlagSet => Penetration::Branch,
        AsmRole::OperandReload => match prov_kind {
            Some(InstKind::Store { .. }) => Penetration::Store,
            // Output-escape feeds behave like store feeds.
            Some(InstKind::Call { .. }) => Penetration::Store,
            // Condition reload for an unfused branch (terminators carry no
            // provenance).
            None => Penetration::Branch,
            _ => Penetration::Unprotected,
        },
        AsmRole::Compute => match prov_kind {
            // The store's own memory write: corrupted after the checker
            // has passed.
            Some(InstKind::Store { .. }) => Penetration::Store,
            Some(InstKind::Call { .. }) => Penetration::Call,
            _ => Penetration::Unprotected,
        },
        AsmRole::AddrCompute => match prov_kind {
            Some(InstKind::Alloca { .. }) => Penetration::Mapping,
            _ => Penetration::Unprotected,
        },
        // Spills and compare materializations are resolved by
        // [`Classifier::classify`], which knows whether the protecting
        // shadow survived backend folding.
        AsmRole::ResultSpill | AsmRole::FlagMaterialize => Penetration::Unprotected,
        _ => Penetration::Other,
    }
}

/// Aggregated penetration distribution (the paper's Figure 3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PenetrationBreakdown {
    pub store: u64,
    pub branch: u64,
    pub comparison: u64,
    pub call: u64,
    pub mapping: u64,
    pub unprotected: u64,
    pub other: u64,
}

impl PenetrationBreakdown {
    pub fn record(&mut self, p: Penetration) {
        match p {
            Penetration::Store => self.store += 1,
            Penetration::Branch => self.branch += 1,
            Penetration::Comparison => self.comparison += 1,
            Penetration::Call => self.call += 1,
            Penetration::Mapping => self.mapping += 1,
            Penetration::Unprotected => self.unprotected += 1,
            Penetration::Other => self.other += 1,
        }
    }

    pub fn get(&self, p: Penetration) -> u64 {
        match p {
            Penetration::Store => self.store,
            Penetration::Branch => self.branch,
            Penetration::Comparison => self.comparison,
            Penetration::Call => self.call,
            Penetration::Mapping => self.mapping,
            Penetration::Unprotected => self.unprotected,
            Penetration::Other => self.other,
        }
    }

    /// Total *deficiency* cases (the five real categories only).
    pub fn deficiency_total(&self) -> u64 {
        Penetration::CATEGORIES.iter().map(|&p| self.get(p)).sum()
    }

    pub fn total(&self) -> u64 {
        self.deficiency_total() + self.unprotected + self.other
    }

    /// Percentage of deficiency cases in category `p` (Figure 3 numbers).
    pub fn percent(&self, p: Penetration) -> f64 {
        let t = self.deficiency_total();
        if t == 0 {
            0.0
        } else {
            self.get(p) as f64 * 100.0 / t as f64
        }
    }

    pub fn merge(&mut self, other: &PenetrationBreakdown) {
        self.store += other.store;
        self.branch += other.branch;
        self.comparison += other.comparison;
        self.call += other.call;
        self.mapping += other.mapping;
        self.unprotected += other.unprotected;
        self.other += other.other;
    }
}

/// Classify every SDC case of an assembly campaign.
pub fn classify_campaign(m: &Module, program: &AsmProgram, sdc_insts: &[u32]) -> PenetrationBreakdown {
    classify_campaign_with(m, program, sdc_insts, true)
}

/// [`classify_campaign`] with explicit knowledge of whether the backend's
/// compare folding was enabled when `program` was compiled.
pub fn classify_campaign_with(
    m: &Module,
    program: &AsmProgram,
    sdc_insts: &[u32],
    fold_enabled: bool,
) -> PenetrationBreakdown {
    let classifier = Classifier::new(m, fold_enabled);
    let mut out = PenetrationBreakdown::default();
    for &idx in sdc_insts {
        let inst = &program.insts[idx as usize];
        out.record(classifier.classify(inst));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_backend::{compile_module, BackendConfig};
    use flowery_inject::{run_asm_campaign, CampaignConfig};
    use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};

    fn protected(src: &str) -> (Module, AsmProgram) {
        let mut m = flowery_lang::compile("t", src).unwrap();
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        let prog = compile_module(&m, &BackendConfig::default());
        (m, prog)
    }

    #[test]
    fn full_protection_sdcs_are_dominated_by_real_penetrations() {
        let (m, prog) = protected(
            "int main() { int s = 0; int i; for (i = 0; i < 30; i = i + 1) {\n\
               if (i % 3 == 0) { s = s + i * 2; } else { s = s - 1; }\n\
             } output(s); return s; }",
        );
        let camp = run_asm_campaign(&m, &prog, &CampaignConfig::with_trials(1500));
        assert!(camp.counts.sdc > 0, "the cross-layer gap must produce SDCs: {:?}", camp.counts);
        let breakdown = classify_campaign(&m, &prog, &camp.sdc_insts);
        let defic = breakdown.deficiency_total();
        let total = breakdown.total();
        assert!(
            defic as f64 >= 0.7 * total as f64,
            "most full-protection SDCs must be classified penetrations: {breakdown:?}"
        );
        // Store + branch + comparison should dominate (paper: ~94%).
        let big3 = breakdown.store + breakdown.branch + breakdown.comparison;
        assert!(
            big3 as f64 >= 0.6 * defic as f64,
            "store/branch/comparison should dominate: {breakdown:?}"
        );
    }

    #[test]
    fn percentages_sum_to_100_over_deficiencies() {
        let mut b = PenetrationBreakdown::default();
        for p in [Penetration::Store, Penetration::Store, Penetration::Branch, Penetration::Call] {
            b.record(p);
        }
        b.record(Penetration::Unprotected);
        let sum: f64 = Penetration::CATEGORIES.iter().map(|&p| b.percent(p)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(b.deficiency_total(), 4);
        assert_eq!(b.total(), 5);
        assert!((b.percent(Penetration::Store) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn store_penetration_identified_for_checker_split_stores() {
        use flowery_backend::mir::{AKind, AOp};
        // Find an OperandReload mov (mem -> reg) feeding a store in a
        // protected program and verify it classifies as Store penetration.
        let (m, prog) = protected("int main() { int a = 1; int b = a + 2; output(b); return b; }");
        let mut found = false;
        for inst in &prog.insts {
            if inst.role == AsmRole::OperandReload
                && matches!(inst.kind, AKind::Mov { src: AOp::Mem(_), dst: AOp::Reg(_), .. })
                && matches!(inst.prov.map(|(f, i)| &m.functions[f.index()].inst(i).kind), Some(InstKind::Store { .. }))
            {
                assert_eq!(classify_site(&m, inst), Penetration::Store);
                found = true;
            }
        }
        assert!(found, "protected program must contain store-feeding reloads");
    }

    #[test]
    fn prologue_classifies_as_mapping_and_args_as_call() {
        let (m, prog) = protected(
            "int f(int a, int b) { return a + b; }\n\
             int main() { return f(2, 3); }",
        );
        let mut saw_mapping = false;
        let mut saw_call = false;
        for inst in &prog.insts {
            match classify_site(&m, inst) {
                Penetration::Mapping if matches!(inst.role, AsmRole::Prologue | AsmRole::Epilogue) => {
                    saw_mapping = true
                }
                Penetration::Call if inst.role == AsmRole::ArgMove => saw_call = true,
                _ => {}
            }
        }
        assert!(saw_mapping);
        assert!(saw_call);
    }

    #[test]
    fn classify_site_covers_every_category() {
        use flowery_backend::mir::AInst;
        use flowery_ir::{FuncId, IrRole};
        let (m, prog) = protected(
            "int g(int x) { return x + 1; }\n\
             int main() { int a = g(2); output(a); return a; }",
        );
        let prov_of = |fi: usize, pred: fn(&InstKind) -> bool| {
            let f = &m.functions[fi];
            f.live_insts()
                .into_iter()
                .find(|&i| pred(&f.inst(i).kind))
                .map(|i| (FuncId(fi as u32), i))
        };
        let store = prov_of(1, |k| matches!(k, InstKind::Store { .. }));
        let call = prov_of(1, |k| matches!(k, InstKind::Call { .. }));
        let alloca = prov_of(1, |k| matches!(k, InstKind::Alloca { .. }));
        assert!(store.is_some() && call.is_some() && alloca.is_some());
        // classify_site keys on role/ir_role/provenance, never the opcode,
        // so one borrowed opcode covers every signature.
        let kind = prog.insts[0].kind;
        let site = |role, ir_role, prov| AInst { kind, role, ir_role, prov };
        let app = |role, prov| site(role, IrRole::App, prov);
        use Penetration::*;
        // The five real categories.
        assert_eq!(classify_site(&m, &app(AsmRole::OperandReload, store)), Store);
        assert_eq!(classify_site(&m, &app(AsmRole::Compute, store)), Store);
        assert_eq!(classify_site(&m, &app(AsmRole::OperandReload, call)), Store);
        assert_eq!(classify_site(&m, &app(AsmRole::FlagSet, None)), Branch);
        assert_eq!(classify_site(&m, &app(AsmRole::OperandReload, None)), Branch);
        assert_eq!(classify_site(&m, &app(AsmRole::ParamSpill, None)), Call);
        assert_eq!(classify_site(&m, &app(AsmRole::ArgMove, None)), Call);
        assert_eq!(classify_site(&m, &app(AsmRole::RetMove, None)), Call);
        assert_eq!(classify_site(&m, &app(AsmRole::Compute, call)), Call);
        assert_eq!(classify_site(&m, &app(AsmRole::Prologue, None)), Mapping);
        assert_eq!(classify_site(&m, &app(AsmRole::Epilogue, None)), Mapping);
        assert_eq!(classify_site(&m, &app(AsmRole::AddrCompute, alloca)), Mapping);
        // Bookkeeping classes.
        assert_eq!(classify_site(&m, &app(AsmRole::Compute, None)), Unprotected);
        assert_eq!(classify_site(&m, &app(AsmRole::AddrCompute, None)), Unprotected);
        assert_eq!(classify_site(&m, &app(AsmRole::ResultSpill, None)), Unprotected);
        assert_eq!(classify_site(&m, &app(AsmRole::FlagMaterialize, None)), Unprotected);
        assert_eq!(classify_site(&m, &site(AsmRole::Compute, IrRole::Shadow, None)), Other);
        assert_eq!(classify_site(&m, &site(AsmRole::Compute, IrRole::Checker, None)), Other);
        assert_eq!(classify_site(&m, &site(AsmRole::Compute, IrRole::Patch, None)), Other);
    }

    #[test]
    fn classifier_attributes_folded_chains_to_comparison() {
        let (m, prog) = protected(
            "int main() { int s = 0; int i; for (i = 0; i < 8; i = i + 1) {\n\
               if (i < 5) { s = s + 1; }\n\
             } output(s); return s; }",
        );
        // Default backend folds shadow compares, so the classifier must
        // upgrade their (now shadow-less) chains from unprotected/other to
        // comparison penetration.
        let c = Classifier::new(&m, true);
        let upgraded = prog
            .insts
            .iter()
            .filter(|i| {
                matches!(classify_site(&m, i), Penetration::Unprotected | Penetration::Other)
                    && c.classify(i) == Penetration::Comparison
            })
            .count();
        assert!(upgraded > 0, "compare folding must strip some shadows");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PenetrationBreakdown { store: 1, branch: 2, ..Default::default() };
        let b = PenetrationBreakdown { store: 3, comparison: 1, other: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.store, 4);
        assert_eq!(a.branch, 2);
        assert_eq!(a.comparison, 1);
        assert_eq!(a.other, 2);
    }
}
