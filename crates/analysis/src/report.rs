//! Human-readable report rendering for experiment results.

use crate::rootcause::{Penetration, PenetrationBreakdown};
use std::fmt::Write;

/// Render a Figure-3-style distribution table.
pub fn render_breakdown(b: &PenetrationBreakdown) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<12} {:>8} {:>8}", "category", "cases", "share");
    for p in Penetration::CATEGORIES {
        let _ = writeln!(s, "{:<12} {:>8} {:>7.2}%", p.name(), b.get(p), b.percent(p));
    }
    let _ = writeln!(s, "{:<12} {:>8}", "(unprotected)", b.unprotected);
    let _ = writeln!(s, "{:<12} {:>8}", "(other)", b.other);
    let _ = writeln!(s, "{:<12} {:>8}", "deficiencies", b.deficiency_total());
    s
}

/// Render an aligned table given a header and rows of cells.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut s = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(s, "{:>width$}  ", h, width = widths[i]);
    }
    s.push('\n');
    for (i, _) in header.iter().enumerate() {
        let _ = write!(s, "{}  ", "-".repeat(widths[i]));
    }
    s.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            let _ = write!(s, "{:>width$}  ", cell, width = widths[i]);
        }
        s.push('\n');
    }
    s
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_renders_all_categories() {
        let b = PenetrationBreakdown {
            store: 39,
            branch: 35,
            comparison: 20,
            call: 3,
            mapping: 3,
            ..Default::default()
        };
        let s = render_breakdown(&b);
        for name in ["store", "branch", "comparison", "call", "mapping", "deficiencies"] {
            assert!(s.contains(name), "{s}");
        }
        assert!(s.contains("39.00%"), "{s}");
    }

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["bench", "cov"],
            &[vec!["bfs".into(), "53.3%".into()], vec!["stringsearch".into(), "12.0%".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[3].contains("stringsearch"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.3121), "31.21%");
        assert_eq!(pct(1.0), "100.00%");
    }
}
