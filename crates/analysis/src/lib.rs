//! # flowery-analysis
//!
//! Root-cause analysis of cross-layer protection deficiencies: classify
//! assembly-level SDC cases into the paper's five penetration categories
//! (store, branch, comparison, call, mapping — §5.2) and render reports.

pub mod report;
pub mod rootcause;
pub mod vulnerability;

pub use report::{pct, render_breakdown, render_table};
pub use rootcause::{
    classify_campaign, classify_campaign_with, classify_site, Classifier, Penetration, PenetrationBreakdown,
};
pub use vulnerability::{render_vulnerability, vulnerability_ranking, VulnEntry};
