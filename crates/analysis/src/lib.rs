//! # flowery-analysis
//!
//! Root-cause analysis of cross-layer protection deficiencies: classify
//! assembly-level SDC cases into the paper's five penetration categories
//! (store, branch, comparison, call, mapping — §5.2) and render reports.

pub mod report;
pub mod rootcause;
// `static` is a reserved word; the module lives in `src/static/` to match
// the on-disk layout of the analyzer ("statline" = static lint engine).
#[path = "static/mod.rs"]
pub mod statline;
pub mod vulnerability;

pub use report::{pct, render_breakdown, render_table};
pub use rootcause::{
    classify_campaign, classify_campaign_with, classify_site, Classifier, Penetration, PenetrationBreakdown,
};
pub use statline::{
    analyze_bits, cross_validate, lint_module, predict_program, render_validation, static_prior, BitTable, BitVerdict,
    Finding, InvariantKind, SitePrediction, StaticReport, TaintEngine, Validation, Verdict,
};
pub use vulnerability::{render_vulnerability, vulnerability_ranking, vulnerability_ranking_with_prior, VulnEntry};
