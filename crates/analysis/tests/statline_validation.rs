//! Acceptance gate for the static penetration analyzer: on every Table-1
//! workload at full instruction duplication, the lint must statically flag
//! at least 90% of the SDC sites an injection campaign measures in each of
//! the store / branch / comparison categories (the paper's three dominant
//! penetrations), and the cross-validation report must carry the evidence.
//!
//! At Flowery-100 the analyzer must also agree with the patches: no branch
//! predictions anywhere, and no comparison predictions unless the Layer-2
//! lint proves a shadow still folds (the stringsearch residual).

use flowery_analysis::rootcause::Penetration;
use flowery_analysis::statline::{cross_validate, lint_module, predict_program, render_validation, InvariantKind};
use flowery_backend::{compile_module, BackendConfig};
use flowery_inject::{run_asm_campaign, CampaignConfig};
use flowery_ir::Module;
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::{workload, Scale, NAMES};

fn protect(name: &str, flowery: bool) -> Module {
    let mut m = workload(name, Scale::Standard).compile();
    let plan = ProtectionPlan::full(&m);
    duplicate_module(&mut m, &plan, &DupConfig::default());
    if flowery {
        apply_flowery(&mut m, &FloweryConfig::default());
    }
    m
}

#[test]
fn id_full_recall_at_least_90_percent_on_all_workloads() {
    let bcfg = BackendConfig::default();
    for name in NAMES {
        let m = protect(name, false);
        let prog = compile_module(&m, &bcfg);
        let report = predict_program(&m, &prog, bcfg.fold_compares);
        let camp = run_asm_campaign(&m, &prog, &CampaignConfig::with_trials(800));
        let v = cross_validate(&m, &prog, &report, &camp.sdc_insts, bcfg.fold_compares);
        for cat in [Penetration::Store, Penetration::Branch, Penetration::Comparison] {
            assert!(
                v.recall_of(cat) >= 0.9,
                "{name}: {} recall {:.2} below gate\n{}",
                cat.name(),
                v.recall_of(cat),
                render_validation(&v)
            );
        }
        // Report structure: one row per classification bucket, and the
        // totals must be consistent with the rows.
        assert_eq!(v.rows.len(), 7, "{name}");
        assert_eq!(v.measured_sites, v.rows.iter().map(|r| r.measured).sum::<u64>(), "{name}");
        assert_eq!(v.flagged_measured, v.rows.iter().map(|r| r.flagged).sum::<u64>(), "{name}");
        assert_eq!(v.flagged_total, report.flagged.len() as u64, "{name}");
        let text = render_validation(&v);
        assert!(text.contains("recall") && text.contains("overall:"), "{name}:\n{text}");
    }
}

#[test]
fn flowery_full_closes_branch_and_fold_guarded_comparison() {
    let bcfg = BackendConfig::default();
    for name in NAMES {
        let m = protect(name, true);
        let prog = compile_module(&m, &bcfg);
        let report = predict_program(&m, &prog, bcfg.fold_compares);
        assert_eq!(report.breakdown.branch, 0, "{name}: branch predictions at Flowery-100");
        let foldable = lint_module(&m)
            .iter()
            .filter(|f| f.kind == InvariantKind::FoldableChecker)
            .count();
        if foldable == 0 {
            assert_eq!(report.breakdown.comparison, 0, "{name}: comparison predictions without foldable checkers");
        } else {
            assert!(
                report.breakdown.comparison > 0,
                "{name}: Layer 2 proves {foldable} foldable checkers but Layer 1 predicts none"
            );
        }
    }
}
