//! Ergonomic construction API for IR, used by the MiniC lowering, the
//! transformation passes and tests.

use crate::inst::{BinOp, Callee, CastKind, FPred, IPred, InstData, InstKind, Intrinsic, Terminator};
use crate::module::{Block, Function, Global, GlobalInit, Module};
use crate::types::Type;
use crate::value::{BlockId, FuncId, GlobalId, InstId, Op};

/// Builds one function; append instructions to a *current block* cursor.
pub struct FuncBuilder {
    func: Function,
    cur: Option<BlockId>,
}

impl FuncBuilder {
    /// Start a function. The entry block is created and made current.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret_ty: Option<Type>) -> FuncBuilder {
        let mut func = Function {
            name: name.into(),
            params,
            ret_ty,
            insts: Vec::new(),
            blocks: Vec::new(),
        };
        let entry = func.add_block("entry");
        FuncBuilder { func, cur: Some(entry) }
    }

    /// Create (but do not switch to) a new block.
    pub fn new_block(&mut self, label: impl Into<String>) -> BlockId {
        self.func.add_block(label)
    }

    /// Make `b` the current insertion block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    /// The current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur.expect("no current block (already terminated?)")
    }

    /// True if the current block has been terminated (no insertion point).
    pub fn is_terminated(&self) -> bool {
        self.cur.is_none()
    }

    /// Append `data` to the current block; returns its id (usable as a value
    /// if the instruction produces a result).
    pub fn push(&mut self, data: InstData) -> InstId {
        let cur = self.current();
        let id = self.func.add_inst(data);
        self.func.block_mut(cur).insts.push(id);
        id
    }

    fn push_kind(&mut self, kind: InstKind) -> InstId {
        self.push(InstData::new(kind))
    }

    // ---- instruction shorthands -------------------------------------------------

    pub fn alloca(&mut self, elem: Type, count: u32) -> InstId {
        self.push_kind(InstKind::Alloca { elem, count })
    }

    /// Insert an `alloca` into the *entry block*, after any existing entry
    /// allocas, regardless of the current cursor. This mirrors Clang `-O0`,
    /// which hoists all locals to the function entry so loops do not grow
    /// the stack.
    pub fn alloca_entry(&mut self, elem: Type, count: u32) -> InstId {
        let id = self.func.add_inst(InstData::new(InstKind::Alloca { elem, count }));
        let entry = self.func.entry();
        let pos = self
            .func
            .block(entry)
            .insts
            .iter()
            .take_while(|&&i| matches!(self.func.inst(i).kind, InstKind::Alloca { .. }))
            .count();
        self.func.block_mut(entry).insts.insert(pos, id);
        id
    }

    pub fn load(&mut self, ty: Type, ptr: Op) -> InstId {
        self.push_kind(InstKind::Load { ptr, ty })
    }

    pub fn store(&mut self, ty: Type, val: Op, ptr: Op) -> InstId {
        self.push_kind(InstKind::Store { val, ptr, ty })
    }

    pub fn bin(&mut self, op: BinOp, ty: Type, lhs: Op, rhs: Op) -> InstId {
        self.push_kind(InstKind::Bin { op, ty, lhs, rhs })
    }

    pub fn icmp(&mut self, pred: IPred, ty: Type, lhs: Op, rhs: Op) -> InstId {
        self.push_kind(InstKind::ICmp { pred, ty, lhs, rhs })
    }

    pub fn fcmp(&mut self, pred: FPred, ty: Type, lhs: Op, rhs: Op) -> InstId {
        self.push_kind(InstKind::FCmp { pred, ty, lhs, rhs })
    }

    pub fn cast(&mut self, kind: CastKind, from: Type, to: Type, val: Op) -> InstId {
        self.push_kind(InstKind::Cast { kind, from, to, val })
    }

    pub fn gep(&mut self, base: Op, index: Op, elem: Type) -> InstId {
        self.push_kind(InstKind::Gep { base, index, elem })
    }

    pub fn select(&mut self, ty: Type, cond: Op, t: Op, f: Op) -> InstId {
        self.push_kind(InstKind::Select { ty, cond, t, f })
    }

    pub fn call(&mut self, callee: FuncId, args: Vec<Op>) -> InstId {
        self.push_kind(InstKind::Call { callee: Callee::Func(callee), args })
    }

    pub fn intrinsic(&mut self, which: Intrinsic, args: Vec<Op>) -> InstId {
        self.push_kind(InstKind::Call { callee: Callee::Intrinsic(which), args })
    }

    pub fn output_i64(&mut self, v: Op) -> InstId {
        self.intrinsic(Intrinsic::OutputI64, vec![v])
    }

    pub fn output_f64(&mut self, v: Op) -> InstId {
        self.intrinsic(Intrinsic::OutputF64, vec![v])
    }

    // ---- terminators ------------------------------------------------------------

    /// Terminate the current block; the cursor becomes empty.
    pub fn terminate(&mut self, t: Terminator) {
        let cur = self.current();
        self.func.block_mut(cur).term = t;
        self.cur = None;
    }

    pub fn br(&mut self, cond: Op, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Br { cond, then_bb, else_bb });
    }

    pub fn jmp(&mut self, dest: BlockId) {
        self.terminate(Terminator::Jmp { dest });
    }

    pub fn ret(&mut self, val: Option<Op>) {
        self.terminate(Terminator::Ret { val });
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Immutable view of the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }
}

/// Builds a module: globals plus functions.
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder { module: Module::new(name) }
    }

    /// Add a zero-initialized global array.
    pub fn global_zeroed(&mut self, name: impl Into<String>, elem: Type, count: u64) -> GlobalId {
        self.module
            .add_global(Global { name: name.into(), elem, count, init: GlobalInit::Zero })
    }

    /// Add a global with explicit element values (canonical bit patterns).
    pub fn global_init(&mut self, name: impl Into<String>, elem: Type, values: Vec<u64>) -> GlobalId {
        let count = values.len() as u64;
        self.module.add_global(Global {
            name: name.into(),
            elem,
            count,
            init: GlobalInit::Elems(values),
        })
    }

    /// Add a global initialized from `i64` values.
    pub fn global_i64(&mut self, name: impl Into<String>, values: &[i64]) -> GlobalId {
        self.global_init(name, Type::I64, values.iter().map(|&v| v as u64).collect())
    }

    /// Add a global initialized from `f64` values.
    pub fn global_f64(&mut self, name: impl Into<String>, values: &[f64]) -> GlobalId {
        self.global_init(name, Type::F64, values.iter().map(|v| v.to_bits()).collect())
    }

    /// Reserve a function slot so calls can reference it before its body is
    /// built (needed for recursion / forward references).
    pub fn declare_func(&mut self, name: impl Into<String>, params: Vec<Type>, ret_ty: Option<Type>) -> FuncId {
        self.module.add_function(Function {
            name: name.into(),
            params,
            ret_ty,
            insts: Vec::new(),
            blocks: vec![Block {
                label: "entry".into(),
                insts: Vec::new(),
                term: Terminator::Unreachable,
            }],
        })
    }

    /// Replace a declared function's body with a built one (names must match).
    pub fn define_func(&mut self, id: FuncId, func: Function) {
        assert_eq!(self.module.functions[id.index()].name, func.name, "define_func name mismatch");
        self.module.functions[id.index()] = func;
    }

    /// Add a completed function.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        self.module.add_function(func)
    }

    pub fn finish(self) -> Module {
        self.module
    }

    pub fn module(&self) -> &Module {
        &self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn builds_loop_function() {
        // sum = 0; for (i = 0; i < n; i++) sum += i; return sum;
        let mut fb = FuncBuilder::new("sum_to_n", vec![Type::I32], Some(Type::I32));
        let sum = fb.alloca(Type::I32, 1);
        let i = fb.alloca(Type::I32, 1);
        fb.store(Type::I32, Op::ci32(0), Op::inst(sum));
        fb.store(Type::I32, Op::ci32(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);

        fb.switch_to(header);
        let iv = fb.load(Type::I32, Op::inst(i));
        let c = fb.icmp(IPred::Slt, Type::I32, Op::inst(iv), Op::param(0));
        fb.br(Op::inst(c), body, exit);

        fb.switch_to(body);
        let s = fb.load(Type::I32, Op::inst(sum));
        let iv2 = fb.load(Type::I32, Op::inst(i));
        let ns = fb.bin(BinOp::Add, Type::I32, Op::inst(s), Op::inst(iv2));
        fb.store(Type::I32, Op::inst(ns), Op::inst(sum));
        let ni = fb.bin(BinOp::Add, Type::I32, Op::inst(iv2), Op::ci32(1));
        fb.store(Type::I32, Op::inst(ni), Op::inst(i));
        fb.jmp(header);

        fb.switch_to(exit);
        let r = fb.load(Type::I32, Op::inst(sum));
        fb.ret(Some(Op::inst(r)));

        let f = fb.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.name, "sum_to_n");
        assert!(matches!(
            f.block(BlockId(3)).term,
            Terminator::Ret { val: Some(Op::Value(Value::Inst(_))) }
        ));
    }

    #[test]
    fn module_builder_declares_and_defines() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_i64("data", &[1, 2, 3]);
        let fid = mb.declare_func("main", vec![], Some(Type::I32));
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I32));
        let p = fb.gep(Op::Global(g), Op::ci64(1), Type::I64);
        let v = fb.load(Type::I64, Op::inst(p));
        let t = fb.cast(CastKind::Trunc, Type::I64, Type::I32, Op::inst(v));
        fb.ret(Some(Op::inst(t)));
        mb.define_func(fid, fb.finish());
        let m = mb.finish();
        assert_eq!(m.main_func(), Some(fid));
        assert_eq!(m.global(g).count, 3);
    }

    #[test]
    #[should_panic(expected = "no current block")]
    fn pushing_after_terminate_panics() {
        let mut fb = FuncBuilder::new("f", vec![], None);
        fb.ret(None);
        fb.alloca(Type::I32, 1);
    }
}
