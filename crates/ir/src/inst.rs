//! Instruction and terminator definitions.
//!
//! The set mirrors `-O0` LLVM IR as produced by Clang for C programs: locals
//! live in `alloca`s, there are no phi nodes, and control flow is explicit
//! branches between labelled blocks. This matters for the reproduction: the
//! paper's five *penetrations* are consequences of exactly this IR shape.

use crate::types::Type;
use crate::value::{BlockId, FuncId, InstId, Op};
use serde::{Deserialize, Serialize};

/// Binary arithmetic / bitwise opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division (traps on divide-by-zero and INT_MIN / -1).
    SDiv,
    /// Unsigned division (traps on divide-by-zero).
    UDiv,
    /// Signed remainder.
    SRem,
    /// Unsigned remainder.
    URem,
    And,
    Or,
    Xor,
    /// Shift left (shift amount taken modulo bit width).
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// True for the floating-point opcodes.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// True if the operation is commutative (used by the optimizer's
    /// available-expression matcher).
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::FAdd | BinOp::FMul
        )
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

/// Integer comparison predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl IPred {
    pub fn mnemonic(self) -> &'static str {
        match self {
            IPred::Eq => "eq",
            IPred::Ne => "ne",
            IPred::Slt => "slt",
            IPred::Sle => "sle",
            IPred::Sgt => "sgt",
            IPred::Sge => "sge",
            IPred::Ult => "ult",
            IPred::Ule => "ule",
            IPred::Ugt => "ugt",
            IPred::Uge => "uge",
        }
    }

    /// The predicate with operand order swapped (`a < b` → `b > a`).
    pub fn swapped(self) -> IPred {
        match self {
            IPred::Eq => IPred::Eq,
            IPred::Ne => IPred::Ne,
            IPred::Slt => IPred::Sgt,
            IPred::Sle => IPred::Sge,
            IPred::Sgt => IPred::Slt,
            IPred::Sge => IPred::Sle,
            IPred::Ult => IPred::Ugt,
            IPred::Ule => IPred::Uge,
            IPred::Ugt => IPred::Ult,
            IPred::Uge => IPred::Ule,
        }
    }
}

/// Floating comparison predicate (ordered forms only; the workloads never
/// produce NaNs on the golden path, and unordered inputs compare false).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FPred {
    pub fn mnemonic(self) -> &'static str {
        match self {
            FPred::Oeq => "oeq",
            FPred::One => "one",
            FPred::Olt => "olt",
            FPred::Ole => "ole",
            FPred::Ogt => "ogt",
            FPred::Oge => "oge",
        }
    }
}

/// Value cast kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// Zero-extend to a wider integer.
    Zext,
    /// Sign-extend to a wider integer.
    Sext,
    /// Truncate to a narrower integer.
    Trunc,
    /// Signed integer to floating point.
    SiToFp,
    /// Floating point to signed integer (round toward zero).
    FpToSi,
    /// `f32` <-> `f64` conversion.
    FpCast,
    /// Reinterpret bits between same-width int/float/ptr.
    Bitcast,
}

/// Runtime-service and math intrinsics.
///
/// Math functions are modelled as intrinsics rather than extern calls so the
/// backend can lower them as single arithmetic-class machine instructions;
/// this keeps the call-penetration statistics driven by *program* calls, as
/// in the paper's benchmarks (which link libm out of the measured image).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intrinsic {
    /// Append an i64 record to the program output stream.
    OutputI64,
    /// Append an f64 record to the program output stream.
    OutputF64,
    /// Append a byte record to the program output stream.
    OutputByte,
    /// Error detector invoked by duplication checkers; halts with `Detected`.
    DetectError,
    /// `sqrt(f64) -> f64`
    Sqrt,
    /// `sin(f64) -> f64`
    Sin,
    /// `cos(f64) -> f64`
    Cos,
    /// `exp(f64) -> f64`
    Exp,
    /// `log(f64) -> f64` (natural log)
    Log,
    /// `fabs(f64) -> f64`
    Fabs,
    /// `floor(f64) -> f64`
    Floor,
    /// `pow(f64, f64) -> f64`
    Pow,
}

impl Intrinsic {
    /// Result type, if any.
    pub fn ret_ty(self) -> Option<Type> {
        match self {
            Intrinsic::OutputI64 | Intrinsic::OutputF64 | Intrinsic::OutputByte | Intrinsic::DetectError => None,
            _ => Some(Type::F64),
        }
    }

    /// Number of arguments expected.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::DetectError => 0,
            Intrinsic::Pow => 2,
            _ => 1,
        }
    }

    /// True for the pure math intrinsics (lowered as arithmetic, duplicable).
    pub fn is_math(self) -> bool {
        !matches!(
            self,
            Intrinsic::OutputI64 | Intrinsic::OutputF64 | Intrinsic::OutputByte | Intrinsic::DetectError
        )
    }

    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::OutputI64 => "output_i64",
            Intrinsic::OutputF64 => "output_f64",
            Intrinsic::OutputByte => "output_byte",
            Intrinsic::DetectError => "detect_error",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Floor => "floor",
            Intrinsic::Pow => "pow",
        }
    }
}

/// Call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Callee {
    /// A function defined in this module.
    Func(FuncId),
    /// A runtime intrinsic.
    Intrinsic(Intrinsic),
}

/// Non-terminator instruction payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstKind {
    /// Reserve `count` elements of `elem` in the function frame; yields `ptr`.
    Alloca { elem: Type, count: u32 },
    /// Load a `ty` from `ptr`.
    Load { ptr: Op, ty: Type },
    /// Store `val` (of type `ty`) to `ptr`. **No result** — hence not a fault
    /// injection site at IR level (paper §5.2, store penetration).
    Store { val: Op, ptr: Op, ty: Type },
    /// Binary arithmetic on two operands of type `ty`.
    Bin { op: BinOp, ty: Type, lhs: Op, rhs: Op },
    /// Integer comparison; yields `i1`.
    ICmp { pred: IPred, ty: Type, lhs: Op, rhs: Op },
    /// Float comparison; yields `i1`.
    FCmp { pred: FPred, ty: Type, lhs: Op, rhs: Op },
    /// Cast between value types.
    Cast { kind: CastKind, from: Type, to: Type, val: Op },
    /// `base + index * size_of(elem)`; yields `ptr`. `index` has type `I64`.
    Gep { base: Op, index: Op, elem: Type },
    /// `cond ? t : f` on values of type `ty`.
    Select { ty: Type, cond: Op, t: Op, f: Op },
    /// Direct call. Result type comes from the callee signature; `None` for
    /// `void` calls — which therefore are not IR-level fault sites either
    /// (paper §5.2, call penetration).
    Call { callee: Callee, args: Vec<Op> },
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Conditional branch on an `i1` operand.
    Br { cond: Op, then_bb: BlockId, else_bb: BlockId },
    /// Unconditional jump.
    Jmp { dest: BlockId },
    /// Return from function.
    Ret { val: Option<Op> },
    /// Control never reaches here (verifier-checked dead end).
    Unreachable,
}

impl Terminator {
    /// Successor block ids, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Jmp { dest } => vec![*dest],
            Terminator::Ret { .. } | Terminator::Unreachable => vec![],
        }
    }

    /// Mutable access to the operand (branch condition / return value).
    pub fn operand_mut(&mut self) -> Option<&mut Op> {
        match self {
            Terminator::Br { cond, .. } => Some(cond),
            Terminator::Ret { val: Some(v) } => Some(v),
            _ => None,
        }
    }

    /// The operand, if any.
    pub fn operand(&self) -> Option<Op> {
        match self {
            Terminator::Br { cond, .. } => Some(*cond),
            Terminator::Ret { val } => *val,
            _ => None,
        }
    }

    /// Rewrite successor block ids with `f`.
    pub fn retarget(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br { then_bb, else_bb, .. } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Jmp { dest } => *dest = f(*dest),
            _ => {}
        }
    }
}

/// Provenance marker attached to every instruction, consumed by the
/// duplication pass, the Flowery patches, and the root-cause analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IrRole {
    /// Original application code.
    #[default]
    App,
    /// A duplicate ("shadow") of the instruction `dup_of` points at.
    Shadow,
    /// Part of a duplication checker (the `icmp eq`/branch/detector call).
    Checker,
    /// Inserted by a Flowery patch.
    Patch,
}

/// An instruction plus its static metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstData {
    pub kind: InstKind,
    /// Provenance for cross-layer analysis.
    pub role: IrRole,
    /// For `role == Shadow`: the original instruction this shadows.
    pub dup_of: Option<InstId>,
}

impl InstData {
    pub fn new(kind: InstKind) -> InstData {
        InstData { kind, role: IrRole::App, dup_of: None }
    }

    pub fn with_role(kind: InstKind, role: IrRole) -> InstData {
        InstData { kind, role, dup_of: None }
    }

    /// Result type of this instruction, given a lookup for callee return
    /// types (needed for `Call`).
    pub fn result_ty(&self, callee_ret: impl Fn(FuncId) -> Option<Type>) -> Option<Type> {
        match &self.kind {
            InstKind::Alloca { .. } | InstKind::Gep { .. } => Some(Type::Ptr),
            InstKind::Load { ty, .. } => Some(*ty),
            InstKind::Store { .. } => None,
            InstKind::Bin { ty, .. } => Some(*ty),
            InstKind::ICmp { .. } | InstKind::FCmp { .. } => Some(Type::I1),
            InstKind::Cast { to, .. } => Some(*to),
            InstKind::Select { ty, .. } => Some(*ty),
            InstKind::Call { callee, .. } => match callee {
                Callee::Func(f) => callee_ret(*f),
                Callee::Intrinsic(i) => i.ret_ty(),
            },
        }
    }

    /// Iterate over all operand slots mutably (excluding terminators).
    pub fn operands_mut(&mut self) -> Vec<&mut Op> {
        match &mut self.kind {
            InstKind::Alloca { .. } => vec![],
            InstKind::Load { ptr, .. } => vec![ptr],
            InstKind::Store { val, ptr, .. } => vec![val, ptr],
            InstKind::Bin { lhs, rhs, .. } | InstKind::ICmp { lhs, rhs, .. } | InstKind::FCmp { lhs, rhs, .. } => {
                vec![lhs, rhs]
            }
            InstKind::Cast { val, .. } => vec![val],
            InstKind::Gep { base, index, .. } => vec![base, index],
            InstKind::Select { cond, t, f, .. } => vec![cond, t, f],
            InstKind::Call { args, .. } => args.iter_mut().collect(),
        }
    }

    /// Iterate over all operands by value.
    pub fn operands(&self) -> Vec<Op> {
        match &self.kind {
            InstKind::Alloca { .. } => vec![],
            InstKind::Load { ptr, .. } => vec![*ptr],
            InstKind::Store { val, ptr, .. } => vec![*val, *ptr],
            InstKind::Bin { lhs, rhs, .. } | InstKind::ICmp { lhs, rhs, .. } | InstKind::FCmp { lhs, rhs, .. } => {
                vec![*lhs, *rhs]
            }
            InstKind::Cast { val, .. } => vec![*val],
            InstKind::Gep { base, index, .. } => vec![*base, *index],
            InstKind::Select { cond, t, f, .. } => vec![*cond, *t, *f],
            InstKind::Call { args, .. } => args.clone(),
        }
    }

    /// True if the instruction writes memory or performs I/O / calls —
    /// i.e. may not be freely duplicated or removed.
    pub fn has_side_effects(&self) -> bool {
        match &self.kind {
            InstKind::Store { .. } => true,
            InstKind::Call { callee, .. } => match callee {
                Callee::Func(_) => true,
                Callee::Intrinsic(i) => !i.is_math(),
            },
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_types() {
        let none = |_| None;
        let load = InstData::new(InstKind::Load { ptr: Op::param(0), ty: Type::I32 });
        assert_eq!(load.result_ty(none), Some(Type::I32));
        let store = InstData::new(InstKind::Store { val: Op::ci32(1), ptr: Op::param(0), ty: Type::I32 });
        assert_eq!(store.result_ty(none), None);
        let icmp = InstData::new(InstKind::ICmp {
            pred: IPred::Slt,
            ty: Type::I32,
            lhs: Op::ci32(1),
            rhs: Op::ci32(2),
        });
        assert_eq!(icmp.result_ty(none), Some(Type::I1));
        let call_detect = InstData::new(InstKind::Call {
            callee: Callee::Intrinsic(Intrinsic::DetectError),
            args: vec![],
        });
        assert_eq!(call_detect.result_ty(none), None);
        let sqrt = InstData::new(InstKind::Call {
            callee: Callee::Intrinsic(Intrinsic::Sqrt),
            args: vec![Op::cf64(2.0)],
        });
        assert_eq!(sqrt.result_ty(none), Some(Type::F64));
    }

    #[test]
    fn terminator_successors_and_retarget() {
        let mut t = Terminator::Br {
            cond: Op::Const(Const::bool(true)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        t.retarget(|b| BlockId(b.0 + 10));
        assert_eq!(t.successors(), vec![BlockId(11), BlockId(12)]);
        assert!(Terminator::Ret { val: None }.successors().is_empty());
    }

    #[test]
    fn side_effects() {
        let add = InstData::new(InstKind::Bin {
            op: BinOp::Add,
            ty: Type::I32,
            lhs: Op::ci32(1),
            rhs: Op::ci32(2),
        });
        assert!(!add.has_side_effects());
        let sqrt = InstData::new(InstKind::Call {
            callee: Callee::Intrinsic(Intrinsic::Sqrt),
            args: vec![Op::cf64(2.0)],
        });
        assert!(!sqrt.has_side_effects());
        let out = InstData::new(InstKind::Call {
            callee: Callee::Intrinsic(Intrinsic::OutputI64),
            args: vec![Op::ci64(1)],
        });
        assert!(out.has_side_effects());
    }

    #[test]
    fn swapped_predicates() {
        assert_eq!(IPred::Slt.swapped(), IPred::Sgt);
        assert_eq!(IPred::Eq.swapped(), IPred::Eq);
        assert_eq!(IPred::Uge.swapped(), IPred::Ule);
    }

    use crate::value::Const;
}
