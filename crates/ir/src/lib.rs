//! # flowery-ir
//!
//! An LLVM-flavoured intermediate representation with a builder API, a
//! verifier, a textual printer, control-flow analyses and a tracing
//! interpreter with single-bit fault injection.
//!
//! This crate is the "LLVM level" of the SC'23 paper *Demystifying and
//! Mitigating Cross-Layer Deficiencies of Soft Error Protection in
//! Instruction Duplication*. Its shape deliberately matches `-O0` Clang
//! output: locals live in `alloca`s, there are no phi nodes, and
//! stores/branches/void-calls produce no result values — which is exactly
//! why they are not fault-injection sites at this level, the seed of the
//! paper's cross-layer protection gap.
//!
//! ## Quick start
//!
//! ```
//! use flowery_ir::builder::{FuncBuilder, ModuleBuilder};
//! use flowery_ir::inst::BinOp;
//! use flowery_ir::interp::{ExecConfig, Interpreter, ExecStatus};
//! use flowery_ir::types::Type;
//! use flowery_ir::value::Op;
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
//! let s = fb.bin(BinOp::Add, Type::I64, Op::ci64(40), Op::ci64(2));
//! fb.ret(Some(Op::inst(s)));
//! mb.add_func(fb.finish());
//! let module = mb.finish();
//!
//! flowery_ir::verify::verify_module(&module).unwrap();
//! let result = Interpreter::new(&module).run(&ExecConfig::default(), None);
//! assert_eq!(result.status, ExecStatus::Completed(42));
//! ```

pub mod analysis;
pub mod builder;
pub mod inst;
pub mod interp;
pub mod module;
pub mod printer;
pub mod textparse;
pub mod types;
pub mod value;
pub mod verify;

pub use inst::{BinOp, Callee, CastKind, FPred, IPred, InstData, InstKind, Intrinsic, IrRole, Terminator};
pub use module::{Block, Function, Global, GlobalInit, Module};
pub use types::Type;
pub use value::{BlockId, Const, FuncId, GlobalId, InstId, Op, Value};
