//! Structural and type verifier.
//!
//! Run after frontend lowering and after every transformation pass; a pass
//! that emits ill-formed IR is a bug in this repository, not a simulated
//! soft error, so verification failures are hard errors.

use crate::analysis::DomTree;
use crate::inst::{BinOp, Callee, CastKind, InstKind, Terminator};
use crate::module::{Function, Module};
use crate::types::Type;
use crate::value::{BlockId, FuncId, InstId, Op, Value};
use std::collections::HashMap;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub func: String,
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in @{}: {}", self.func, self.detail)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (i, f) in m.functions.iter().enumerate() {
        verify_function(m, FuncId(i as u32), f)?;
    }
    Ok(())
}

fn err(f: &Function, detail: impl Into<String>) -> VerifyError {
    VerifyError { func: f.name.clone(), detail: detail.into() }
}

fn verify_function(m: &Module, fid: FuncId, f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(f, "function has no blocks"));
    }
    // Each placed instruction id must be in range and appear exactly once.
    let mut placement: HashMap<InstId, BlockId> = HashMap::new();
    for (bid, block) in f.iter_blocks() {
        for &iid in &block.insts {
            if iid.index() >= f.insts.len() {
                return Err(err(f, format!("instruction id {} out of range", iid.0)));
            }
            if placement.insert(iid, bid).is_some() {
                return Err(err(f, format!("instruction %{} placed in more than one block", iid.0)));
            }
        }
        for s in block.term.successors() {
            if s.index() >= f.blocks.len() {
                return Err(err(f, format!("block {} branches to invalid block {}", block.label, s.0)));
            }
        }
    }

    let dt = DomTree::compute(f);

    // Type/def checks per placed instruction, in block order.
    for (bid, block) in f.iter_blocks() {
        if !dt.reachable(bid) {
            continue; // dead blocks are tolerated (passes may orphan blocks)
        }
        for (pos, &iid) in block.insts.iter().enumerate() {
            let inst = f.inst(iid);
            check_operand_defs(m, fid, f, &dt, &placement, bid, pos, iid, &inst.operands())?;
            check_types(m, fid, f, iid)?;
        }
        // Terminator checks.
        match &block.term {
            Terminator::Br { cond, .. } => {
                let ty = m.op_ty(fid, *cond).ok_or_else(|| err(f, "br cond has unknown type"))?;
                if ty != Type::I1 {
                    return Err(err(f, format!("br cond must be i1, got {ty}")));
                }
                check_operand_defs(m, fid, f, &dt, &placement, bid, block.insts.len(), InstId(u32::MAX), &[*cond])?;
            }
            Terminator::Ret { val } => match (val, f.ret_ty) {
                (None, None) => {}
                (Some(v), Some(rt)) => {
                    let ty = m.op_ty(fid, *v).ok_or_else(|| err(f, "ret val has unknown type"))?;
                    if ty != rt {
                        return Err(err(f, format!("ret type {ty} != declared {rt}")));
                    }
                    check_operand_defs(m, fid, f, &dt, &placement, bid, block.insts.len(), InstId(u32::MAX), &[*v])?;
                }
                (None, Some(rt)) => return Err(err(f, format!("missing return value of type {rt}"))),
                (Some(_), None) => return Err(err(f, "returning a value from a void function")),
            },
            Terminator::Jmp { .. } | Terminator::Unreachable => {}
        }
    }
    Ok(())
}

/// Every `Value` operand must be a parameter or an instruction whose
/// definition strictly precedes the use in the same block, or whose block
/// strictly dominates the using block.
#[allow(clippy::too_many_arguments)]
fn check_operand_defs(
    m: &Module,
    _fid: FuncId,
    f: &Function,
    dt: &DomTree,
    placement: &HashMap<InstId, BlockId>,
    use_block: BlockId,
    use_pos: usize,
    user: InstId,
    ops: &[Op],
) -> Result<(), VerifyError> {
    for op in ops {
        match op {
            Op::Value(Value::Param(p)) => {
                if *p as usize >= f.params.len() {
                    return Err(err(f, format!("use of undefined parameter #{p}")));
                }
            }
            Op::Value(Value::Inst(def)) => {
                let Some(&def_block) = placement.get(def) else {
                    return Err(err(f, format!("%{} uses %{} which is not placed in any block", user.0, def.0)));
                };
                if def_block == use_block {
                    let def_pos = f
                        .block(def_block)
                        .insts
                        .iter()
                        .position(|&i| i == *def)
                        .expect("placement consistent");
                    if def_pos >= use_pos {
                        return Err(err(
                            f,
                            format!("%{} used before its definition in block {}", def.0, f.block(use_block).label),
                        ));
                    }
                } else if !dt.dominates(def_block, use_block) {
                    return Err(err(
                        f,
                        format!(
                            "%{} (defined in {}) does not dominate its use in {}",
                            def.0,
                            f.block(def_block).label,
                            f.block(use_block).label
                        ),
                    ));
                }
                if m.result_ty(_fid, *def).is_none() {
                    return Err(err(f, format!("%{} has no result but is used as a value", def.0)));
                }
            }
            Op::Global(g) => {
                if g.index() >= m.globals.len() {
                    return Err(err(f, format!("use of undefined global #{}", g.0)));
                }
            }
            Op::Const(_) => {}
        }
    }
    Ok(())
}

fn check_types(m: &Module, fid: FuncId, f: &Function, iid: InstId) -> Result<(), VerifyError> {
    let inst = f.inst(iid);
    let opty = |op: &Op| m.op_ty(fid, *op);
    let expect = |op: &Op, want: Type, what: &str| -> Result<(), VerifyError> {
        match opty(op) {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(err(f, format!("%{}: {what} must be {want}, got {t}", iid.0))),
            None => Err(err(f, format!("%{}: {what} has no type", iid.0))),
        }
    };
    match &inst.kind {
        InstKind::Alloca { count, .. } => {
            if *count == 0 {
                return Err(err(f, format!("%{}: alloca of zero elements", iid.0)));
            }
        }
        InstKind::Load { ptr, .. } => expect(ptr, Type::Ptr, "load pointer")?,
        InstKind::Store { val, ptr, ty } => {
            expect(ptr, Type::Ptr, "store pointer")?;
            expect(val, *ty, "store value")?;
        }
        InstKind::Bin { op, ty, lhs, rhs } => {
            if op.is_float() != ty.is_float() {
                return Err(err(f, format!("%{}: {} on {}", iid.0, op.mnemonic(), ty)));
            }
            if !op.is_float() && !ty.is_int() {
                return Err(err(f, format!("%{}: integer op on {}", iid.0, ty)));
            }
            if matches!(op, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv) && !ty.is_float() {
                return Err(err(f, format!("%{}: float op on {}", iid.0, ty)));
            }
            expect(lhs, *ty, "lhs")?;
            expect(rhs, *ty, "rhs")?;
        }
        InstKind::ICmp { ty, lhs, rhs, .. } => {
            if !ty.is_int() && !ty.is_ptr() {
                return Err(err(f, format!("%{}: icmp on {}", iid.0, ty)));
            }
            expect(lhs, *ty, "icmp lhs")?;
            expect(rhs, *ty, "icmp rhs")?;
        }
        InstKind::FCmp { ty, lhs, rhs, .. } => {
            if !ty.is_float() {
                return Err(err(f, format!("%{}: fcmp on {}", iid.0, ty)));
            }
            expect(lhs, *ty, "fcmp lhs")?;
            expect(rhs, *ty, "fcmp rhs")?;
        }
        InstKind::Cast { kind, from, to, val } => {
            expect(val, *from, "cast input")?;
            let ok = match kind {
                CastKind::Zext | CastKind::Sext => from.is_int() && to.is_int() && to.bits() > from.bits(),
                CastKind::Trunc => from.is_int() && to.is_int() && to.bits() < from.bits(),
                CastKind::SiToFp => from.is_int() && to.is_float(),
                CastKind::FpToSi => from.is_float() && to.is_int(),
                CastKind::FpCast => from.is_float() && to.is_float() && from != to,
                CastKind::Bitcast => from.bits() == to.bits(),
            };
            if !ok {
                return Err(err(f, format!("%{}: invalid cast {from} -> {to} ({kind:?})", iid.0)));
            }
        }
        InstKind::Gep { base, index, .. } => {
            expect(base, Type::Ptr, "gep base")?;
            expect(index, Type::I64, "gep index")?;
        }
        InstKind::Select { ty, cond, t, f: fv } => {
            expect(cond, Type::I1, "select cond")?;
            expect(t, *ty, "select true value")?;
            expect(fv, *ty, "select false value")?;
        }
        InstKind::Call { callee, args } => match callee {
            Callee::Func(cf) => {
                if cf.index() >= m.functions.len() {
                    return Err(err(f, format!("%{}: call to undefined function", iid.0)));
                }
                let sig = &m.functions[cf.index()];
                if sig.params.len() != args.len() {
                    return Err(err(
                        f,
                        format!(
                            "%{}: call to @{} with {} args, expected {}",
                            iid.0,
                            sig.name,
                            args.len(),
                            sig.params.len()
                        ),
                    ));
                }
                for (i, (a, want)) in args.iter().zip(sig.params.clone()).enumerate() {
                    expect(a, want, &format!("arg {i}"))?;
                }
            }
            Callee::Intrinsic(intr) => {
                if args.len() != intr.arity() {
                    return Err(err(f, format!("%{}: intrinsic {} expects {} args", iid.0, intr.name(), intr.arity())));
                }
            }
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::inst::IPred;

    fn ok_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I32));
        let a = fb.alloca(Type::I32, 4);
        fb.store(Type::I32, Op::ci32(5), Op::inst(a));
        let v = fb.load(Type::I32, Op::inst(a));
        fb.ret(Some(Op::inst(v)));
        mb.add_func(fb.finish());
        mb.finish()
    }

    #[test]
    fn valid_module_passes() {
        verify_module(&ok_module()).unwrap();
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut m = ok_module();
        // store f64 into an i32-typed store
        let f = &mut m.functions[0];
        if let InstKind::Store { val, .. } = &mut f.insts[1].kind {
            *val = Op::cf64(1.0);
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.detail.contains("store value"), "{e}");
    }

    #[test]
    fn br_on_non_bool_rejected() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], None);
        let t = fb.new_block("t");
        let e = fb.new_block("e");
        fb.br(Op::ci32(1), t, e);
        fb.switch_to(t);
        fb.ret(None);
        fb.switch_to(e);
        fb.ret(None);
        mb.add_func(fb.finish());
        let err = verify_module(&mb.finish()).unwrap_err();
        assert!(err.detail.contains("br cond"), "{err}");
    }

    #[test]
    fn use_before_def_rejected() {
        let mut m = ok_module();
        let f = &mut m.functions[0];
        // Make the store use the load that comes after it.
        if let InstKind::Store { val, .. } = &mut f.insts[1].kind {
            *val = Op::inst(InstId(2));
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.detail.contains("before its definition"), "{e}");
    }

    #[test]
    fn non_dominating_def_rejected() {
        // entry -> {l, r} -> j ; value defined in l used in j
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![Type::I32], Some(Type::I32));
        let l = fb.new_block("l");
        let r = fb.new_block("r");
        let j = fb.new_block("j");
        let c = fb.icmp(IPred::Slt, Type::I32, Op::param(0), Op::ci32(0));
        fb.br(Op::inst(c), l, r);
        fb.switch_to(l);
        let v = fb.bin(crate::inst::BinOp::Add, Type::I32, Op::param(0), Op::ci32(1));
        fb.jmp(j);
        fb.switch_to(r);
        fb.jmp(j);
        fb.switch_to(j);
        fb.ret(Some(Op::inst(v)));
        mb.add_func(fb.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.detail.contains("does not dominate"), "{e}");
    }

    #[test]
    fn call_arity_checked() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare_func("f", vec![Type::I32, Type::I32], Some(Type::I32));
        let mut fb = FuncBuilder::new("f", vec![Type::I32, Type::I32], Some(Type::I32));
        fb.ret(Some(Op::param(0)));
        mb.define_func(callee, fb.finish());
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I32));
        let c = fb.call(callee, vec![Op::ci32(1)]); // wrong arity
        fb.ret(Some(Op::inst(c)));
        mb.add_func(fb.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.detail.contains("expected 2"), "{e}");
    }

    #[test]
    fn invalid_cast_rejected() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I32));
        let v = fb.cast(CastKind::Zext, Type::I64, Type::I32, Op::ci64(1)); // narrowing zext
        fb.ret(Some(Op::inst(v)));
        mb.add_func(fb.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.detail.contains("invalid cast"), "{e}");
    }
}
