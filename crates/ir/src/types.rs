//! The IR type system.
//!
//! Mirrors the subset of LLVM types the paper's benchmarks exercise:
//! fixed-width integers, IEEE floats, and an opaque byte-addressed pointer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A first-class IR type.
///
/// `I1` is the boolean type produced by comparisons. Pointers are untyped
/// (opaque) at the value level; element types live on the memory operations
/// (`load`/`store`/`gep`), matching modern LLVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 1-bit boolean (stored as one byte in memory).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// Byte-addressed opaque pointer (64-bit).
    Ptr,
}

impl Type {
    /// Size of a value of this type when stored in memory, in bytes.
    pub fn size(self) -> u64 {
        match self {
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
        }
    }

    /// Natural alignment in bytes (equal to size for this ISA-like model).
    pub fn align(self) -> u64 {
        self.size()
    }

    /// Number of significant bits in a register holding this value.
    ///
    /// This is the width used by the fault injector when choosing a bit to
    /// flip: faults are injected only into architecturally meaningful bits.
    pub fn bits(self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::I8 => 8,
            Type::I16 => 16,
            Type::I32 | Type::F32 => 32,
            Type::I64 | Type::F64 | Type::Ptr => 64,
        }
    }

    /// True for `I1`..`I64`.
    pub fn is_int(self) -> bool {
        matches!(self, Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64)
    }

    /// True for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// True for `Ptr`.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Mask selecting the significant low bits of a canonical `u64` value.
    pub fn mask(self) -> u64 {
        match self.bits() {
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Truncate a raw 64-bit pattern to this type's canonical form
    /// (zero-extended significant bits).
    pub fn canon(self, raw: u64) -> u64 {
        raw & self.mask()
    }

    /// Sign-extend the canonical value of this type to `i64`.
    pub fn sext(self, canon: u64) -> i64 {
        let b = self.bits();
        if b == 64 {
            canon as i64
        } else {
            let shift = 64 - b;
            ((canon << shift) as i64) >> shift
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_bits() {
        assert_eq!(Type::I1.size(), 1);
        assert_eq!(Type::I8.size(), 1);
        assert_eq!(Type::I16.size(), 2);
        assert_eq!(Type::I32.size(), 4);
        assert_eq!(Type::I64.size(), 8);
        assert_eq!(Type::F32.size(), 4);
        assert_eq!(Type::F64.size(), 8);
        assert_eq!(Type::Ptr.size(), 8);
        assert_eq!(Type::I1.bits(), 1);
        assert_eq!(Type::Ptr.bits(), 64);
    }

    #[test]
    fn canon_masks_high_bits() {
        assert_eq!(Type::I8.canon(0x1_FF), 0xFF);
        assert_eq!(Type::I1.canon(3), 1);
        assert_eq!(Type::I32.canon(u64::MAX), 0xFFFF_FFFF);
        assert_eq!(Type::I64.canon(u64::MAX), u64::MAX);
    }

    #[test]
    fn sext_round_trips_sign() {
        assert_eq!(Type::I8.sext(0xFF), -1);
        assert_eq!(Type::I8.sext(0x7F), 127);
        assert_eq!(Type::I32.sext(0xFFFF_FFFF), -1);
        assert_eq!(Type::I32.sext(5), 5);
        assert_eq!(Type::I64.sext(u64::MAX), -1);
        assert_eq!(Type::I1.sext(1), -1);
    }

    #[test]
    fn display_matches_llvm_flavor() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::F64.to_string(), "f64");
        assert_eq!(Type::Ptr.to_string(), "ptr");
    }
}
