//! Parser for the textual IR produced by [`crate::printer`], enabling
//! print/parse round-trips for tooling, golden tests and hand-written IR
//! fixtures.
//!
//! The accepted grammar is exactly what the printer emits (one instruction
//! per line, `; ...` comments ignored), not a general assembler.

use crate::inst::{BinOp, Callee, CastKind, FPred, IPred, InstData, InstKind, Intrinsic, IrRole, Terminator};
use crate::module::{Function, Global, GlobalInit, Module};
use crate::types::Type;
use crate::value::{BlockId, FuncId, GlobalId, InstId, Op};
use crate::Const;
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, msg: msg.into() })
}

/// Parse a module from printer-format text.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new("parsed");
    // Pass 1: collect function names so calls can resolve forward.
    let mut func_names: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if let Some(rest) = line.strip_prefix("define ") {
            let name = rest
                .split('@')
                .nth(1)
                .and_then(|s| s.split('(').next())
                .unwrap_or("")
                .to_string();
            func_names.push(name);
        }
    }

    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if line.starts_with('@') {
            module.add_global(parse_global(&line, lineno)?);
        } else if line.starts_with("define ") {
            let (func, consumed) = parse_function(&lines, i - 1, &func_names, &module)?;
            module.add_function(func);
            i = consumed;
        } else if line.starts_with("; module") {
            module.name = line.trim_start_matches("; module").trim().to_string();
        } else {
            return err(lineno, format!("unexpected top-level line: {line}"));
        }
    }
    Ok(module)
}

fn strip_comment(s: &str) -> &str {
    // `; module` headers are handled before stripping; everything after a
    // bare `;` is a comment.
    if s.trim_start().starts_with("; module") {
        return s;
    }
    match s.find(';') {
        Some(p) => &s[..p],
        None => s,
    }
}

fn parse_type(s: &str, line: usize) -> Result<Type, ParseError> {
    match s {
        "i1" => Ok(Type::I1),
        "i8" => Ok(Type::I8),
        "i16" => Ok(Type::I16),
        "i32" => Ok(Type::I32),
        "i64" => Ok(Type::I64),
        "f32" => Ok(Type::F32),
        "f64" => Ok(Type::F64),
        "ptr" => Ok(Type::Ptr),
        other => err(line, format!("unknown type '{other}'")),
    }
}

/// `@name = global [N x ty] zeroinitializer | [v, v, ...]`
fn parse_global(line: &str, lineno: usize) -> Result<Global, ParseError> {
    let (lhs, rhs) = line
        .split_once('=')
        .ok_or_else(|| ParseError { line: lineno, msg: "expected '=' in global".into() })?;
    let name = lhs.trim().trim_start_matches('@').to_string();
    let rhs = rhs
        .trim()
        .strip_prefix("global")
        .map(str::trim)
        .ok_or_else(|| ParseError { line: lineno, msg: "expected 'global'".into() })?;
    let open = rhs
        .find('[')
        .ok_or_else(|| ParseError { line: lineno, msg: "expected '['".into() })?;
    let close = rhs
        .find(']')
        .ok_or_else(|| ParseError { line: lineno, msg: "expected ']'".into() })?;
    let decl = &rhs[open + 1..close];
    let (count_s, ty_s) = decl
        .split_once(" x ")
        .ok_or_else(|| ParseError { line: lineno, msg: "expected 'N x ty'".into() })?;
    let count: u64 = count_s
        .trim()
        .parse()
        .map_err(|_| ParseError { line: lineno, msg: "bad count".into() })?;
    let elem = parse_type(ty_s.trim(), lineno)?;
    let init_s = rhs[close + 1..].trim();
    let init = if init_s == "zeroinitializer" {
        GlobalInit::Zero
    } else if init_s.starts_with('[') && init_s.ends_with(']') {
        let inner = &init_s[1..init_s.len() - 1];
        let vals: Result<Vec<u64>, _> = inner
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse::<u64>())
            .collect();
        GlobalInit::Elems(vals.map_err(|_| ParseError { line: lineno, msg: "bad initializer".into() })?)
    } else {
        return err(lineno, format!("bad global initializer '{init_s}'"));
    };
    Ok(Global { name, elem, count, init })
}

struct FuncParser<'a> {
    func_names: &'a [String],
    module: &'a Module,
    func: Function,
    /// Textual value id -> arena id.
    value_map: HashMap<u32, InstId>,
    /// Label -> block id (created on demand).
    label_map: HashMap<String, BlockId>,
}

fn parse_function(
    lines: &[&str],
    start: usize,
    func_names: &[String],
    module: &Module,
) -> Result<(Function, usize), ParseError> {
    let header = strip_comment(lines[start]).trim();
    let lineno = start + 1;
    // define <ret> @name(<ty> %argN, ...) {
    let rest = header.strip_prefix("define ").unwrap();
    let (ret_s, rest) = rest
        .split_once(" @")
        .ok_or_else(|| ParseError { line: lineno, msg: "bad define header".into() })?;
    let ret_ty = if ret_s.trim() == "void" {
        None
    } else {
        Some(parse_type(ret_s.trim(), lineno)?)
    };
    let name = rest
        .split('(')
        .next()
        .ok_or_else(|| ParseError { line: lineno, msg: "bad name".into() })?;
    let params_s = rest
        .split_once('(')
        .and_then(|(_, r)| r.rsplit_once(')'))
        .map(|(p, _)| p)
        .ok_or_else(|| ParseError { line: lineno, msg: "bad parameter list".into() })?;
    let mut params = Vec::new();
    for p in params_s.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let ty_s = p
            .split_whitespace()
            .next()
            .ok_or_else(|| ParseError { line: lineno, msg: "bad param".into() })?;
        params.push(parse_type(ty_s, lineno)?);
    }

    let mut fp = FuncParser {
        func_names,
        module,
        func: Function {
            name: name.to_string(),
            params,
            ret_ty,
            insts: Vec::new(),
            blocks: Vec::new(),
        },
        value_map: HashMap::new(),
        label_map: HashMap::new(),
    };

    let mut cur: Option<BlockId> = None;
    let mut i = start + 1;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            return Ok((fp.func, i));
        }
        if let Some(label) = line.strip_suffix(':') {
            cur = Some(fp.block(label));
            continue;
        }
        let Some(block) = cur else {
            return err(lineno, "instruction outside a block");
        };
        if let Some(term) = fp.try_parse_terminator(&line, lineno)? {
            fp.func.block_mut(block).term = term;
            continue;
        }
        let inst = fp.parse_inst(&line, lineno)?;
        fp.func.block_mut(block).insts.push(inst);
    }
    err(lineno_of(lines.len()), "unterminated function (missing '}')")
}

fn lineno_of(n: usize) -> usize {
    n
}

impl FuncParser<'_> {
    fn block(&mut self, label: &str) -> BlockId {
        if let Some(&b) = self.label_map.get(label) {
            return b;
        }
        let b = self.func.add_block(label);
        self.label_map.insert(label.to_string(), b);
        b
    }

    /// Parse an operand: `%argN`, `%N`, `@gN`, `ty const`, `ptr null`.
    fn operand(&mut self, s: &str, line: usize) -> Result<Op, ParseError> {
        let s = s.trim();
        if let Some(arg) = s.strip_prefix("%arg") {
            let n: u32 = arg.parse().map_err(|_| ParseError { line, msg: format!("bad param '{s}'") })?;
            return Ok(Op::param(n));
        }
        if let Some(v) = s.strip_prefix('%') {
            let n: u32 = v.parse().map_err(|_| ParseError { line, msg: format!("bad value '{s}'") })?;
            let id = self
                .value_map
                .get(&n)
                .copied()
                .ok_or_else(|| ParseError { line, msg: format!("use of undefined %{n}") })?;
            return Ok(Op::inst(id));
        }
        if let Some(g) = s.strip_prefix("@g") {
            let n: u32 = g.parse().map_err(|_| ParseError { line, msg: format!("bad global '{s}'") })?;
            return Ok(Op::Global(GlobalId(n)));
        }
        // Typed constant: `ty value`.
        let (ty_s, val_s) = s
            .split_once(' ')
            .ok_or_else(|| ParseError { line, msg: format!("bad operand '{s}'") })?;
        let ty = parse_type(ty_s, line)?;
        if ty == Type::Ptr {
            if val_s.trim() == "null" {
                return Ok(Op::Const(Const::NullPtr));
            }
            return err(line, format!("bad pointer constant '{val_s}'"));
        }
        if ty.is_float() {
            let v: f64 = val_s
                .trim()
                .parse()
                .map_err(|_| ParseError { line, msg: format!("bad float '{val_s}'") })?;
            return Ok(if ty == Type::F64 {
                Op::Const(Const::F64(v))
            } else {
                Op::Const(Const::F32(v as f32))
            });
        }
        let v: i64 = val_s
            .trim()
            .parse()
            .map_err(|_| ParseError { line, msg: format!("bad integer '{val_s}'") })?;
        Ok(Op::cint(ty, v as u64))
    }

    fn try_parse_terminator(&mut self, line: &str, lineno: usize) -> Result<Option<Terminator>, ParseError> {
        if line == "unreachable" {
            return Ok(Some(Terminator::Unreachable));
        }
        if line == "ret void" {
            return Ok(Some(Terminator::Ret { val: None }));
        }
        if let Some(rest) = line.strip_prefix("ret ") {
            let val = self.operand(rest, lineno)?;
            return Ok(Some(Terminator::Ret { val: Some(val) }));
        }
        if let Some(rest) = line.strip_prefix("br label %") {
            let dest = self.block(rest.trim());
            return Ok(Some(Terminator::Jmp { dest }));
        }
        if let Some(rest) = line.strip_prefix("br ") {
            // br <op> , label %a, label %b
            let (cond_s, rest) = rest
                .split_once(", label %")
                .ok_or_else(|| ParseError { line: lineno, msg: "bad br".into() })?;
            let cond_s = cond_s.trim().trim_end_matches(',').trim();
            let (then_s, else_s) = rest
                .split_once(", label %")
                .ok_or_else(|| ParseError { line: lineno, msg: "bad br targets".into() })?;
            let cond = self.operand(cond_s, lineno)?;
            let then_bb = self.block(then_s.trim());
            let else_bb = self.block(else_s.trim());
            return Ok(Some(Terminator::Br { cond, then_bb, else_bb }));
        }
        Ok(None)
    }

    fn define(&mut self, text_id: Option<u32>, kind: InstKind, role: IrRole) -> InstId {
        let id = self.func.add_inst(InstData { kind, role, dup_of: None });
        if let Some(t) = text_id {
            self.value_map.insert(t, id);
        }
        id
    }

    fn parse_inst(&mut self, line: &str, lineno: usize) -> Result<InstId, ParseError> {
        // Optional `%N = ` result prefix.
        let (text_id, body) = if line.starts_with('%') {
            let (lhs, rhs) = line
                .split_once('=')
                .ok_or_else(|| ParseError { line: lineno, msg: "expected '='".into() })?;
            let n: u32 = lhs
                .trim()
                .trim_start_matches('%')
                .parse()
                .map_err(|_| ParseError { line: lineno, msg: "bad result id".into() })?;
            (Some(n), rhs.trim().to_string())
        } else {
            (None, line.to_string())
        };

        let (mnemonic, rest) = body.split_once(' ').unwrap_or((body.as_str(), ""));
        let rest = rest.trim();
        let kind = match mnemonic {
            "alloca" => {
                // alloca <ty> x <count>
                let (ty_s, count_s) = rest
                    .split_once(" x ")
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad alloca".into() })?;
                InstKind::Alloca {
                    elem: parse_type(ty_s.trim(), lineno)?,
                    count: count_s
                        .trim()
                        .parse()
                        .map_err(|_| ParseError { line: lineno, msg: "bad count".into() })?,
                }
            }
            "load" => {
                // load <ty>, <ptr>
                let (ty_s, ptr_s) = rest
                    .split_once(',')
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad load".into() })?;
                InstKind::Load {
                    ty: parse_type(ty_s.trim(), lineno)?,
                    ptr: self.operand(ptr_s, lineno)?,
                }
            }
            "store" => {
                // store <ty> <val>, <ptr>
                let (ty_s, rest2) = rest
                    .split_once(' ')
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad store".into() })?;
                let ty = parse_type(ty_s.trim(), lineno)?;
                let (val_s, ptr_s) = split_top_level(rest2)
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad store operands".into() })?;
                let val = self.typed_or_plain(&val_s, ty, lineno)?;
                InstKind::Store { ty, val, ptr: self.operand(&ptr_s, lineno)? }
            }
            "icmp" | "fcmp" => {
                // icmp <pred> <ty> <a>, <b>
                let mut it = rest.splitn(3, ' ');
                let pred_s = it.next().unwrap_or("");
                let ty_s = it.next().unwrap_or("");
                let ops = it.next().unwrap_or("");
                let ty = parse_type(ty_s, lineno)?;
                let (a_s, b_s) =
                    split_top_level(ops).ok_or_else(|| ParseError { line: lineno, msg: "bad compare".into() })?;
                let lhs = self.typed_or_plain(&a_s, ty, lineno)?;
                let rhs = self.typed_or_plain(&b_s, ty, lineno)?;
                if mnemonic == "icmp" {
                    InstKind::ICmp { pred: parse_ipred(pred_s, lineno)?, ty, lhs, rhs }
                } else {
                    InstKind::FCmp { pred: parse_fpred(pred_s, lineno)?, ty, lhs, rhs }
                }
            }
            "gep" => {
                // gep <elem>, <base>, <index>
                let mut parts = rest.splitn(2, ',');
                let elem = parse_type(parts.next().unwrap_or("").trim(), lineno)?;
                let ops = parts.next().unwrap_or("");
                let (base_s, idx_s) =
                    split_top_level(ops).ok_or_else(|| ParseError { line: lineno, msg: "bad gep".into() })?;
                InstKind::Gep {
                    elem,
                    base: self.operand(&base_s, lineno)?,
                    index: self.typed_or_plain(&idx_s, Type::I64, lineno)?,
                }
            }
            "select" => {
                // select <ty> <cond>, <t>, <f>
                let (ty_s, ops) = rest
                    .split_once(' ')
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad select".into() })?;
                let ty = parse_type(ty_s, lineno)?;
                let (cond_s, rest2) =
                    split_top_level(ops).ok_or_else(|| ParseError { line: lineno, msg: "bad select".into() })?;
                let (t_s, f_s) =
                    split_top_level(&rest2).ok_or_else(|| ParseError { line: lineno, msg: "bad select".into() })?;
                InstKind::Select {
                    ty,
                    cond: self.operand(&cond_s, lineno)?,
                    t: self.typed_or_plain(&t_s, ty, lineno)?,
                    f: self.typed_or_plain(&f_s, ty, lineno)?,
                }
            }
            "call" => {
                // call @name(op, op, ...)
                let name = rest
                    .trim_start_matches('@')
                    .split('(')
                    .next()
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad call".into() })?;
                let args_s = rest
                    .split_once('(')
                    .and_then(|(_, r)| r.rsplit_once(')'))
                    .map(|(a, _)| a)
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad call args".into() })?;
                let mut args = Vec::new();
                let mut remaining = args_s.trim().to_string();
                while !remaining.is_empty() {
                    match split_top_level(&remaining) {
                        Some((head, tail)) => {
                            args.push(self.operand(&head, lineno)?);
                            remaining = tail;
                        }
                        None => {
                            args.push(self.operand(&remaining, lineno)?);
                            break;
                        }
                    }
                }
                let callee = if let Some(intr) = intrinsic_by_name(name) {
                    Callee::Intrinsic(intr)
                } else if let Some(fi) = self.func_names.iter().position(|n| n == name) {
                    Callee::Func(FuncId(fi as u32))
                } else if let Some(fi) = self.module.find_func(name) {
                    Callee::Func(fi)
                } else {
                    return err(lineno, format!("unknown callee '@{name}'"));
                };
                InstKind::Call { callee, args }
            }
            cast @ ("zext" | "sext" | "trunc" | "sitofp" | "fptosi" | "fpcast" | "bitcast") => {
                // <cast> <val> : <from> -> <to>
                let (val_s, types) = rest
                    .split_once(':')
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad cast".into() })?;
                let (from_s, to_s) = types
                    .split_once("->")
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad cast types".into() })?;
                let kind = match cast {
                    "zext" => CastKind::Zext,
                    "sext" => CastKind::Sext,
                    "trunc" => CastKind::Trunc,
                    "sitofp" => CastKind::SiToFp,
                    "fptosi" => CastKind::FpToSi,
                    "fpcast" => CastKind::FpCast,
                    _ => CastKind::Bitcast,
                };
                let from = parse_type(from_s.trim(), lineno)?;
                InstKind::Cast {
                    kind,
                    from,
                    to: parse_type(to_s.trim(), lineno)?,
                    val: self.typed_or_plain(val_s.trim(), from, lineno)?,
                }
            }
            bin => {
                // <binop> <ty> <a>, <b>
                let op = parse_binop(bin, lineno)?;
                let (ty_s, ops) = rest
                    .split_once(' ')
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad binop".into() })?;
                let ty = parse_type(ty_s, lineno)?;
                let (a_s, b_s) = split_top_level(ops)
                    .ok_or_else(|| ParseError { line: lineno, msg: "bad binop operands".into() })?;
                InstKind::Bin {
                    op,
                    ty,
                    lhs: self.typed_or_plain(&a_s, ty, lineno)?,
                    rhs: self.typed_or_plain(&b_s, ty, lineno)?,
                }
            }
        };
        Ok(self.define(text_id, kind, IrRole::App))
    }

    /// Operand that may be a bare number (context type known) or any
    /// normal operand.
    fn typed_or_plain(&mut self, s: &str, ty: Type, line: usize) -> Result<Op, ParseError> {
        let s = s.trim();
        if s.starts_with('%') || s.starts_with('@') || s.contains(' ') {
            return self.operand(s, line);
        }
        // Bare literal with contextual type.
        if ty.is_float() {
            let v: f64 = s.parse().map_err(|_| ParseError { line, msg: format!("bad float '{s}'") })?;
            return Ok(if ty == Type::F64 {
                Op::Const(Const::F64(v))
            } else {
                Op::Const(Const::F32(v as f32))
            });
        }
        let v: i64 = s.parse().map_err(|_| ParseError { line, msg: format!("bad literal '{s}'") })?;
        Ok(Op::cint(ty, v as u64))
    }
}

/// Split `"a, b"` at the first top-level comma.
fn split_top_level(s: &str) -> Option<(String, String)> {
    let p = s.find(',')?;
    Some((s[..p].trim().to_string(), s[p + 1..].trim().to_string()))
}

fn parse_ipred(s: &str, line: usize) -> Result<IPred, ParseError> {
    Ok(match s {
        "eq" => IPred::Eq,
        "ne" => IPred::Ne,
        "slt" => IPred::Slt,
        "sle" => IPred::Sle,
        "sgt" => IPred::Sgt,
        "sge" => IPred::Sge,
        "ult" => IPred::Ult,
        "ule" => IPred::Ule,
        "ugt" => IPred::Ugt,
        "uge" => IPred::Uge,
        other => return err(line, format!("unknown icmp predicate '{other}'")),
    })
}

fn parse_fpred(s: &str, line: usize) -> Result<FPred, ParseError> {
    Ok(match s {
        "oeq" => FPred::Oeq,
        "one" => FPred::One,
        "olt" => FPred::Olt,
        "ole" => FPred::Ole,
        "ogt" => FPred::Ogt,
        "oge" => FPred::Oge,
        other => return err(line, format!("unknown fcmp predicate '{other}'")),
    })
}

fn parse_binop(s: &str, line: usize) -> Result<BinOp, ParseError> {
    Ok(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "sdiv" => BinOp::SDiv,
        "udiv" => BinOp::UDiv,
        "srem" => BinOp::SRem,
        "urem" => BinOp::URem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "lshr" => BinOp::LShr,
        "ashr" => BinOp::AShr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        other => return err(line, format!("unknown instruction '{other}'")),
    })
}

fn intrinsic_by_name(name: &str) -> Option<Intrinsic> {
    Some(match name {
        "output_i64" => Intrinsic::OutputI64,
        "output_f64" => Intrinsic::OutputF64,
        "output_byte" => Intrinsic::OutputByte,
        "detect_error" => Intrinsic::DetectError,
        "sqrt" => Intrinsic::Sqrt,
        "sin" => Intrinsic::Sin,
        "cos" => Intrinsic::Cos,
        "exp" => Intrinsic::Exp,
        "log" => Intrinsic::Log,
        "fabs" => Intrinsic::Fabs,
        "floor" => Intrinsic::Floor,
        "pow" => Intrinsic::Pow,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ExecConfig, Interpreter};
    use crate::printer::print_module;
    use crate::verify::verify_module;

    fn round_trip(m: &Module) -> Module {
        let text = print_module(m);
        parse_module(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"))
    }

    #[test]
    fn round_trips_handwritten_text() {
        let text = "\
; module demo
@counts = global [4 x i64] [1, 2, 3, 4]
@buf = global [8 x i8] zeroinitializer

define i64 @main() {
entry:
  %0 = gep i64, @g0, i64 2
  %1 = load i64, %0
  %2 = add i64 %1, i64 39
  call @output_i64(%2)
  ret %2
}
";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(r.status, crate::interp::ExecStatus::Completed(42));
    }

    #[test]
    fn print_parse_round_trip_preserves_behaviour() {
        // Build a program with every construct via the builder.
        use crate::builder::{FuncBuilder, ModuleBuilder};
        let mut mb = ModuleBuilder::new("rt");
        let g = mb.global_i64("data", &[5, 10, 15]);
        let helper = mb.declare_func("helper", vec![Type::I64, Type::F64], Some(Type::F64));
        let mut fb = FuncBuilder::new("helper", vec![Type::I64, Type::F64], Some(Type::F64));
        let c = fb.cast(CastKind::SiToFp, Type::I64, Type::F64, Op::param(0));
        let s = fb.bin(BinOp::FMul, Type::F64, Op::inst(c), Op::param(1));
        let q = fb.intrinsic(Intrinsic::Sqrt, vec![Op::inst(s)]);
        fb.ret(Some(Op::inst(q)));
        mb.define_func(helper, fb.finish());

        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let a = fb.alloca(Type::I64, 2);
        let p = fb.gep(Op::Global(g), Op::ci64(1), Type::I64);
        let v = fb.load(Type::I64, Op::inst(p));
        fb.store(Type::I64, Op::inst(v), Op::inst(a));
        let cnd = fb.icmp(IPred::Sgt, Type::I64, Op::inst(v), Op::ci64(3));
        let t = fb.new_block("bigger");
        let e = fb.new_block("smaller");
        fb.br(Op::inst(cnd), t, e);
        fb.switch_to(t);
        let h = fb.call(helper, vec![Op::inst(v), Op::cf64(2.5)]);
        let sel = fb.select(Type::F64, Op::inst(cnd), Op::inst(h), Op::cf64(0.0));
        fb.output_f64(Op::inst(sel));
        fb.ret(Some(Op::ci64(1)));
        fb.switch_to(e);
        fb.ret(Some(Op::ci64(0)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        verify_module(&m).unwrap();

        let m2 = round_trip(&m);
        verify_module(&m2).unwrap();
        let r1 = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let r2 = Interpreter::new(&m2).run(&ExecConfig::default(), None);
        assert_eq!(r1.status, r2.status);
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.dyn_insts, r2.dyn_insts);
    }

    #[test]
    fn round_trips_every_workload_shape() {
        // The frontend exercises the full construct set; round-trip a
        // representative compiled program.
        use crate::builder::ModuleBuilder;
        let _ = ModuleBuilder::new("x"); // keep import balance
        let src = "\
define void @noop() {
entry:
  ret void
}

define i64 @main() {
entry:
  %0 = alloca i64 x 1
  store i64 7, %0
  %2 = load i64, %0
  %3 = srem i64 %2, i64 3
  %4 = shl i64 %3, i64 2
  %5 = xor i64 %4, i64 15
  call @noop()
  ret %5
}
";
        let m = parse_module(src).unwrap();
        verify_module(&m).unwrap();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(r.status, crate::interp::ExecStatus::Completed((1 << 2) ^ 15));
        // And a second round trip through the printer.
        let m2 = round_trip(&m);
        let r2 = Interpreter::new(&m2).run(&ExecConfig::default(), None);
        assert_eq!(r2.status, r.status);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "define i64 @main() {\nentry:\n  %0 = frobnicate i64 1, i64 2\n  ret %0\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("frobnicate"), "{e}");
    }

    #[test]
    fn rejects_undefined_values_and_callees() {
        let bad = "define i64 @main() {\nentry:\n  ret %9\n}\n";
        assert!(parse_module(bad).unwrap_err().msg.contains("undefined"));
        let bad2 = "define void @main() {\nentry:\n  call @nothere()\n  ret void\n}\n";
        assert!(parse_module(bad2).unwrap_err().msg.contains("unknown callee"));
    }

    use crate::inst::{BinOp, CastKind, IPred, Intrinsic};
    use crate::value::Op;
}
