//! The IR interpreter ("LLVM level" in the paper's terminology).
//!
//! Executes a verified [`Module`](crate::module::Module) with:
//! - dynamic-instruction counting and per-static-instruction profiling,
//! - a program output stream (the SDC comparand),
//! - a single-bit fault-injection hook on instruction *results* — the exact
//!   LLFI-style fault model of the paper (§4.3): stores, branches and void
//!   calls produce no result and therefore are not IR-level fault sites.

pub mod memory;
pub mod ops;
pub mod snapshot;

mod eval;
mod prefix;
mod snapio;

pub use eval::Interpreter;
pub use memory::{Memory, TrapKind, GLOBAL_BASE, PAGE_SIZE};
pub use snapshot::{auto_interval, Cadence, IrScratch, IrSnapshotSet};

use crate::value::{FuncId, InstId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which execution engine runs machine-layer trials. The engines are
/// bit-identical by contract — every observable stream (status, output,
/// instruction/site/cycle counts, attribution, snapshots) matches exactly —
/// so the switch exists for performance, provenance, and differential
/// testing, never for results. The IR interpreter has a single engine and
/// ignores the selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// `interp` — the decode-and-dispatch interpreter (reference engine).
    Interp,
    /// `compiled` — the threaded-code executor: each instruction is
    /// pre-lowered to a specialized handler indexed by program position.
    #[default]
    Compiled,
}

impl ExecMode {
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Interp => "interp",
            ExecMode::Compiled => "compiled",
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecMode, String> {
        match s {
            "interp" => Ok(ExecMode::Interp),
            "compiled" => Ok(ExecMode::Compiled),
            other => Err(format!("unknown executor `{other}` (known: interp, compiled)")),
        }
    }
}

impl Serialize for ExecMode {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for ExecMode {
    fn deserialize_value(v: &serde::Value) -> Result<ExecMode, serde::Error> {
        let s = v.as_str().ok_or_else(|| serde::Error::expected("executor string", v))?;
        s.parse().map_err(serde::Error)
    }
}

/// Execution limits and switches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Total memory image size in bytes.
    pub mem_size: u64,
    /// Stack reservation at the top of memory.
    pub stack_size: u64,
    /// Hard dynamic-instruction budget; exceeding it traps with
    /// [`TrapKind::InstLimit`] (fault-induced livelock -> DUE).
    pub max_dyn_insts: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Maximum output bytes before [`TrapKind::OutputFlood`].
    pub max_output: usize,
    /// Collect per-static-instruction execution counts.
    pub profile: bool,
    /// Byte budget for one snapshot set's page overlays. While a capture
    /// run's live overlay bytes exceed this, the recorder doubles its
    /// cadence and drops every other snapshot, trading fast-forward
    /// granularity for memory. `None` = unbounded.
    pub snapshot_budget: Option<u64>,
    /// Machine-layer execution engine. Results are bit-identical across
    /// engines; defaults to the threaded-code executor.
    #[serde(default)]
    pub executor: ExecMode,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            mem_size: 4 << 20,
            stack_size: 1 << 20,
            max_dyn_insts: 200_000_000,
            max_call_depth: 512,
            max_output: 1 << 20,
            profile: false,
            snapshot_budget: None,
            executor: ExecMode::default(),
        }
    }
}

impl ExecConfig {
    /// Budget relative to a known fault-free dynamic instruction count:
    /// generous enough to never clip healthy runs, tight enough to catch
    /// fault-induced livelock quickly.
    pub fn with_budget_for(golden_dyn_insts: u64) -> ExecConfig {
        ExecConfig {
            max_dyn_insts: golden_dyn_insts.saturating_mul(4).max(100_000),
            ..Default::default()
        }
    }
}

/// What a fault does when its site is reached. All effects apply *at* the
/// fault site and depend only on machine state at that point, which is
/// what keeps snapshot fast-forward bit-identical to scratch execution
/// for every model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEffect {
    /// Flip the spec's bit (plus the optional second bit) in the
    /// instruction's destination — the classic LLFI/PIN datapath model.
    #[default]
    Bits,
    /// Flip `width` adjacent bits starting at the spec's bit (multi-bit
    /// upset / burst error).
    Burst { width: u8 },
    /// Corrupt condition state: at the IR level the result's low bit (the
    /// bit branches consume), at the assembly level the condition flags.
    Flags,
    /// Flip one bit of a memory cell at a deterministic address derived
    /// from `offset` (globals segment when present, else the stack
    /// segment). The instruction's own result is left intact.
    Mem { offset: u64 },
    /// Control-flow edge corruption: after the site executes, redirect
    /// control to a deterministic target derived from `target` (a block
    /// of the current function at the IR level, an absolute program index
    /// at the assembly level).
    Jump { target: u64 },
}

/// A fault to inject during one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Zero-based index among *fault sites* (dynamic instructions that write
    /// a result). When the counter reaches this index the result is
    /// corrupted.
    pub site_index: u64,
    /// Bit position to flip; taken modulo the destination width.
    pub bit: u32,
    /// Optional second bit for the multi-bit fault model the paper lists
    /// as emerging (§2.2); `None` = the standard single-bit model.
    pub second_bit: Option<u32>,
    /// What happens at the site. Defaults to [`FaultEffect::Bits`], the
    /// pre-existing single/double-bit destination flip.
    #[serde(default)]
    pub effect: FaultEffect,
    /// Region-scoped injection: when set, `site_index` counts only fault
    /// sites executed *inside this function* (a region-local index over
    /// `[0, region site mass)`), instead of all sites. Used by the
    /// incremental engine to re-sample one region directly. Scoped trials
    /// always start from scratch — snapshot restore points are keyed by
    /// the global site counter.
    #[serde(default)]
    pub scope: Option<crate::value::FuncId>,
}

impl FaultSpec {
    /// The standard single-bit fault.
    pub fn single(site_index: u64, bit: u32) -> FaultSpec {
        FaultSpec {
            site_index,
            bit,
            second_bit: None,
            effect: FaultEffect::Bits,
            scope: None,
        }
    }

    /// A double-bit fault in the same destination.
    pub fn double(site_index: u64, bit: u32, second: u32) -> FaultSpec {
        FaultSpec {
            site_index,
            bit,
            second_bit: Some(second),
            effect: FaultEffect::Bits,
            scope: None,
        }
    }

    /// A fault with an explicit effect.
    pub fn with_effect(site_index: u64, bit: u32, effect: FaultEffect) -> FaultSpec {
        FaultSpec { site_index, bit, second_bit: None, effect, scope: None }
    }

    /// The same fault, restricted to sites inside `func`.
    pub fn scoped(mut self, func: crate::value::FuncId) -> FaultSpec {
        self.scope = Some(func);
        self
    }
}

/// How an execution finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecStatus {
    /// Ran to completion; payload is `main`'s return value (canonical bits).
    Completed(u64),
    /// A duplication checker caught the error (`detect_error` fired).
    Detected,
    /// Abnormal termination (the paper's DUE class).
    Trapped(TrapKind),
}

impl ExecStatus {
    pub fn is_completed(self) -> bool {
        matches!(self, ExecStatus::Completed(_))
    }
}

/// Per-static-instruction dynamic execution counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// `counts[func][inst]` = number of executions of that instruction.
    pub counts: Vec<Vec<u64>>,
}

impl Profile {
    pub fn count(&self, f: FuncId, i: InstId) -> u64 {
        self.counts.get(f.index()).and_then(|v| v.get(i.index())).copied().unwrap_or(0)
    }
}

/// The result of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecResult {
    pub status: ExecStatus,
    /// Tagged output records; byte-compared against the golden run to
    /// classify SDCs.
    pub output: Vec<u8>,
    /// All executed instructions, terminators included (Table 1's DI count).
    pub dyn_insts: u64,
    /// Executed instructions that wrote a result (= IR-level fault sites).
    pub fault_sites: u64,
    /// Where the fault (if any) actually landed.
    pub injected_at: Option<(FuncId, InstId)>,
    /// Present when profiling was requested.
    pub profile: Option<Profile>,
}

impl ExecResult {
    /// True if this run completed with output identical to `golden`.
    pub fn matches_output(&self, golden: &ExecResult) -> bool {
        self.status == golden.status && self.output == golden.output
    }
}

/// Output record tags.
pub(crate) const TAG_I64: u8 = 1;
pub(crate) const TAG_F64: u8 = 2;
pub(crate) const TAG_BYTE: u8 = 3;

/// Decode an output stream into a human-readable form (examples/debugging).
pub fn decode_output(bytes: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            TAG_I64 if i + 9 <= bytes.len() => {
                let v = i64::from_le_bytes(bytes[i + 1..i + 9].try_into().unwrap());
                out.push(format!("i64:{v}"));
                i += 9;
            }
            TAG_F64 if i + 9 <= bytes.len() => {
                let v = f64::from_bits(u64::from_le_bytes(bytes[i + 1..i + 9].try_into().unwrap()));
                out.push(format!("f64:{v}"));
                i += 9;
            }
            TAG_BYTE if i + 2 <= bytes.len() => {
                out.push(format!("byte:{}", bytes[i + 1]));
                i += 2;
            }
            _ => {
                out.push(format!("?:{}", bytes[i]));
                i += 1;
            }
        }
    }
    out
}
