//! Stable binary serialization for [`IrSnapshotSet`] — persisted next to a
//! campaign checkpoint so `--resume` skips the capture runs.
//!
//! Format (all integers little-endian):
//!
//! ```text
//!   magic "FLSNAPIR" | version u32 | module_hash u64
//!   mem_size u64 | stack_size u64            (base image is rebuilt, not stored)
//!   cadence tag u8 + value u64 | shared_snaps u64
//!   golden ExecResult | block_entry option | snapshot count u64
//!   per snapshot: counters, stack frames, optional profile, page DELTA
//!   fnv1a-64 checksum over everything above
//! ```
//!
//! Page overlays are cumulative and `Arc`-shared across snapshots, so each
//! snapshot stores only the pages whose `Arc` differs from the predecessor's
//! entry; the loader rebuilds each overlay as `prev.clone()` plus the delta,
//! which round-trips the sharing structure without duplicating pages.
//!
//! Loading never panics on bad input: the checksum is verified before any
//! parsing, and every length/index is validated against the module.

use crate::interp::eval::Frame;
use crate::interp::memory::{Memory, PageMap, TrapKind, GLOBAL_BASE};
use crate::interp::snapshot::{Cadence, IrSnapshot, IrSnapshotSet};
use crate::interp::{ExecResult, ExecStatus, Profile};
use crate::module::Module;
use crate::value::{BlockId, FuncId, InstId};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"FLSNAPIR";
const VERSION: u32 = 1;

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- writer helpers -------------------------------------------------------

fn w_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn w_bytes(w: &mut Vec<u8>, b: &[u8]) {
    w_u64(w, b.len() as u64);
    w.extend_from_slice(b);
}

fn w_u64s(w: &mut Vec<u8>, vs: &[u64]) {
    w_u64(w, vs.len() as u64);
    for &v in vs {
        w_u64(w, v);
    }
}

fn trap_code(t: TrapKind) -> u8 {
    match t {
        TrapKind::OobLoad => 0,
        TrapKind::OobStore => 1,
        TrapKind::DivFault => 2,
        TrapKind::InstLimit => 3,
        TrapKind::CallDepth => 4,
        TrapKind::StackOverflow => 5,
        TrapKind::BadControl => 6,
        TrapKind::OutputFlood => 7,
    }
}

fn trap_from(c: u8) -> Result<TrapKind, String> {
    Ok(match c {
        0 => TrapKind::OobLoad,
        1 => TrapKind::OobStore,
        2 => TrapKind::DivFault,
        3 => TrapKind::InstLimit,
        4 => TrapKind::CallDepth,
        5 => TrapKind::StackOverflow,
        6 => TrapKind::BadControl,
        7 => TrapKind::OutputFlood,
        _ => return Err(format!("snapshot file: unknown trap kind {c}")),
    })
}

fn write_profile(w: &mut Vec<u8>, p: Option<&Profile>) {
    match p {
        None => w.push(0),
        Some(p) => {
            w.push(1);
            w_u64(w, p.counts.len() as u64);
            for v in &p.counts {
                w_u64s(w, v);
            }
        }
    }
}

fn write_result(w: &mut Vec<u8>, r: &ExecResult) {
    match r.status {
        ExecStatus::Completed(v) => {
            w.push(0);
            w_u64(w, v);
        }
        ExecStatus::Detected => w.push(1),
        ExecStatus::Trapped(t) => {
            w.push(2);
            w.push(trap_code(t));
        }
    }
    w_bytes(w, &r.output);
    w_u64(w, r.dyn_insts);
    w_u64(w, r.fault_sites);
    match r.injected_at {
        None => w.push(0),
        Some((f, i)) => {
            w.push(1);
            w_u32(w, f.0);
            w_u32(w, i.0);
        }
    }
    write_profile(w, r.profile.as_ref());
}

// ---- reader ---------------------------------------------------------------

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.b.len() - self.pos < n {
            return Err("snapshot file: truncated".into());
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A count of items that each occupy at least `elem` bytes — bounds the
    /// allocation a corrupt length field could otherwise trigger.
    fn count(&mut self, elem: usize) -> Result<usize, String> {
        let n = self.u64()?;
        let remaining = (self.b.len() - self.pos) as u64;
        if n.saturating_mul(elem as u64) > remaining {
            return Err("snapshot file: length field exceeds file size".into());
        }
        Ok(n as usize)
    }

    fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }
}

fn read_profile(c: &mut Cursor, m: &Module) -> Result<Option<Profile>, String> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let n = c.count(8)?;
            if n != m.functions.len() {
                return Err("snapshot file: profile shape does not match module".into());
            }
            let mut counts = Vec::with_capacity(n);
            for f in &m.functions {
                let v = c.u64s()?;
                if v.len() != f.insts.len() {
                    return Err("snapshot file: profile shape does not match module".into());
                }
                counts.push(v);
            }
            Ok(Some(Profile { counts }))
        }
        t => Err(format!("snapshot file: bad profile tag {t}")),
    }
}

fn read_result(c: &mut Cursor, m: &Module) -> Result<ExecResult, String> {
    let status = match c.u8()? {
        0 => ExecStatus::Completed(c.u64()?),
        1 => ExecStatus::Detected,
        2 => ExecStatus::Trapped(trap_from(c.u8()?)?),
        t => return Err(format!("snapshot file: bad status tag {t}")),
    };
    let output = c.bytes()?;
    let dyn_insts = c.u64()?;
    let fault_sites = c.u64()?;
    let injected_at = match c.u8()? {
        0 => None,
        1 => Some((FuncId(c.u32()?), InstId(c.u32()?))),
        t => return Err(format!("snapshot file: bad injected_at tag {t}")),
    };
    let profile = read_profile(c, m)?;
    Ok(ExecResult { status, output, dyn_insts, fault_sites, injected_at, profile })
}

fn read_frame(c: &mut Cursor, m: &Module) -> Result<Frame, String> {
    let func = FuncId(c.u32()?);
    let block = BlockId(c.u32()?);
    let ip = c.u64()? as usize;
    let saved_sp = c.u64()?;
    let ret_dest = match c.u8()? {
        0 => None,
        1 => Some(InstId(c.u32()?)),
        t => return Err(format!("snapshot file: bad ret_dest tag {t}")),
    };
    let values = c.u64s()?;
    let params = c.u64s()?;
    let f = m
        .functions
        .get(func.index())
        .ok_or_else(|| "snapshot file: frame function out of range".to_string())?;
    let b = f
        .blocks
        .get(block.index())
        .ok_or_else(|| "snapshot file: frame block out of range".to_string())?;
    if ip > b.insts.len() || values.len() != f.insts.len() {
        return Err("snapshot file: frame shape does not match module".into());
    }
    Ok(Frame { func, block, ip, values, params, saved_sp, ret_dest })
}

impl IrSnapshotSet {
    /// Serialize to the stable on-disk format. `module_hash` is the content
    /// hash of the module this set was captured from; the loader refuses a
    /// file whose hash does not match.
    pub fn to_bytes(&self, module_hash: u64) -> Vec<u8> {
        let mut w = Vec::new();
        w.extend_from_slice(MAGIC);
        w_u32(&mut w, VERSION);
        w_u64(&mut w, module_hash);
        w_u64(&mut w, self.base.size());
        w_u64(&mut w, self.base.size() - self.base.stack_limit());
        match self.cadence {
            Cadence::Insts(k) => {
                w.push(0);
                w_u64(&mut w, k);
            }
            Cadence::Sites(k) => {
                w.push(1);
                w_u64(&mut w, k);
            }
        }
        w_u64(&mut w, self.shared_snaps as u64);
        write_result(&mut w, &self.golden);
        match &self.block_entry {
            None => w.push(0),
            Some(e) => {
                w.push(1);
                w_u64(&mut w, e.len() as u64);
                for v in e {
                    w_u64s(&mut w, v);
                }
            }
        }
        w_u64(&mut w, self.snaps.len() as u64);
        let mut prev: Option<&PageMap> = None;
        for s in &self.snaps {
            w_u64(&mut w, s.dyn_insts);
            w_u64(&mut w, s.fault_sites);
            w_u64(&mut w, s.sp);
            w_u64(&mut w, s.output_len as u64);
            w_u64(&mut w, s.stack.len() as u64);
            for f in &s.stack {
                w_u32(&mut w, f.func.0);
                w_u32(&mut w, f.block.0);
                w_u64(&mut w, f.ip as u64);
                w_u64(&mut w, f.saved_sp);
                match f.ret_dest {
                    None => w.push(0),
                    Some(i) => {
                        w.push(1);
                        w_u32(&mut w, i.0);
                    }
                }
                w_u64s(&mut w, &f.values);
                w_u64s(&mut w, &f.params);
            }
            write_profile(&mut w, s.profile.as_ref());
            // Overlays only grow; encode the pages whose Arc is new.
            debug_assert!(prev.is_none_or(|p| p.keys().all(|k| s.pages.contains_key(k))));
            let mut delta: Vec<(u32, &Arc<[u8]>)> = s
                .pages
                .iter()
                .filter(|(k, v)| prev.and_then(|p| p.get(k)).is_none_or(|pv| !Arc::ptr_eq(pv, v)))
                .map(|(k, v)| (*k, v))
                .collect();
            delta.sort_unstable_by_key(|(k, _)| *k);
            w_u64(&mut w, delta.len() as u64);
            for (k, v) in delta {
                w_u32(&mut w, k);
                w_u32(&mut w, v.len() as u32);
                w.extend_from_slice(v);
            }
            prev = Some(&s.pages);
        }
        let c = fnv1a(&w);
        w_u64(&mut w, c);
        w
    }

    /// Deserialize a set previously written by [`IrSnapshotSet::to_bytes`]
    /// for the same module. Rejects corrupt, truncated, version-mismatched,
    /// or wrong-module files with a descriptive error — never panics.
    pub fn from_bytes(bytes: &[u8], module: &Module, module_hash: u64) -> Result<IrSnapshotSet, String> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err("snapshot file: truncated".into());
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err("snapshot file: checksum mismatch (corrupt or truncated)".into());
        }
        let mut c = Cursor { b: body, pos: 0 };
        if c.take(MAGIC.len())? != MAGIC {
            return Err("snapshot file: bad magic (not an IR snapshot set)".into());
        }
        let version = c.u32()?;
        if version != VERSION {
            return Err(format!("snapshot file: unsupported format version {version} (expected {VERSION})"));
        }
        let hash = c.u64()?;
        if hash != module_hash {
            return Err("snapshot file: module content hash mismatch".into());
        }
        let mem_size = c.u64()?;
        let stack_size = c.u64()?;
        if stack_size > mem_size || mem_size < GLOBAL_BASE + stack_size + 0x1000 {
            return Err("snapshot file: implausible memory geometry".into());
        }
        let cadence = match c.u8()? {
            0 => Cadence::Insts(c.u64()?),
            1 => Cadence::Sites(c.u64()?),
            t => return Err(format!("snapshot file: bad cadence tag {t}")),
        };
        if cadence.value() == 0 {
            return Err("snapshot file: zero cadence".into());
        }
        let shared_snaps = c.u64()? as usize;
        let golden = read_result(&mut c, module)?;
        let block_entry = match c.u8()? {
            0 => None,
            1 => {
                let n = c.count(8)?;
                if n != module.functions.len() {
                    return Err("snapshot file: block-entry shape does not match module".into());
                }
                let mut e = Vec::with_capacity(n);
                for f in &module.functions {
                    let v = c.u64s()?;
                    if v.len() != f.blocks.len() {
                        return Err("snapshot file: block-entry shape does not match module".into());
                    }
                    e.push(v);
                }
                Some(e)
            }
            t => return Err(format!("snapshot file: bad block-entry tag {t}")),
        };
        let base = Memory::new(module, mem_size, stack_size);
        let n_snaps = c.count(8)?;
        let mut snaps = Vec::with_capacity(n_snaps);
        let mut prev = PageMap::new();
        for _ in 0..n_snaps {
            let dyn_insts = c.u64()?;
            let fault_sites = c.u64()?;
            let sp = c.u64()?;
            let output_len = c.u64()? as usize;
            if output_len > golden.output.len() {
                return Err("snapshot file: snapshot output length exceeds golden output".into());
            }
            let n_frames = c.count(1)?;
            let mut stack = Vec::with_capacity(n_frames);
            for _ in 0..n_frames {
                stack.push(read_frame(&mut c, module)?);
            }
            let profile = read_profile(&mut c, module)?;
            let n_delta = c.count(8)?;
            let mut pages = prev.clone();
            for _ in 0..n_delta {
                let page = c.u32()?;
                let len = c.u32()? as usize;
                if page >= base.page_count() || len != base.page_slice(page).len() {
                    return Err("snapshot file: bad page record".into());
                }
                let data: Arc<[u8]> = Arc::from(c.take(len)?);
                pages.insert(page, data);
            }
            prev = pages.clone();
            snaps.push(IrSnapshot {
                dyn_insts,
                fault_sites,
                sp,
                output_len,
                stack,
                profile,
                pages,
            });
        }
        if c.pos != body.len() {
            return Err("snapshot file: trailing garbage".into());
        }
        if shared_snaps > snaps.len() {
            return Err("snapshot file: shared_snaps exceeds snapshot count".into());
        }
        Ok(IrSnapshotSet { base, golden, cadence, snaps, block_entry, shared_snaps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::inst::{BinOp, IPred};
    use crate::interp::{ExecConfig, FaultSpec, Interpreter, IrScratch};
    use crate::types::Type;
    use crate::value::Op;

    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("loop");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let s = fb.alloca(Type::I64, 1);
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(s));
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(25));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let sv = fb.load(Type::I64, Op::inst(s));
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let ns = fb.bin(BinOp::Add, Type::I64, Op::inst(sv), Op::inst(iv2));
        fb.store(Type::I64, Op::inst(ns), Op::inst(s));
        let ni = fb.bin(BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, Op::inst(s));
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        mb.finish()
    }

    const HASH: u64 = 0x1234_5678_9ABC_DEF0;

    #[test]
    fn round_trip_is_bit_identical() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let cfg = ExecConfig { profile: true, max_dyn_insts: 10_000, ..Default::default() };
        let set = interp.capture_snapshots(&cfg, 16);
        assert!(set.len() > 2);
        let bytes = set.to_bytes(HASH);
        let loaded = IrSnapshotSet::from_bytes(&bytes, &m, HASH).unwrap();
        assert_eq!(loaded.golden, set.golden);
        assert_eq!(loaded.cadence, set.cadence);
        assert_eq!(loaded.shared_snaps, set.shared_snaps);
        assert_eq!(loaded.block_entry, set.block_entry);
        assert_eq!(loaded.snaps.len(), set.snaps.len());
        for (a, b) in loaded.snaps.iter().zip(&set.snaps) {
            assert_eq!(a.dyn_insts, b.dyn_insts);
            assert_eq!(a.fault_sites, b.fault_sites);
            assert_eq!(a.sp, b.sp);
            assert_eq!(a.output_len, b.output_len);
            assert_eq!(a.profile, b.profile);
            assert_eq!(a.pages.len(), b.pages.len());
            for (k, v) in &a.pages {
                assert_eq!(&b.pages[k][..], &v[..], "page {k} content differs");
            }
        }
        // Arc sharing survives the round trip: where the original set shares
        // a page between consecutive snapshots, the loaded set does too.
        for (lw, ow) in loaded.snaps.windows(2).zip(set.snaps.windows(2)) {
            for (k, ov) in &ow[0].pages {
                if ow[1].pages.get(k).is_some_and(|ov2| Arc::ptr_eq(ov, ov2)) {
                    let (lv, lv2) = (&lw[0].pages[k], &lw[1].pages[k]);
                    assert!(Arc::ptr_eq(lv, lv2), "page {k} duplicated on load");
                }
            }
        }
        // Fast-forward from the loaded set is bit-identical at every site.
        let mut s1 = IrScratch::new();
        let mut s2 = IrScratch::new();
        for site in 0..set.golden.fault_sites {
            let spec = FaultSpec::single(site, 3);
            let (a, ska) = interp.run_fast_forward(&cfg, spec, &set, &mut s1);
            let (b, skb) = interp.run_fast_forward(&cfg, spec, &loaded, &mut s2);
            assert_eq!(a, b, "site {site}");
            assert_eq!(ska, skb, "site {site}");
        }
    }

    #[test]
    fn rejects_corruption_and_mismatches() {
        let m = loop_module();
        let cfg = ExecConfig { max_dyn_insts: 10_000, ..Default::default() };
        let set = Interpreter::new(&m).capture_snapshots(&cfg, 16);
        let bytes = set.to_bytes(HASH);
        assert!(IrSnapshotSet::from_bytes(&bytes, &m, HASH).is_ok());

        // Any flipped byte fails the checksum.
        for pos in [0usize, 9, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let err = IrSnapshotSet::from_bytes(&bad, &m, HASH).unwrap_err();
            assert!(
                err.contains("checksum") || err.contains("magic") || err.contains("version"),
                "pos {pos}: {err}"
            );
        }
        // Truncation is rejected, never a panic, at every length.
        for cut in 0..bytes.len() {
            assert!(IrSnapshotSet::from_bytes(&bytes[..cut], &m, HASH).is_err(), "cut {cut}");
        }
        // Wrong module hash.
        let err = IrSnapshotSet::from_bytes(&bytes, &m, HASH ^ 1).unwrap_err();
        assert!(err.contains("hash"), "{err}");
        // A future format version is refused even with a valid checksum.
        let mut v2 = bytes.clone();
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        let l = v2.len();
        let c = fnv1a(&v2[..l - 8]);
        v2[l - 8..].copy_from_slice(&c.to_le_bytes());
        let err = IrSnapshotSet::from_bytes(&v2, &m, HASH).unwrap_err();
        assert!(err.contains("version 2"), "{err}");
        // A different magic (e.g. an asm set) is refused.
        let mut wrong = bytes.clone();
        wrong[..8].copy_from_slice(b"FLSNAPAS");
        let l = wrong.len();
        let c = fnv1a(&wrong[..l - 8]);
        wrong[l - 8..].copy_from_slice(&c.to_le_bytes());
        let err = IrSnapshotSet::from_bytes(&wrong, &m, HASH).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }
}
