//! Periodic execution snapshots for fast-forwarded fault-injection trials.
//!
//! A fault-injection trial is bit-identical to the golden run up to its
//! injection site, so re-executing that prefix is pure waste — for late
//! sites, >90% of the trial. During one instrumented golden run the
//! interpreter captures a snapshot every `interval` dynamic instructions:
//! the call stack, stack pointer, output length, and the memory image as a
//! *cumulative* dirty-page overlay against the pristine post-init image.
//! A trial then restores the nearest snapshot at-or-before its injection
//! site and executes only the suffix.
//!
//! The invariant (enforced by differential tests): restored execution is
//! **byte-identical** to scratch execution — same status, output bytes,
//! `dyn_insts`, `fault_sites`, and `injected_at` — because every counter in
//! the snapshot is absolute and every restored byte equals what a scratch
//! run would have computed at that point.

use crate::interp::eval::{Frame, FramePool};
use crate::interp::memory::{Memory, PageMap, PageRecorder};
use crate::interp::ExecResult;

/// Snapshot cadence from a golden dynamic-instruction count: aim for ~64
/// snapshots per golden run, but never snapshot more often than every 512
/// instructions (capture overhead) or less often than every 2^20 (restore
/// cost for long programs).
pub fn auto_interval(golden_dyn_insts: u64) -> u64 {
    (golden_dyn_insts / 64).clamp(512, 1 << 20)
}

/// One point-in-time capture of interpreter state.
///
/// `pages` is cumulative: it holds every page dirtied since program start,
/// so a restore is `base + pages`, never a walk over earlier snapshots.
/// Pages are `Arc`-shared across snapshots — each snapshot only pays for
/// pages dirtied since the previous one.
pub struct IrSnapshot {
    /// Dynamic instructions executed before this point (absolute).
    pub(crate) dyn_insts: u64,
    /// Fault sites executed before this point (absolute). The site with
    /// this index has *not* yet executed.
    pub(crate) fault_sites: u64,
    /// Stack pointer.
    pub(crate) sp: u64,
    /// Output bytes emitted so far; the bytes themselves are a prefix of
    /// the golden output and are restored from there.
    pub(crate) output_len: usize,
    /// The call stack, deep-cloned.
    pub(crate) stack: Vec<Frame>,
    /// Cumulative dirty-page overlay against the base image.
    pub(crate) pages: PageMap,
}

/// All snapshots from one golden run, plus what a restore needs: the
/// pristine post-init memory image and the golden result. Built once per
/// cached golden, shared read-only across worker threads.
pub struct IrSnapshotSet {
    pub(crate) base: Memory,
    pub(crate) golden: ExecResult,
    pub(crate) interval: u64,
    pub(crate) snaps: Vec<IrSnapshot>,
}

impl IrSnapshotSet {
    /// The fault-free result of the capture run.
    pub fn golden(&self) -> &ExecResult {
        &self.golden
    }

    /// Snapshot cadence in dynamic instructions.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of captured snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True when no snapshot was captured (program shorter than interval).
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// The last snapshot whose fault-site counter has not yet passed
    /// `site_index` — i.e. the injection site is still in the future.
    pub(crate) fn nearest(&self, site_index: u64) -> Option<&IrSnapshot> {
        let i = self.snaps.partition_point(|s| s.fault_sites <= site_index);
        i.checked_sub(1).map(|i| &self.snaps[i])
    }
}

/// Capture-side hook threaded through the interpreter's golden run.
pub(crate) struct SnapshotRecorder {
    interval: u64,
    next: u64,
    budget: Option<u64>,
    pages: PageRecorder,
    pub(crate) snaps: Vec<IrSnapshot>,
}

impl SnapshotRecorder {
    pub(crate) fn new(interval: u64, budget: Option<u64>) -> SnapshotRecorder {
        assert!(interval > 0, "snapshot interval must be positive");
        SnapshotRecorder {
            interval,
            next: interval,
            budget,
            pages: PageRecorder::new(),
            snaps: Vec::new(),
        }
    }

    /// Called at the top of the dispatch loop, before the next instruction.
    pub(crate) fn due(&self, dyn_insts: u64) -> bool {
        dyn_insts >= self.next
    }

    /// The cadence after any budget-driven widening; the set records this
    /// so its reported interval matches the snapshots it actually holds.
    pub(crate) fn final_interval(&self) -> u64 {
        self.interval
    }

    pub(crate) fn capture(
        &mut self,
        dyn_insts: u64,
        fault_sites: u64,
        sp: u64,
        output_len: usize,
        stack: &[Frame],
        mem: &mut Memory,
    ) {
        let pages = self.pages.sync(mem);
        self.snaps.push(IrSnapshot {
            dyn_insts,
            fault_sites,
            sp,
            output_len,
            stack: stack.to_vec(),
            pages,
        });
        while self.budget.is_some_and(|b| self.pages.live_bytes() > b) && self.snaps.len() > 1 {
            self.widen();
        }
        self.next = dyn_insts + self.interval;
    }

    /// Double the cadence and keep every other snapshot (starting with the
    /// first, so early injection sites keep a nearby restore point).
    /// Store-heavy runs that rewrite their working set faster than the
    /// budget allows may widen repeatedly; only the page copies freed by
    /// the dropped snapshots are reclaimed, so the floor is the final
    /// overlay itself.
    fn widen(&mut self) {
        self.interval = self.interval.saturating_mul(2);
        let mut keep = false;
        self.snaps.retain(|_| {
            keep = !keep;
            keep
        });
    }
}

/// Per-worker reusable buffers for trial execution: the scratch memory
/// image (reset via dirty-page reverts, never reallocated), the output
/// buffer, and a pool of frame value/param vectors.
#[derive(Default)]
pub struct IrScratch {
    pub(crate) mem: Option<Memory>,
    pub(crate) output: Vec<u8>,
    pub(crate) pool: FramePool,
}

impl IrScratch {
    pub fn new() -> IrScratch {
        IrScratch::default()
    }

    /// Hand a trial's output buffer back for reuse once it has been
    /// classified (the `ExecResult` no longer needs it).
    pub fn recycle_output(&mut self, mut output: Vec<u8>) {
        output.clear();
        self.output = output;
    }
}
