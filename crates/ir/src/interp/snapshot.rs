//! Periodic execution snapshots for fast-forwarded fault-injection trials.
//!
//! A fault-injection trial is bit-identical to the golden run up to its
//! injection site, so re-executing that prefix is pure waste — for late
//! sites, >90% of the trial. During one instrumented golden run the
//! interpreter captures a snapshot on a [`Cadence`]: the call stack, stack
//! pointer, output length, optionally the profile accumulator, and the
//! memory image as a *cumulative* dirty-page overlay against the pristine
//! post-init image. A trial then restores the nearest snapshot at-or-before
//! its injection site and executes only the suffix.
//!
//! The invariant (enforced by differential tests): restored execution is
//! **byte-identical** to scratch execution — same status, output bytes,
//! `dyn_insts`, `fault_sites`, `injected_at`, and profile counts — because
//! every counter in the snapshot is absolute and every restored byte equals
//! what a scratch run would have computed at that point.

use crate::interp::eval::{Frame, FramePool};
use crate::interp::memory::{Memory, PageMap, PageRecorder};
use crate::interp::{ExecResult, Profile};
use crate::module::Module;
use crate::value::{BlockId, FuncId};

/// Snapshot cadence from a golden dynamic-instruction count: aim for ~64
/// snapshots per golden run, but never snapshot more often than every 512
/// instructions (capture overhead) or less often than every 2^20 (restore
/// cost for long programs).
pub fn auto_interval(golden_dyn_insts: u64) -> u64 {
    (golden_dyn_insts / 64).clamp(512, 1 << 20)
}

/// When the recorder captures. Trials draw their injection sites uniformly
/// over *fault sites*, not dynamic instructions, so site-spaced snapshots
/// put restore points where the trials actually land — sites cluster late
/// in duplicated code, where uniform instruction spacing leaves long
/// suffixes to re-execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cadence {
    /// Capture every `k` dynamic instructions (the v1 behavior).
    Insts(u64),
    /// Capture every `k` fault sites (adaptive: matches the uniform-over-
    /// sites trial distribution).
    Sites(u64),
}

impl Cadence {
    /// The numeric spacing, whichever axis it is measured on.
    pub fn value(self) -> u64 {
        match self {
            Cadence::Insts(k) | Cadence::Sites(k) => k,
        }
    }

    /// The cadence one budget-widening step coarser (spacing doubled).
    pub fn widened(self) -> Cadence {
        match self {
            Cadence::Insts(k) => Cadence::Insts(k.saturating_mul(2)),
            Cadence::Sites(k) => Cadence::Sites(k.saturating_mul(2)),
        }
    }
}

/// Starting cadence for self-tuning captures: every 64 fault sites, widened
/// by `SnapshotRecorder` whenever the set exceeds [`AUTO_MAX_SNAPS`].
pub const AUTO_SITE_CADENCE: u64 = 64;

/// Snapshot-count cap for self-tuning captures. Each time the cap is hit
/// the cadence doubles and every other snapshot is dropped, so the final
/// set holds 64..=128 snapshots regardless of run length.
pub const AUTO_MAX_SNAPS: usize = 128;

/// One point-in-time capture of interpreter state.
///
/// `pages` is cumulative: it holds every page dirtied since program start,
/// so a restore is `base + pages`, never a walk over earlier snapshots.
/// Pages are `Arc`-shared across snapshots — each snapshot only pays for
/// pages dirtied since the previous one.
#[derive(Debug)]
pub struct IrSnapshot {
    /// Dynamic instructions executed before this point (absolute).
    pub(crate) dyn_insts: u64,
    /// Fault sites executed before this point (absolute). The site with
    /// this index has *not* yet executed.
    pub(crate) fault_sites: u64,
    /// Stack pointer.
    pub(crate) sp: u64,
    /// Output bytes emitted so far; the bytes themselves are a prefix of
    /// the golden output and are restored from there.
    pub(crate) output_len: usize,
    /// The call stack, deep-cloned.
    pub(crate) stack: Vec<Frame>,
    /// Profile accumulator at this point, when the capture run profiled.
    /// Restoring it is what lets profiled campaigns fast-forward.
    pub(crate) profile: Option<Profile>,
    /// Cumulative dirty-page overlay against the base image.
    pub(crate) pages: PageMap,
}

/// All snapshots from one golden run, plus what a restore needs: the
/// pristine post-init memory image and the golden result. Built once per
/// cached golden, shared read-only across worker threads.
#[derive(Debug)]
pub struct IrSnapshotSet {
    pub(crate) base: Memory,
    pub(crate) golden: ExecResult,
    pub(crate) cadence: Cadence,
    pub(crate) snaps: Vec<IrSnapshot>,
    /// `block_entry[func][block]` = `dyn_insts` at the block's *first* entry
    /// during the capture run (`u64::MAX` = never entered). Recorded only by
    /// fresh captures; `None` for sets built by shared-prefix continuation,
    /// which therefore cannot themselves seed further sharing.
    pub(crate) block_entry: Option<Vec<Vec<u64>>>,
    /// Leading snapshots `Arc`-shared with the raw set this set was derived
    /// from (0 for fresh captures).
    pub(crate) shared_snaps: usize,
}

impl IrSnapshotSet {
    /// The fault-free result of the capture run.
    pub fn golden(&self) -> &ExecResult {
        &self.golden
    }

    /// Snapshot cadence in dynamic instructions or fault sites.
    pub fn cadence(&self) -> Cadence {
        self.cadence
    }

    /// Numeric cadence spacing (see [`Cadence::value`]).
    pub fn interval(&self) -> u64 {
        self.cadence.value()
    }

    /// Number of captured snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True when no snapshot was captured (program shorter than interval).
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Leading snapshots shared with the raw variant's set (see
    /// [`crate::interp::Interpreter::capture_snapshots_from`]).
    pub fn shared_snaps(&self) -> usize {
        self.shared_snaps
    }

    /// True when the set was captured under the given memory geometry —
    /// restoring into a differently-sized image would be unsound, so
    /// callers holding a deserialized set must check before attaching it.
    pub fn matches_geometry(&self, mem_size: u64, stack_size: u64) -> bool {
        self.base.size() == mem_size && self.base.stack_limit() == mem_size - stack_size
    }

    /// The last snapshot whose fault-site counter has not yet passed
    /// `site_index` — i.e. the injection site is still in the future.
    pub(crate) fn nearest(&self, site_index: u64) -> Option<&IrSnapshot> {
        let i = self.snaps.partition_point(|s| s.fault_sites <= site_index);
        i.checked_sub(1).map(|i| &self.snaps[i])
    }
}

/// Capture-side hook threaded through the interpreter's golden run.
pub(crate) struct SnapshotRecorder {
    cadence: Cadence,
    next: u64,
    budget: Option<u64>,
    /// Snapshot-count cap for self-tuning captures; `None` preserves the
    /// caller's explicit cadence exactly (only the byte budget may widen).
    max_snaps: Option<usize>,
    pages: PageRecorder,
    /// First-entry `dyn_insts` per `[func][block]`; `None` on continuation
    /// captures (the shared prefix's entries are unknown in variant terms).
    pub(crate) entry: Option<Vec<Vec<u64>>>,
    pub(crate) snaps: Vec<IrSnapshot>,
}

impl SnapshotRecorder {
    pub(crate) fn new(
        module: &Module,
        cadence: Cadence,
        budget: Option<u64>,
        max_snaps: Option<usize>,
    ) -> SnapshotRecorder {
        assert!(cadence.value() > 0, "snapshot cadence must be positive");
        let entry = module.functions.iter().map(|f| vec![u64::MAX; f.blocks.len()]).collect();
        SnapshotRecorder {
            cadence,
            next: cadence.value(),
            budget,
            max_snaps,
            pages: PageRecorder::new(),
            entry: Some(entry),
            snaps: Vec::new(),
        }
    }

    /// A recorder that continues capturing after a translated shared prefix:
    /// `snaps` are the prefix snapshots, the cumulative overlay starts from
    /// the last of them, and the next capture is scheduled one cadence step
    /// past it. Block entries are not recorded (the prefix's are unknown).
    pub(crate) fn from_shared(
        cadence: Cadence,
        budget: Option<u64>,
        max_snaps: Option<usize>,
        snaps: Vec<IrSnapshot>,
    ) -> SnapshotRecorder {
        assert!(cadence.value() > 0, "snapshot cadence must be positive");
        let last = snaps.last().expect("shared prefix must be nonempty");
        let next = match cadence {
            Cadence::Insts(k) => last.dyn_insts + k,
            Cadence::Sites(k) => last.fault_sites + k,
        };
        SnapshotRecorder {
            cadence,
            next,
            budget,
            max_snaps,
            pages: PageRecorder::from_overlay(&last.pages),
            entry: None,
            snaps,
        }
    }

    /// Called at the top of the dispatch loop, before the next instruction.
    pub(crate) fn due(&self, dyn_insts: u64, fault_sites: u64) -> bool {
        match self.cadence {
            Cadence::Insts(_) => dyn_insts >= self.next,
            Cadence::Sites(_) => fault_sites >= self.next,
        }
    }

    /// The cadence after any budget-driven widening; the set records this
    /// so its reported spacing matches the snapshots it actually holds.
    pub(crate) fn final_cadence(&self) -> Cadence {
        self.cadence
    }

    /// Record the first entry into `block` (a jump/branch target, a callee's
    /// entry block, or `main`'s entry). `dyn_insts` uses the snapshot-hook
    /// convention: the block's first instruction has not yet started.
    #[inline]
    pub(crate) fn note_entry(&mut self, func: FuncId, block: BlockId, dyn_insts: u64) {
        if let Some(entry) = self.entry.as_mut() {
            let slot = &mut entry[func.index()][block.index()];
            if *slot == u64::MAX {
                *slot = dyn_insts;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        &mut self,
        dyn_insts: u64,
        fault_sites: u64,
        sp: u64,
        output_len: usize,
        stack: &[Frame],
        profile: Option<&Profile>,
        mem: &mut Memory,
    ) {
        let pages = self.pages.sync(mem);
        self.snaps.push(IrSnapshot {
            dyn_insts,
            fault_sites,
            sp,
            output_len,
            stack: stack.to_vec(),
            profile: profile.cloned(),
            pages,
        });
        while self.budget.is_some_and(|b| self.pages.live_bytes() > b) && self.snaps.len() > 1 {
            self.widen();
        }
        while self.max_snaps.is_some_and(|m| self.snaps.len() > m) && self.snaps.len() > 1 {
            self.widen();
        }
        self.next = match self.cadence {
            Cadence::Insts(k) => dyn_insts + k,
            Cadence::Sites(k) => fault_sites + k,
        };
    }

    /// Double the cadence and keep every other snapshot (starting with the
    /// first, so early injection sites keep a nearby restore point).
    /// Store-heavy runs that rewrite their working set faster than the
    /// budget allows may widen repeatedly; only the page copies freed by
    /// the dropped snapshots are reclaimed, so the floor is the final
    /// overlay itself.
    fn widen(&mut self) {
        self.cadence = self.cadence.widened();
        let mut keep = false;
        self.snaps.retain(|_| {
            keep = !keep;
            keep
        });
    }
}

/// Per-worker reusable buffers for trial execution: the scratch memory
/// image (reset via dirty-page reverts, never reallocated), the output
/// buffer, and a pool of frame value/param vectors.
#[derive(Default)]
pub struct IrScratch {
    pub(crate) mem: Option<Memory>,
    pub(crate) output: Vec<u8>,
    pub(crate) pool: FramePool,
}

impl IrScratch {
    pub fn new() -> IrScratch {
        IrScratch::default()
    }

    /// Hand a trial's output buffer back for reuse once it has been
    /// classified (the `ExecResult` no longer needs it).
    pub fn recycle_output(&mut self, mut output: Vec<u8>) {
        output.clear();
        self.output = output;
    }
}
