//! Golden-prefix divergence analysis for cross-variant snapshot sharing.
//!
//! A hardened variant (ID / Flowery) is derived from its raw module by
//! passes that only *append* to the instruction arena and block list:
//! original `InstId`s and `BlockId`s survive, so the two modules agree on
//! every coordinate the raw golden run visits until the first structurally
//! different instruction executes. This module computes that first dynamic
//! instruction — the **divergence point** `D` — from the raw capture's
//! per-block first-entry profile:
//!
//! ```text
//!   D = min over static divergence points (f, b, q) of entry[f][b] + q
//! ```
//!
//! where a static divergence point is the first position `q` within block
//! `b` at which the raw and variant blocks differ (different `InstId`,
//! different `InstData`, different length, or — at `q = insts.len()` — a
//! different terminator). Any raw snapshot taken at `dyn_insts <= D` is a
//! valid variant snapshot: no divergent instruction has started, so every
//! byte of memory, every live value slot, and every frame coordinate is
//! exactly what the variant's own golden run would have produced.
//!
//! Soundness of skipping never-entered blocks: consider the first instant
//! the two golden traces differ. Until then they are identical, so the
//! block being executed at that instant was entered at the same `dyn` in
//! both — i.e. it *was* entered by the raw run and its entry is recorded.
//! The differing instruction is a static divergence point in that block,
//! so `D` is at or before that instant.

use crate::interp::eval::Frame;
use crate::module::{Block, Function, Module};

/// First dynamic instruction (snapshot-hook convention: that instruction
/// has not yet started) at which the variant's golden trace can diverge
/// from the raw module's. `u64::MAX` when the modules are execution-
/// equivalent over the raw trace; `None` when the module shells are too
/// different to share anything (globals, function count/signatures).
///
/// The variant may *extend* the raw global list (Flowery appends its
/// branch-expectation and opaque-guard globals): existing globals keep
/// their addresses, and the appended ones are untouched below `D` because
/// only appended — i.e. post-divergence — code references them. The
/// caller must still refuse raw overlay pages that overlap the appended
/// region (see `capture_snapshots_from`), since those would clobber the
/// variant's initializers.
pub(crate) fn divergence_dyn(raw: &Module, var: &Module, entry: &[Vec<u64>]) -> Option<u64> {
    if var.globals.len() < raw.globals.len()
        || var.globals[..raw.globals.len()] != raw.globals[..]
        || raw.functions.len() != var.functions.len()
        || entry.len() != raw.functions.len()
    {
        return None;
    }
    let mut d = u64::MAX;
    for (fi, (rf, vf)) in raw.functions.iter().zip(&var.functions).enumerate() {
        if rf.name != vf.name || rf.params != vf.params || rf.ret_ty != vf.ret_ty {
            return None;
        }
        let entries = &entry[fi];
        if entries.len() != rf.blocks.len() {
            return None;
        }
        for (bi, rb) in rf.blocks.iter().enumerate() {
            let e = entries[bi];
            if e == u64::MAX {
                continue; // never entered by the raw golden run
            }
            let q = match vf.blocks.get(bi) {
                None => 0,
                Some(vb) => match first_divergence(rf, vf, rb, vb) {
                    None => continue, // blocks identical
                    Some(q) => q,
                },
            };
            d = d.min(e.saturating_add(q as u64));
        }
    }
    Some(d)
}

/// First position within a block at which execution of the raw and variant
/// versions differs; `None` when they are identical. Position
/// `rb.insts.len()` is the terminator. Labels are cosmetic and ignored.
fn first_divergence(rf: &Function, vf: &Function, rb: &Block, vb: &Block) -> Option<usize> {
    let n = rb.insts.len().min(vb.insts.len());
    for q in 0..n {
        // Both the id (the value slot written) and the instruction itself
        // must match: identical `InstData` at a different id would write a
        // different slot and later reads would diverge.
        if rb.insts[q] != vb.insts[q] || rf.inst(rb.insts[q]) != vf.inst(vb.insts[q]) {
            return Some(q);
        }
    }
    if rb.insts.len() != vb.insts.len() {
        return Some(n);
    }
    if rb.term != vb.term {
        return Some(rb.insts.len());
    }
    None
}

/// Re-shape a raw snapshot's call stack for the variant module: value
/// arrays are zero-padded to the variant's (longer) instruction arena —
/// fresh frames start zeroed, and below the divergence point no appended
/// instruction has executed, so zero is exactly what the variant's own run
/// would hold in those slots. Returns `None` if any coordinate does not
/// exist in the variant (defensive; cannot happen below `D`).
pub(crate) fn translate_stack(stack: &[Frame], var: &Module) -> Option<Vec<Frame>> {
    let mut out = Vec::with_capacity(stack.len());
    for f in stack {
        let vf = var.functions.get(f.func.index())?;
        let vb = vf.blocks.get(f.block.index())?;
        if f.ip > vb.insts.len() || f.values.len() > vf.insts.len() {
            return None;
        }
        let mut values = f.values.clone();
        values.resize(vf.insts.len(), 0);
        out.push(Frame { values, params: f.params.clone(), ..*f });
    }
    Some(out)
}
