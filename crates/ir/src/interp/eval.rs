//! The evaluation engine: an explicit-stack interpreter over verified IR.

use crate::inst::{Callee, InstKind, Intrinsic, Terminator};
use crate::interp::memory::{align_up, Memory, PageMap, TrapKind, GLOBAL_BASE, PAGE_SIZE};
use crate::interp::ops;
use crate::interp::prefix;
use crate::interp::snapshot::{Cadence, IrScratch, IrSnapshot, IrSnapshotSet, SnapshotRecorder};
use crate::interp::snapshot::{AUTO_MAX_SNAPS, AUTO_SITE_CADENCE};
use crate::interp::{ExecConfig, ExecResult, ExecStatus, FaultEffect, FaultSpec, Profile, TAG_BYTE, TAG_F64, TAG_I64};
use crate::module::Module;
use crate::types::Type;
use crate::value::{BlockId, FuncId, InstId, Op, Value};

/// One activation record. `Clone` deep-copies the value/param vectors —
/// used when a snapshot captures the call stack.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub(crate) func: FuncId,
    pub(crate) block: BlockId,
    /// Index of the next instruction within the block.
    pub(crate) ip: usize,
    /// Result slots, one per instruction-arena entry (canonical bits).
    pub(crate) values: Vec<u64>,
    /// Parameter values.
    pub(crate) params: Vec<u64>,
    /// Stack pointer to restore when this frame returns.
    pub(crate) saved_sp: u64,
    /// Instruction in the *caller* that receives the return value.
    pub(crate) ret_dest: Option<InstId>,
}

/// Recycles frame value/param buffers (and the stack vector itself) across
/// calls and across trials, so steady-state execution allocates nothing.
#[derive(Default)]
pub(crate) struct FramePool {
    bufs: Vec<Vec<u64>>,
    stacks: Vec<Vec<Frame>>,
}

impl FramePool {
    /// An empty buffer, reusing a retired one when available.
    fn take_buf(&mut self) -> Vec<u64> {
        let mut v = self.bufs.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// A zero-filled buffer of length `n`.
    fn take_zeroed(&mut self, n: usize) -> Vec<u64> {
        let mut v = self.take_buf();
        v.resize(n, 0);
        v
    }

    /// A copy of `src` in a recycled buffer.
    fn take_copy(&mut self, src: &[u64]) -> Vec<u64> {
        let mut v = self.take_buf();
        v.extend_from_slice(src);
        v
    }

    fn free_frame(&mut self, f: Frame) {
        self.bufs.push(f.values);
        self.bufs.push(f.params);
    }

    fn take_stack(&mut self) -> Vec<Frame> {
        self.stacks.pop().unwrap_or_default()
    }

    fn free_stack(&mut self, mut s: Vec<Frame>) {
        for f in s.drain(..) {
            self.free_frame(f);
        }
        self.stacks.push(s);
    }

    /// Deep-copy a snapshot's call stack into recycled buffers.
    pub(crate) fn clone_stack(&mut self, src: &[Frame]) -> Vec<Frame> {
        let mut s = self.take_stack();
        for f in src {
            let values = self.take_copy(&f.values);
            let params = self.take_copy(&f.params);
            s.push(Frame { values, params, ..*f });
        }
        s
    }
}

/// Everything mutable a run starts from — either fresh program state or a
/// restored snapshot. All counters are absolute, which is what makes
/// restored runs bit-identical to scratch runs.
struct ExecInit {
    mem: Memory,
    sp: u64,
    output: Vec<u8>,
    dyn_insts: u64,
    fault_sites: u64,
    stack: Vec<Frame>,
    /// Profile accumulator restored from a snapshot (`None` starts fresh).
    profile: Option<Profile>,
}

/// Interpreter for one module. Reusable across runs; each [`Interpreter::run`]
/// call builds fresh memory.
pub struct Interpreter<'m> {
    module: &'m Module,
    global_addrs: Vec<u64>,
}

impl<'m> Interpreter<'m> {
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter { module, global_addrs: Memory::layout_globals(module) }
    }

    /// Execute `main` to completion under `config`, optionally injecting a
    /// fault.
    pub fn run(&self, config: &ExecConfig, fault: Option<FaultSpec>) -> ExecResult {
        let mut pool = FramePool::default();
        let mem = Memory::new(self.module, config.mem_size, config.stack_size);
        let init = self.fresh_init(mem, Vec::new(), &mut pool);
        self.exec(config, fault, init, None, &mut pool).0
    }

    /// Like [`Interpreter::run`], but reuses `scratch`'s output buffer and
    /// frame pool across trials. Memory is still built fresh — only the
    /// snapshot path ([`Interpreter::run_fast_forward`]) can reuse it.
    pub fn run_scratch(&self, config: &ExecConfig, fault: Option<FaultSpec>, scratch: &mut IrScratch) -> ExecResult {
        let mem = Memory::new(self.module, config.mem_size, config.stack_size);
        let output = std::mem::take(&mut scratch.output);
        let init = self.fresh_init(mem, output, &mut scratch.pool);
        self.exec(config, fault, init, None, &mut scratch.pool).0
    }

    /// One fault-free run that captures a snapshot every `interval` dynamic
    /// instructions (see [`crate::interp::snapshot::auto_interval`]).
    /// Honors `config.profile`: each snapshot then carries the profile
    /// accumulator at that point, so profiled campaigns fast-forward too.
    pub fn capture_snapshots(&self, config: &ExecConfig, interval: u64) -> IrSnapshotSet {
        self.capture_with(config, Cadence::Insts(interval), None)
    }

    /// Self-tuning capture: snapshots every [`AUTO_SITE_CADENCE`] fault
    /// sites (trials sample sites uniformly, so site spacing puts restore
    /// points where trials land — sites cluster late in duplicated code),
    /// with the cadence doubling whenever the set would exceed
    /// [`AUTO_MAX_SNAPS`] snapshots. One run regardless of program length.
    pub fn capture_snapshots_auto(&self, config: &ExecConfig) -> IrSnapshotSet {
        self.capture_with(config, Cadence::Sites(AUTO_SITE_CADENCE), Some(AUTO_MAX_SNAPS))
    }

    fn capture_with(&self, config: &ExecConfig, cadence: Cadence, max_snaps: Option<usize>) -> IrSnapshotSet {
        let base = Memory::new(self.module, config.mem_size, config.stack_size);
        let mut pool = FramePool::default();
        let mut rec = SnapshotRecorder::new(self.module, cadence, config.snapshot_budget, max_snaps);
        let init = self.fresh_init(base.clone(), Vec::new(), &mut pool);
        let (golden, _mem) = self.exec(config, None, init, Some(&mut rec), &mut pool);
        IrSnapshotSet {
            base,
            golden,
            cadence: rec.final_cadence(),
            block_entry: rec.entry,
            snaps: rec.snaps,
            shared_snaps: 0,
        }
    }

    /// Build this (variant) module's snapshot set by *sharing* the golden
    /// prefix of `raw_set`, a fresh capture of the `raw` module the variant
    /// was derived from. The raw capture's per-block first-entry profile
    /// pins down the first dynamic instruction at which the two golden
    /// traces can diverge; every raw snapshot at-or-before that point is a
    /// valid variant snapshot (pages `Arc`-shared, value arrays zero-padded
    /// to the variant's arena), and one suffix-only run from the last of
    /// them produces the variant's golden result and its remaining
    /// snapshots. Returns `None` when nothing is shareable — profiling
    /// requested (accumulators are arena-shaped), incompatible configs or
    /// module shells, divergence before the first snapshot — in which case
    /// the caller should fall back to a full capture.
    pub fn capture_snapshots_from(
        &self,
        config: &ExecConfig,
        raw: &Module,
        raw_set: &IrSnapshotSet,
    ) -> Option<IrSnapshotSet> {
        if config.profile {
            return None;
        }
        if raw_set.base.size() != config.mem_size || raw_set.base.stack_limit() != config.mem_size - config.stack_size {
            return None;
        }
        let entry = raw_set.block_entry.as_ref()?;
        let d = prefix::divergence_dyn(raw, self.module, entry)?;
        let mut shared = Vec::new();
        for s in raw_set.snaps.iter().take_while(|s| s.dyn_insts <= d) {
            shared.push(IrSnapshot {
                dyn_insts: s.dyn_insts,
                fault_sites: s.fault_sites,
                sp: s.sp,
                output_len: s.output_len,
                stack: prefix::translate_stack(&s.stack, self.module)?,
                profile: None,
                pages: s.pages.clone(),
            });
        }
        if shared.is_empty() {
            return None;
        }
        // The variant may append globals (Flowery's expect/guard cells) in
        // [raw_end, var_end). Those bytes hold their initializers below the
        // divergence point, but a raw overlay page covering them carries
        // raw heap bytes (zeros) instead — restoring it would wipe the
        // variant's initializers, so such sets cannot be shared.
        let raw_end = Memory::globals_end(raw);
        let var_end = Memory::globals_end(self.module);
        if var_end > raw_end {
            let lo = (raw_end / PAGE_SIZE) as u32;
            let hi = ((var_end - 1) / PAGE_SIZE) as u32;
            if shared.last().unwrap().pages.keys().any(|&p| (lo..=hi).contains(&p)) {
                return None;
            }
        }
        let base = Memory::new(self.module, config.mem_size, config.stack_size);
        let last = shared.last().unwrap();
        let mut mem = base.clone();
        mem.reset_to(&base, &last.pages);
        // The overlay pages already live in the recorder's cumulative map;
        // clear the dirty marks `reset_to` left so the first sync does not
        // re-copy them (which would break `Arc` sharing with the raw set).
        mem.drain_dirty_pages();
        let mut pool = FramePool::default();
        let mut output = Vec::with_capacity(raw_set.golden.output.len());
        output.extend_from_slice(&raw_set.golden.output[..last.output_len]);
        let init = ExecInit {
            mem,
            sp: last.sp,
            output,
            dyn_insts: last.dyn_insts,
            fault_sites: last.fault_sites,
            stack: pool.clone_stack(&last.stack),
            profile: None,
        };
        let mut rec = SnapshotRecorder::from_shared(raw_set.cadence, config.snapshot_budget, None, shared);
        let (golden, _mem) = self.exec(config, None, init, Some(&mut rec), &mut pool);
        let cadence = rec.final_cadence();
        let snaps = rec.snaps;
        let shared_snaps = snaps.iter().take_while(|s| s.dyn_insts <= d).count();
        Some(IrSnapshotSet {
            base,
            golden,
            cadence,
            snaps,
            block_entry: None,
            shared_snaps,
        })
    }

    /// Run one faulty trial, restoring the nearest snapshot at-or-before
    /// the injection site instead of executing the golden prefix. Returns
    /// the result plus the number of dynamic instructions skipped.
    ///
    /// The result is bit-identical to `run(config, Some(fault))`.
    pub fn run_fast_forward(
        &self,
        config: &ExecConfig,
        fault: FaultSpec,
        set: &IrSnapshotSet,
        scratch: &mut IrScratch,
    ) -> (ExecResult, u64) {
        let mut mem = scratch
            .mem
            .take()
            .filter(|m| m.size() == set.base.size())
            .unwrap_or_else(|| set.base.clone());
        let mut output = std::mem::take(&mut scratch.output);
        output.clear();
        // A profiled trial can only restore a snapshot that carries the
        // profile accumulator; otherwise fall back to a scratch start.
        // Scoped faults index a region-local site counter, which snapshot
        // restore points (keyed by the global counter) cannot seed — they
        // always start from scratch.
        let snap = if fault.scope.is_none() {
            set.nearest(fault.site_index)
        } else {
            None
        };
        let init = match snap {
            Some(snap) if !config.profile || snap.profile.is_some() => {
                mem.reset_to(&set.base, &snap.pages);
                output.extend_from_slice(&set.golden.output[..snap.output_len]);
                ExecInit {
                    mem,
                    sp: snap.sp,
                    output,
                    dyn_insts: snap.dyn_insts,
                    fault_sites: snap.fault_sites,
                    stack: scratch.pool.clone_stack(&snap.stack),
                    profile: if config.profile { snap.profile.clone() } else { None },
                }
            }
            _ => {
                // Site earlier than the first snapshot: run from the start,
                // but still reuse the scratch image via a dirty-page reset.
                mem.reset_to(&set.base, &PageMap::new());
                self.fresh_init(mem, output, &mut scratch.pool)
            }
        };
        let skipped = init.dyn_insts;
        let (res, mem) = self.exec(config, Some(fault), init, None, &mut scratch.pool);
        scratch.mem = Some(mem);
        (res, skipped)
    }

    fn fresh_init(&self, mem: Memory, mut output: Vec<u8>, pool: &mut FramePool) -> ExecInit {
        let main = self.module.main_func().expect("module has no @main");
        let sp = mem.initial_sp();
        output.clear();
        let mut stack = pool.take_stack();
        stack.push(Frame {
            func: main,
            block: BlockId(0),
            ip: 0,
            values: pool.take_zeroed(self.module.func(main).insts.len()),
            params: pool.take_buf(),
            saved_sp: sp,
            ret_dest: None,
        });
        ExecInit {
            mem,
            sp,
            output,
            dyn_insts: 0,
            fault_sites: 0,
            stack,
            profile: None,
        }
    }

    /// The dispatch loop. Starts from `init` (fresh or restored), optionally
    /// capturing snapshots into `recorder`. Returns the result plus the
    /// memory image so callers can recycle it.
    fn exec(
        &self,
        config: &ExecConfig,
        fault: Option<FaultSpec>,
        init: ExecInit,
        mut recorder: Option<&mut SnapshotRecorder>,
        pool: &mut FramePool,
    ) -> (ExecResult, Memory) {
        let ExecInit {
            mut mem,
            mut sp,
            mut output,
            mut dyn_insts,
            mut fault_sites,
            mut stack,
            profile: init_profile,
        } = init;
        let mut injected_at: Option<(FuncId, InstId)> = None;
        // Region-local site counter for scoped faults (see `FaultSpec::scope`).
        let mut scope_sites: u64 = 0;
        let mut profile = init_profile.or_else(|| {
            config.profile.then(|| Profile {
                counts: self.module.functions.iter().map(|f| vec![0u64; f.insts.len()]).collect(),
            })
        });

        // A fresh capture run records the entry of `main`'s first block.
        if dyn_insts == 0 {
            if let (Some(rec), Some(f)) = (recorder.as_deref_mut(), stack.last()) {
                rec.note_entry(f.func, f.block, 0);
            }
        }

        let status = 'exec: loop {
            // ---- snapshot hook: state here is "dyn_insts executed, the
            // instruction with index dyn_insts not yet started" -----------
            if let Some(rec) = recorder.as_deref_mut() {
                if rec.due(dyn_insts, fault_sites) {
                    rec.capture(dyn_insts, fault_sites, sp, output.len(), &stack, profile.as_ref(), &mut mem);
                }
            }

            dyn_insts += 1;
            if dyn_insts > config.max_dyn_insts {
                break 'exec ExecStatus::Trapped(TrapKind::InstLimit);
            }

            let depth = stack.len();
            let frame = stack.last_mut().expect("nonempty call stack");
            let func = self.module.func(frame.func);
            let block = func.block(frame.block);

            if frame.ip < block.insts.len() {
                // ---- ordinary instruction ----------------------------------
                let iid = block.insts[frame.ip];
                frame.ip += 1;
                if let Some(p) = profile.as_mut() {
                    p.counts[frame.func.index()][iid.index()] += 1;
                }
                let inst = func.inst(iid);

                // Pre-read operands (borrow rules: frame is &mut).
                macro_rules! opv {
                    ($op:expr) => {
                        self.op_value(frame, $op)
                    };
                }

                let result: Option<u64> = match &inst.kind {
                    InstKind::Alloca { elem, count } => {
                        let bytes = elem.size() * *count as u64;
                        sp = sp.saturating_sub(bytes);
                        sp &= !(elem.align() - 1);
                        if sp < mem.stack_limit() {
                            break 'exec ExecStatus::Trapped(TrapKind::StackOverflow);
                        }
                        Some(sp)
                    }
                    InstKind::Load { ptr, ty } => {
                        let addr = opv!(*ptr);
                        match mem.load_ty(addr, *ty) {
                            Ok(v) => Some(v),
                            Err(t) => break 'exec ExecStatus::Trapped(t),
                        }
                    }
                    InstKind::Store { val, ptr, ty } => {
                        let v = opv!(*val);
                        let addr = opv!(*ptr);
                        if let Err(t) = mem.store_ty(addr, *ty, v) {
                            break 'exec ExecStatus::Trapped(t);
                        }
                        None
                    }
                    InstKind::Bin { op, ty, lhs, rhs } => {
                        let (a, b) = (opv!(*lhs), opv!(*rhs));
                        match ops::eval_bin(*op, *ty, a, b) {
                            Ok(v) => Some(v),
                            Err(t) => break 'exec ExecStatus::Trapped(t),
                        }
                    }
                    InstKind::ICmp { pred, ty, lhs, rhs } => Some(ops::eval_icmp(*pred, *ty, opv!(*lhs), opv!(*rhs))),
                    InstKind::FCmp { pred, ty, lhs, rhs } => Some(ops::eval_fcmp(*pred, *ty, opv!(*lhs), opv!(*rhs))),
                    InstKind::Cast { kind, from, to, val } => Some(ops::eval_cast(*kind, *from, *to, opv!(*val))),
                    InstKind::Gep { base, index, elem } => {
                        let b = opv!(*base);
                        let i = opv!(*index) as i64;
                        Some(b.wrapping_add_signed(i.wrapping_mul(elem.size() as i64)))
                    }
                    InstKind::Select { cond, t, f, .. } => Some(if opv!(*cond) & 1 == 1 { opv!(*t) } else { opv!(*f) }),
                    InstKind::Call { callee, args } => match callee {
                        Callee::Intrinsic(intr) => match intr {
                            Intrinsic::OutputI64 => {
                                output.push(TAG_I64);
                                output.extend_from_slice(&opv!(args[0]).to_le_bytes());
                                if output.len() > config.max_output {
                                    break 'exec ExecStatus::Trapped(TrapKind::OutputFlood);
                                }
                                None
                            }
                            Intrinsic::OutputF64 => {
                                output.push(TAG_F64);
                                output.extend_from_slice(&opv!(args[0]).to_le_bytes());
                                if output.len() > config.max_output {
                                    break 'exec ExecStatus::Trapped(TrapKind::OutputFlood);
                                }
                                None
                            }
                            Intrinsic::OutputByte => {
                                output.push(TAG_BYTE);
                                output.push(opv!(args[0]) as u8);
                                if output.len() > config.max_output {
                                    break 'exec ExecStatus::Trapped(TrapKind::OutputFlood);
                                }
                                None
                            }
                            Intrinsic::DetectError => break 'exec ExecStatus::Detected,
                            math => {
                                let vals: Vec<u64> = args.iter().map(|a| opv!(*a)).collect();
                                Some(ops::eval_math(*math, &vals))
                            }
                        },
                        Callee::Func(callee_id) => {
                            // Push a frame; the call instruction id receives the
                            // return value when the callee returns.
                            if depth >= config.max_call_depth {
                                break 'exec ExecStatus::Trapped(TrapKind::CallDepth);
                            }
                            let callee = *callee_id;
                            let has_ret = self.module.func(callee).ret_ty.is_some();
                            let mut params = pool.take_buf();
                            for a in args {
                                params.push(opv!(*a));
                            }
                            let values = pool.take_zeroed(self.module.func(callee).insts.len());
                            let new_frame = Frame {
                                func: callee,
                                block: BlockId(0),
                                ip: 0,
                                values,
                                params,
                                saved_sp: sp,
                                ret_dest: has_ret.then_some(iid),
                            };
                            stack.push(new_frame);
                            if let Some(rec) = recorder.as_deref_mut() {
                                rec.note_entry(callee, BlockId(0), dyn_insts);
                            }
                            continue 'exec; // do not fall through to result write
                        }
                    },
                };

                if let Some(mut v) = result {
                    let fr_func = stack.last().unwrap().func;
                    let ty = self.module.result_ty(fr_func, iid).expect("instruction with result has a type");
                    // ---- fault injection hook (IR level) -------------------
                    // LLFI-style site selection: only *compute* results are
                    // fault sites. `alloca` addresses are excluded (frame
                    // bookkeeping, not datapath), as are function-call
                    // returns (handled at `Ret`, also excluded) — matching
                    // the instruction-duplication literature's fault model.
                    let is_site = !matches!(self.module.func(fr_func).inst(iid).kind, InstKind::Alloca { .. });
                    let inject_now = is_site
                        && fault.is_some_and(|spec| match spec.scope {
                            None => fault_sites == spec.site_index,
                            Some(f) => f == fr_func && scope_sites == spec.site_index,
                        });
                    if inject_now {
                        let spec = fault.unwrap();
                        injected_at = Some((fr_func, iid));
                        match spec.effect {
                            FaultEffect::Bits => {
                                v ^= 1u64 << (spec.bit % ty.bits());
                                if let Some(b2) = spec.second_bit {
                                    v ^= 1u64 << (b2 % ty.bits());
                                }
                            }
                            FaultEffect::Burst { width } => {
                                for k in 0..width as u32 {
                                    v ^= 1u64 << ((spec.bit + k) % ty.bits());
                                }
                            }
                            // Condition corruption: the low bit is the one
                            // branches and selects consume.
                            FaultEffect::Flags => v ^= 1,
                            FaultEffect::Mem { offset } => {
                                // The result is intact; a memory cell at a
                                // deterministic address takes the hit.
                                let (lo, hi) = mem_fault_region(self.module, &mem);
                                let addr = lo + offset % (hi - lo);
                                if let Ok(b) = mem.load(addr, 1) {
                                    let _ = mem.store(addr, 1, b ^ (1u64 << (spec.bit % 8)));
                                }
                            }
                            // Applied after the result write, below.
                            FaultEffect::Jump { .. } => {}
                        }
                        v = ty.canon(v);
                    }
                    if is_site {
                        fault_sites += 1;
                        if fault.is_some_and(|spec| spec.scope == Some(fr_func)) {
                            scope_sites += 1;
                        }
                    }
                    let fr = stack.last_mut().unwrap();
                    fr.values[iid.index()] = ty.canon(v);
                    if inject_now {
                        if let Some(FaultSpec { effect: FaultEffect::Jump { target }, .. }) = fault {
                            // Control-flow edge corruption: the (intact)
                            // result is written, then control lands at the
                            // head of an arbitrary block of this function.
                            let fr = stack.last_mut().unwrap();
                            let nblocks = self.module.func(fr.func).blocks.len() as u64;
                            fr.block = BlockId((target % nblocks) as u32);
                            fr.ip = 0;
                        }
                    }
                }
            } else {
                // ---- terminator --------------------------------------------
                match &block.term {
                    Terminator::Jmp { dest } => {
                        frame.block = *dest;
                        frame.ip = 0;
                        if let Some(rec) = recorder.as_deref_mut() {
                            rec.note_entry(frame.func, *dest, dyn_insts);
                        }
                    }
                    Terminator::Br { cond, then_bb, else_bb } => {
                        let c = self.op_value(frame, *cond);
                        let dest = if c & 1 == 1 { *then_bb } else { *else_bb };
                        frame.block = dest;
                        frame.ip = 0;
                        if let Some(rec) = recorder.as_deref_mut() {
                            rec.note_entry(frame.func, dest, dyn_insts);
                        }
                    }
                    Terminator::Ret { val } => {
                        let rv = val.map(|v| self.op_value(frame, v));
                        let ret_dest = frame.ret_dest;
                        sp = frame.saved_sp;
                        let done = stack.pop().expect("nonempty call stack");
                        pool.free_frame(done);
                        match stack.last_mut() {
                            None => break 'exec ExecStatus::Completed(rv.unwrap_or(0)),
                            Some(caller) => {
                                if let (Some(dest), Some(v)) = (ret_dest, rv) {
                                    let ty = self
                                        .module
                                        .result_ty(caller.func, dest)
                                        .expect("call with ret_dest has result type");
                                    // The call-return write is NOT an IR
                                    // fault site (calls are not duplicable;
                                    // LLFI-style compute-only selection).
                                    caller.values[dest.index()] = ty.canon(v);
                                }
                            }
                        }
                    }
                    Terminator::Unreachable => break 'exec ExecStatus::Trapped(TrapKind::BadControl),
                }
            }
        };

        pool.free_stack(stack);
        (ExecResult { status, output, dyn_insts, fault_sites, injected_at, profile }, mem)
    }

    /// Count fault sites and dynamic instructions of a fault-free run.
    pub fn profile_run(&self, config: &ExecConfig) -> ExecResult {
        let cfg = ExecConfig { profile: true, ..config.clone() };
        self.run(&cfg, None)
    }

    fn op_value(&self, frame: &Frame, op: Op) -> u64 {
        match op {
            Op::Const(c) => c.bits(),
            Op::Global(g) => self.global_addrs[g.index()],
            Op::Value(Value::Param(p)) => frame.params[p as usize],
            Op::Value(Value::Inst(i)) => frame.values[i.index()],
        }
    }
}

/// The address range memory-cell faults land in: the globals segment when
/// the module has one, else the stack segment. Both are a pure function of
/// the module and memory geometry, so the same spec flips the same cell
/// whether a trial runs from scratch or from a restored snapshot.
pub(crate) fn mem_fault_region(module: &Module, mem: &Memory) -> (u64, u64) {
    let globals_end = Memory::globals_end(module);
    if globals_end > GLOBAL_BASE {
        (GLOBAL_BASE, globals_end)
    } else {
        (mem.stack_limit(), mem.size())
    }
}

/// Frame-size helper used by tests to sanity check alloca alignment.
#[allow(dead_code)]
fn frame_bytes(elem: Type, count: u64) -> u64 {
    align_up(elem.size() * count, elem.align())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::inst::{BinOp, IPred};
    use crate::verify::verify_module;

    /// Build: main() { s = 0; for i in 0..10 { s += i } ; output_i64(s); ret s }
    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("loop");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let s = fb.alloca(Type::I64, 1);
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(s));
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(10));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let sv = fb.load(Type::I64, Op::inst(s));
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let ns = fb.bin(BinOp::Add, Type::I64, Op::inst(sv), Op::inst(iv2));
        fb.store(Type::I64, Op::inst(ns), Op::inst(s));
        let ni = fb.bin(BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, Op::inst(s));
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        mb.finish()
    }

    #[test]
    fn loop_sums_correctly() {
        let m = loop_module();
        verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let r = interp.run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Completed(45));
        assert_eq!(crate::interp::decode_output(&r.output), vec!["i64:45"]);
        assert!(r.dyn_insts > 50);
        assert!(r.fault_sites > 0);
        assert!(r.fault_sites < r.dyn_insts, "stores/branches are not sites");
    }

    #[test]
    fn profile_counts_loop_body() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let r = interp.profile_run(&ExecConfig::default());
        let p = r.profile.unwrap();
        // The loop-body add executes 10 times.
        let f = FuncId(0);
        // find the Add instruction ids
        let adds: Vec<InstId> = m.functions[0]
            .insts
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d.kind, InstKind::Bin { op: BinOp::Add, .. }))
            .map(|(i, _)| InstId(i as u32))
            .collect();
        for a in adds {
            assert_eq!(p.count(f, a), 10);
        }
    }

    #[test]
    fn function_calls_and_recursion() {
        // fib(n) recursive
        let mut mb = ModuleBuilder::new("fib");
        let fib = mb.declare_func("fib", vec![Type::I64], Some(Type::I64));
        let mut fb = FuncBuilder::new("fib", vec![Type::I64], Some(Type::I64));
        let base = fb.new_block("base");
        let rec = fb.new_block("rec");
        let c = fb.icmp(IPred::Slt, Type::I64, Op::param(0), Op::ci64(2));
        fb.br(Op::inst(c), base, rec);
        fb.switch_to(base);
        fb.ret(Some(Op::param(0)));
        fb.switch_to(rec);
        let n1 = fb.bin(BinOp::Sub, Type::I64, Op::param(0), Op::ci64(1));
        let n2 = fb.bin(BinOp::Sub, Type::I64, Op::param(0), Op::ci64(2));
        let f1 = fb.call(fib, vec![Op::inst(n1)]);
        let f2 = fb.call(fib, vec![Op::inst(n2)]);
        let s = fb.bin(BinOp::Add, Type::I64, Op::inst(f1), Op::inst(f2));
        fb.ret(Some(Op::inst(s)));
        mb.define_func(fib, fb.finish());

        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let r = fb.call(fib, vec![Op::ci64(10)]);
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let r = interp.run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Completed(55));
    }

    #[test]
    fn fault_flips_result_bit() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let golden = interp.run(&ExecConfig::default(), None);
        // Inject into the very last fault site (the final load of s), bit 1.
        let spec = FaultSpec::single(golden.fault_sites - 1, 1);
        let faulty = interp.run(&ExecConfig::default(), Some(spec));
        assert!(faulty.injected_at.is_some());
        // 45 ^ 2 = 47
        assert_eq!(faulty.status, ExecStatus::Completed(47));
        assert!(!faulty.matches_output(&golden));
    }

    #[test]
    fn fault_can_be_benign() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let golden = interp.run(&ExecConfig::default(), None);
        // Inject into the loop-exit compare's *first* execution, which only
        // affects an intermediate i; flipping a high bit of the bool (mod 1
        // bit width -> bit 0) flips the branch though. Instead flip the
        // *alloca result* high bit? That would corrupt addresses. Use a
        // benign case: flip bit of iv load at final iteration-compare; the
        // simplest reliable benign case is flipping the same site twice is
        // not possible, so instead assert that SOME site is benign.
        let mut any_benign = false;
        for site in 0..golden.fault_sites {
            let r = interp.run(&ExecConfig::default(), Some(FaultSpec::single(site, 0)));
            if r.matches_output(&golden) {
                any_benign = true;
                break;
            }
        }
        assert!(any_benign, "expected at least one benign site");
    }

    #[test]
    fn fault_in_pointer_traps() {
        // A gep result IS a fault site; flipping a high bit yields a wild
        // pointer and the access traps (DUE).
        let mut mb = ModuleBuilder::new("p");
        let g = mb.global_i64("data", &[1, 2, 3]);
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let p = fb.gep(Op::Global(g), Op::ci64(1), Type::I64);
        let v = fb.load(Type::I64, Op::inst(p));
        fb.ret(Some(Op::inst(v)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let interp = Interpreter::new(&m);
        let r = interp.run(&ExecConfig::default(), Some(FaultSpec::single(0, 60)));
        assert!(matches!(r.status, ExecStatus::Trapped(TrapKind::OobLoad)), "{:?}", r.status);
    }

    #[test]
    fn allocas_and_call_returns_are_not_fault_sites() {
        // A function whose body is nothing but allocas and a call: the only
        // sites are the callee's compute instructions.
        let mut mb = ModuleBuilder::new("s");
        let callee = mb.declare_func("f", vec![], Some(Type::I64));
        let mut fb = FuncBuilder::new("f", vec![], Some(Type::I64));
        let v = fb.bin(BinOp::Add, Type::I64, Op::ci64(1), Op::ci64(2));
        fb.ret(Some(Op::inst(v)));
        mb.define_func(callee, fb.finish());
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let _a = fb.alloca(Type::I64, 4);
        let _b = fb.alloca(Type::I64, 4);
        let r = fb.call(callee, vec![]);
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let res = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(res.status, ExecStatus::Completed(3));
        assert_eq!(res.fault_sites, 1, "only the callee's add is a site");
    }

    #[test]
    fn inst_limit_catches_livelock() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let cfg = ExecConfig { max_dyn_insts: 20, ..Default::default() };
        let r = interp.run(&cfg, None);
        assert_eq!(r.status, ExecStatus::Trapped(TrapKind::InstLimit));
    }

    #[test]
    fn detect_error_halts_with_detected() {
        let mut mb = ModuleBuilder::new("d");
        let mut fb = FuncBuilder::new("main", vec![], None);
        fb.intrinsic(Intrinsic::DetectError, vec![]);
        fb.ret(None);
        mb.add_func(fb.finish());
        let m = mb.finish();
        let interp = Interpreter::new(&m);
        let r = interp.run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Detected);
    }

    #[test]
    fn globals_readable_and_writable() {
        let mut mb = ModuleBuilder::new("g");
        let g = mb.global_i64("data", &[7, 8, 9]);
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let p1 = fb.gep(Op::Global(g), Op::ci64(2), Type::I64);
        let v = fb.load(Type::I64, Op::inst(p1));
        let p0 = fb.gep(Op::Global(g), Op::ci64(0), Type::I64);
        fb.store(Type::I64, Op::inst(v), Op::inst(p0));
        let v2 = fb.load(Type::I64, Op::inst(p0));
        fb.ret(Some(Op::inst(v2)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        verify_module(&m).unwrap();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Completed(9));
    }

    #[test]
    fn call_depth_trap() {
        let mut mb = ModuleBuilder::new("rec");
        let f = mb.declare_func("inf", vec![], None);
        let mut fb = FuncBuilder::new("inf", vec![], None);
        fb.call(f, vec![]);
        fb.ret(None);
        mb.define_func(f, fb.finish());
        let mut fb = FuncBuilder::new("main", vec![], None);
        fb.call(f, vec![]);
        fb.ret(None);
        mb.add_func(fb.finish());
        let m = mb.finish();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Trapped(TrapKind::CallDepth));
    }

    #[test]
    fn fast_forward_is_bit_identical() {
        // Every site of the loop module, restored vs scratch, tiny interval
        // so several snapshots exist.
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let cfg = ExecConfig { max_dyn_insts: 10_000, ..Default::default() };
        let set = interp.capture_snapshots(&cfg, 16);
        assert!(set.len() > 2, "expected several snapshots");
        let mut scratch = IrScratch::new();
        for site in 0..set.golden().fault_sites {
            for bit in [0u32, 1, 17, 63] {
                let spec = FaultSpec::single(site, bit);
                let scratch_res = interp.run(&cfg, Some(spec));
                let (ff_res, skipped) = interp.run_fast_forward(&cfg, spec, &set, &mut scratch);
                assert_eq!(ff_res.status, scratch_res.status, "site {site} bit {bit}");
                assert_eq!(ff_res.output, scratch_res.output, "site {site} bit {bit}");
                assert_eq!(ff_res.dyn_insts, scratch_res.dyn_insts, "site {site} bit {bit}");
                assert_eq!(ff_res.fault_sites, scratch_res.fault_sites, "site {site} bit {bit}");
                assert_eq!(ff_res.injected_at, scratch_res.injected_at, "site {site} bit {bit}");
                assert!(skipped <= scratch_res.dyn_insts);
                scratch.recycle_output(ff_res.output);
            }
        }
    }

    #[test]
    fn fast_forward_recursion_restores_deep_stacks() {
        // fib(12): snapshots land mid-recursion, so restore must rebuild a
        // multi-frame call stack with correct saved_sp/ret_dest chains.
        let mut mb = ModuleBuilder::new("fib");
        let fib = mb.declare_func("fib", vec![Type::I64], Some(Type::I64));
        let mut fb = FuncBuilder::new("fib", vec![Type::I64], Some(Type::I64));
        let base = fb.new_block("base");
        let rec = fb.new_block("rec");
        let c = fb.icmp(IPred::Slt, Type::I64, Op::param(0), Op::ci64(2));
        fb.br(Op::inst(c), base, rec);
        fb.switch_to(base);
        fb.ret(Some(Op::param(0)));
        fb.switch_to(rec);
        let n1 = fb.bin(BinOp::Sub, Type::I64, Op::param(0), Op::ci64(1));
        let n2 = fb.bin(BinOp::Sub, Type::I64, Op::param(0), Op::ci64(2));
        let f1 = fb.call(fib, vec![Op::inst(n1)]);
        let f2 = fb.call(fib, vec![Op::inst(n2)]);
        let s = fb.bin(BinOp::Add, Type::I64, Op::inst(f1), Op::inst(f2));
        fb.ret(Some(Op::inst(s)));
        mb.define_func(fib, fb.finish());
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let r = fb.call(fib, vec![Op::ci64(12)]);
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        let m = mb.finish();

        let interp = Interpreter::new(&m);
        let cfg = ExecConfig { max_dyn_insts: 100_000, ..Default::default() };
        let set = interp.capture_snapshots(&cfg, 64);
        assert!(set.snaps.iter().any(|s| s.stack.len() > 2), "snapshots should catch deep recursion");
        let mut scratch = IrScratch::new();
        let golden = set.golden();
        for site in (0..golden.fault_sites).step_by(31) {
            let spec = FaultSpec::double(site, 3, 41);
            let scratch_res = interp.run(&cfg, Some(spec));
            let (ff_res, _) = interp.run_fast_forward(&cfg, spec, &set, &mut scratch);
            assert_eq!(ff_res.status, scratch_res.status, "site {site}");
            assert_eq!(ff_res.output, scratch_res.output, "site {site}");
            assert_eq!(ff_res.dyn_insts, scratch_res.dyn_insts, "site {site}");
            assert_eq!(ff_res.fault_sites, scratch_res.fault_sites, "site {site}");
            assert_eq!(ff_res.injected_at, scratch_res.injected_at, "site {site}");
        }
    }

    #[test]
    fn capture_golden_matches_plain_run() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let cfg = ExecConfig::default();
        let plain = interp.run(&cfg, None);
        let set = interp.capture_snapshots(&cfg, 32);
        assert_eq!(set.golden().status, plain.status);
        assert_eq!(set.golden().output, plain.output);
        assert_eq!(set.golden().dyn_insts, plain.dyn_insts);
        assert_eq!(set.golden().fault_sites, plain.fault_sites);
    }

    /// A loop that cycles writes through an 8-page global array, so every
    /// snapshot window rewrites pages and the overlay grows without bound
    /// unless capped.
    fn store_heavy_module(iters: i64) -> Module {
        let mut mb = ModuleBuilder::new("stores");
        let g = mb.global_i64("arr", &vec![0i64; 4096]);
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(iters));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let idx = fb.bin(BinOp::And, Type::I64, Op::inst(iv2), Op::ci64(4095));
        let p = fb.gep(Op::Global(g), Op::inst(idx), Type::I64);
        fb.store(Type::I64, Op::inst(iv2), Op::inst(p));
        let ni = fb.bin(BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let p7 = fb.gep(Op::Global(g), Op::ci64(7), Type::I64);
        let r = fb.load(Type::I64, Op::inst(p7));
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        mb.finish()
    }

    /// Bytes of distinct page copies held across all snapshots of a set —
    /// the memory the budget bounds.
    fn overlay_bytes(set: &IrSnapshotSet) -> u64 {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        for s in &set.snaps {
            for p in s.pages.values() {
                if seen.insert(std::sync::Arc::as_ptr(p)) {
                    total += p.len() as u64;
                }
            }
        }
        total
    }

    #[test]
    fn snapshot_budget_widens_cadence_on_store_heavy_runs() {
        let m = store_heavy_module(8192);
        verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let cfg = ExecConfig { max_dyn_insts: 1_000_000, ..Default::default() };
        let unbounded = interp.capture_snapshots(&cfg, 256);
        assert_eq!(unbounded.interval(), 256);
        let budget = 16 * crate::interp::PAGE_SIZE; // 16 pages; the final overlay alone needs ~9
        assert!(
            overlay_bytes(&unbounded) > budget,
            "workload must be store-heavy enough to blow the budget: {} bytes",
            overlay_bytes(&unbounded)
        );

        let capped_cfg = ExecConfig { snapshot_budget: Some(budget), ..cfg.clone() };
        let capped = interp.capture_snapshots(&capped_cfg, 256);
        assert!(capped.interval() > 256, "budget pressure must widen the cadence");
        assert!(capped.len() < unbounded.len(), "{} vs {}", capped.len(), unbounded.len());
        assert!(capped.len() > 1, "widening must not degenerate to a single snapshot");
        assert!(
            overlay_bytes(&capped) <= budget,
            "{} bytes over a {budget} budget",
            overlay_bytes(&capped)
        );
        assert_eq!(capped.golden().output, unbounded.golden().output, "the budget must not perturb execution");
        assert_eq!(capped.golden().dyn_insts, unbounded.golden().dyn_insts);

        // The thinned set still fast-forwards bit-identically.
        let mut scratch = IrScratch::new();
        for site in (0..capped.golden().fault_sites).step_by(997) {
            let spec = FaultSpec::single(site, 13);
            let scratch_res = interp.run(&cfg, Some(spec));
            let (ff_res, _) = interp.run_fast_forward(&cfg, spec, &capped, &mut scratch);
            assert_eq!(ff_res.status, scratch_res.status, "site {site}");
            assert_eq!(ff_res.output, scratch_res.output, "site {site}");
            assert_eq!(ff_res.dyn_insts, scratch_res.dyn_insts, "site {site}");
            scratch.recycle_output(ff_res.output);
        }
    }

    #[test]
    fn profiled_fast_forward_matches_scratch() {
        // Capture with profiling on: every snapshot carries the accumulator,
        // and a profiled trial restored mid-run must produce counts
        // identical to a profiled scratch run — the profile_sdc path.
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let cfg = ExecConfig { profile: true, max_dyn_insts: 10_000, ..Default::default() };
        let set = interp.capture_snapshots(&cfg, 16);
        assert!(set.len() > 2, "expected several snapshots");
        assert!(
            set.snaps.iter().all(|s| s.profile.is_some()),
            "profiled capture snapshots carry the accumulator"
        );
        assert!(set.golden().profile.is_some());
        let mut scratch = IrScratch::new();
        for site in 0..set.golden().fault_sites {
            let spec = FaultSpec::single(site, 5);
            let scratch_res = interp.run(&cfg, Some(spec));
            let (ff_res, skipped) = interp.run_fast_forward(&cfg, spec, &set, &mut scratch);
            assert_eq!(ff_res, scratch_res, "site {site}");
            assert!(skipped <= scratch_res.dyn_insts);
        }
        // A late site actually fast-forwards (profile restore exercised).
        let late = set.golden().fault_sites - 1;
        let (_, skipped) = interp.run_fast_forward(&cfg, FaultSpec::single(late, 0), &set, &mut scratch);
        assert!(skipped > 0, "late sites must restore a snapshot");
    }

    #[test]
    fn unprofiled_set_falls_back_for_profiled_trials() {
        // An unprofiled capture cannot serve a profiled trial from a
        // snapshot; it must fall back to scratch and still be correct.
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let plain_cfg = ExecConfig { max_dyn_insts: 10_000, ..Default::default() };
        let prof_cfg = ExecConfig { profile: true, ..plain_cfg.clone() };
        let set = interp.capture_snapshots(&plain_cfg, 16);
        let mut scratch = IrScratch::new();
        let late = set.golden().fault_sites - 1;
        let spec = FaultSpec::single(late, 1);
        let scratch_res = interp.run(&prof_cfg, Some(spec));
        let (ff_res, skipped) = interp.run_fast_forward(&prof_cfg, spec, &set, &mut scratch);
        assert_eq!(skipped, 0, "no profile in the snapshot: must start from scratch");
        assert_eq!(ff_res, scratch_res);
    }

    #[test]
    fn auto_capture_is_site_spaced_and_capped() {
        let m = store_heavy_module(8192);
        let interp = Interpreter::new(&m);
        let cfg = ExecConfig { max_dyn_insts: 1_000_000, ..Default::default() };
        let set = interp.capture_snapshots_auto(&cfg);
        assert!(matches!(set.cadence(), Cadence::Sites(_)), "auto capture spaces by fault sites");
        assert!(set.len() <= AUTO_MAX_SNAPS, "{} snapshots over the cap", set.len());
        assert!(set.len() > AUTO_MAX_SNAPS / 4, "self-tuning should land near the cap, got {}", set.len());
        let plain = interp.run(&cfg, None);
        assert_eq!(set.golden().output, plain.output);
        assert_eq!(set.golden().dyn_insts, plain.dyn_insts);
        // Site-spaced snapshots: consecutive snapshots are close in site
        // index (within the final cadence), even where sites are sparse.
        let k = set.interval();
        for pair in set.snaps.windows(2) {
            assert!(pair[1].fault_sites - pair[0].fault_sites >= k, "cadence respected");
        }
        let mut scratch = IrScratch::new();
        for site in (0..set.golden().fault_sites).step_by(1009) {
            let spec = FaultSpec::single(site, 7);
            let scratch_res = interp.run(&cfg, Some(spec));
            let (ff_res, _) = interp.run_fast_forward(&cfg, spec, &set, &mut scratch);
            assert_eq!(ff_res, scratch_res, "site {site}");
            scratch.recycle_output(ff_res.output);
        }
    }

    /// The loop module plus a "hardened" twin built by the same builder
    /// calls with extra instructions appended in the exit block — the same
    /// arena-append shape the duplication passes produce, so the golden
    /// traces are identical until the exit block's second instruction.
    fn loop_module_variant() -> Module {
        let mut mb = ModuleBuilder::new("loop");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let s = fb.alloca(Type::I64, 1);
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(s));
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(10));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let sv = fb.load(Type::I64, Op::inst(s));
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let ns = fb.bin(BinOp::Add, Type::I64, Op::inst(sv), Op::inst(iv2));
        fb.store(Type::I64, Op::inst(ns), Op::inst(s));
        let ni = fb.bin(BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, Op::inst(s));
        // Divergence: the variant doubles the result before emitting it.
        let r2 = fb.bin(BinOp::Add, Type::I64, Op::inst(r), Op::inst(r));
        fb.output_i64(Op::inst(r2));
        fb.ret(Some(Op::inst(r2)));
        mb.add_func(fb.finish());
        mb.finish()
    }

    #[test]
    fn shared_prefix_capture_matches_fresh_capture() {
        let raw = loop_module();
        let var = loop_module_variant();
        verify_module(&var).unwrap();
        let cfg = ExecConfig { max_dyn_insts: 10_000, ..Default::default() };
        let raw_interp = Interpreter::new(&raw);
        let var_interp = Interpreter::new(&var);
        let raw_set = raw_interp.capture_snapshots(&cfg, 16);
        assert!(raw_set.len() > 2);
        let shared = var_interp
            .capture_snapshots_from(&cfg, &raw, &raw_set)
            .expect("late divergence must allow sharing");
        assert!(shared.shared_snaps() >= 1, "at least one snapshot shared below the divergence");
        assert!(shared.block_entry.is_none(), "continuation sets cannot seed further sharing");
        // Shared snapshots Arc-share their pages with the raw set.
        for (s, r) in shared.snaps.iter().zip(&raw_set.snaps).take(shared.shared_snaps()) {
            assert_eq!(s.dyn_insts, r.dyn_insts);
            for (k, v) in &s.pages {
                assert!(std::sync::Arc::ptr_eq(v, &r.pages[k]), "page {k} not shared");
            }
        }
        // The continuation golden equals a fresh variant run...
        let fresh = var_interp.run(&cfg, None);
        assert_eq!(shared.golden().status, fresh.status);
        assert_eq!(shared.golden().output, fresh.output);
        assert_eq!(shared.golden().dyn_insts, fresh.dyn_insts);
        assert_eq!(shared.golden().fault_sites, fresh.fault_sites);
        // ... and the variant diverges from the raw golden (i.e. this is a
        // real cross-variant case, not two identical modules).
        assert_ne!(shared.golden().output, raw_set.golden().output);
        // Every fast-forwarded trial on the shared set is bit-identical.
        let mut scratch = IrScratch::new();
        for site in 0..shared.golden().fault_sites {
            for bit in [0u32, 9, 33] {
                let spec = FaultSpec::single(site, bit);
                let scratch_res = var_interp.run(&cfg, Some(spec));
                let (ff_res, _) = var_interp.run_fast_forward(&cfg, spec, &shared, &mut scratch);
                assert_eq!(ff_res, scratch_res, "site {site} bit {bit}");
                scratch.recycle_output(ff_res.output);
            }
        }
    }

    #[test]
    fn shared_prefix_refuses_incompatible_shapes() {
        let raw = loop_module();
        let cfg = ExecConfig { max_dyn_insts: 10_000, ..Default::default() };
        let raw_set = Interpreter::new(&raw).capture_snapshots(&cfg, 16);

        // Different globals: nothing shareable.
        let mut mb = ModuleBuilder::new("g");
        mb.global_i64("x", &[1]);
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        fb.ret(Some(Op::ci64(0)));
        mb.add_func(fb.finish());
        let other = mb.finish();
        assert!(Interpreter::new(&other).capture_snapshots_from(&cfg, &raw, &raw_set).is_none());

        // Profiling requested: sharing declines (accumulators are arena-shaped).
        let var = loop_module_variant();
        let prof = ExecConfig { profile: true, ..cfg.clone() };
        assert!(Interpreter::new(&var).capture_snapshots_from(&prof, &raw, &raw_set).is_none());

        // Mismatched memory geometry: sharing declines.
        let small = ExecConfig { mem_size: 2 << 20, ..cfg.clone() };
        assert!(Interpreter::new(&var).capture_snapshots_from(&small, &raw, &raw_set).is_none());
    }
}
