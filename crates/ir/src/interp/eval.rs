//! The evaluation engine: an explicit-stack interpreter over verified IR.

use crate::inst::{Callee, InstKind, Intrinsic, Terminator};
use crate::interp::memory::{align_up, Memory, TrapKind};
use crate::interp::ops;
use crate::interp::{ExecConfig, ExecResult, ExecStatus, FaultSpec, Profile, TAG_BYTE, TAG_F64, TAG_I64};
use crate::module::Module;
use crate::types::Type;
use crate::value::{BlockId, FuncId, InstId, Op, Value};

/// One activation record.
struct Frame {
    func: FuncId,
    block: BlockId,
    /// Index of the next instruction within the block.
    ip: usize,
    /// Result slots, one per instruction-arena entry (canonical bits).
    values: Vec<u64>,
    /// Parameter values.
    params: Vec<u64>,
    /// Stack pointer to restore when this frame returns.
    saved_sp: u64,
    /// Instruction in the *caller* that receives the return value.
    ret_dest: Option<InstId>,
}

/// Interpreter for one module. Reusable across runs; each [`Interpreter::run`]
/// call builds fresh memory.
pub struct Interpreter<'m> {
    module: &'m Module,
    global_addrs: Vec<u64>,
}

impl<'m> Interpreter<'m> {
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter { module, global_addrs: Memory::layout_globals(module) }
    }

    /// Execute `main` to completion under `config`, optionally injecting a
    /// fault.
    pub fn run(&self, config: &ExecConfig, fault: Option<FaultSpec>) -> ExecResult {
        let main = self.module.main_func().expect("module has no @main");
        let mut mem = Memory::new(self.module, config.mem_size, config.stack_size);
        let mut sp = mem.initial_sp();
        let mut output: Vec<u8> = Vec::new();
        let mut dyn_insts: u64 = 0;
        let mut fault_sites: u64 = 0;
        let mut injected_at: Option<(FuncId, InstId)> = None;
        let mut profile = if config.profile {
            Some(Profile {
                counts: self.module.functions.iter().map(|f| vec![0u64; f.insts.len()]).collect(),
            })
        } else {
            None
        };

        let mut stack: Vec<Frame> = Vec::new();
        stack.push(Frame {
            func: main,
            block: BlockId(0),
            ip: 0,
            values: vec![0; self.module.func(main).insts.len()],
            params: Vec::new(),
            saved_sp: sp,
            ret_dest: None,
        });

        let finish = |status: ExecStatus,
                      output: Vec<u8>,
                      dyn_insts: u64,
                      fault_sites: u64,
                      injected_at: Option<(FuncId, InstId)>,
                      profile: Option<Profile>| ExecResult {
            status,
            output,
            dyn_insts,
            fault_sites,
            injected_at,
            profile,
        };

        loop {
            dyn_insts += 1;
            if dyn_insts > config.max_dyn_insts {
                return finish(
                    ExecStatus::Trapped(TrapKind::InstLimit),
                    output,
                    dyn_insts,
                    fault_sites,
                    injected_at,
                    profile,
                );
            }

            let depth = stack.len();
            let frame = stack.last_mut().expect("nonempty call stack");
            let func = self.module.func(frame.func);
            let block = func.block(frame.block);

            if frame.ip < block.insts.len() {
                // ---- ordinary instruction ----------------------------------
                let iid = block.insts[frame.ip];
                frame.ip += 1;
                if let Some(p) = profile.as_mut() {
                    p.counts[frame.func.index()][iid.index()] += 1;
                }
                let inst = func.inst(iid);

                // Pre-read operands (borrow rules: frame is &mut).
                macro_rules! opv {
                    ($op:expr) => {
                        self.op_value(frame, $op)
                    };
                }

                let result: Option<u64> = match &inst.kind {
                    InstKind::Alloca { elem, count } => {
                        let bytes = elem.size() * *count as u64;
                        sp = sp.saturating_sub(bytes);
                        sp &= !(elem.align() - 1);
                        if sp < mem.stack_limit() {
                            return finish(
                                ExecStatus::Trapped(TrapKind::StackOverflow),
                                output,
                                dyn_insts,
                                fault_sites,
                                injected_at,
                                profile,
                            );
                        }
                        Some(sp)
                    }
                    InstKind::Load { ptr, ty } => {
                        let addr = opv!(*ptr);
                        match mem.load_ty(addr, *ty) {
                            Ok(v) => Some(v),
                            Err(t) => {
                                return finish(
                                    ExecStatus::Trapped(t),
                                    output,
                                    dyn_insts,
                                    fault_sites,
                                    injected_at,
                                    profile,
                                )
                            }
                        }
                    }
                    InstKind::Store { val, ptr, ty } => {
                        let v = opv!(*val);
                        let addr = opv!(*ptr);
                        if let Err(t) = mem.store_ty(addr, *ty, v) {
                            return finish(
                                ExecStatus::Trapped(t),
                                output,
                                dyn_insts,
                                fault_sites,
                                injected_at,
                                profile,
                            );
                        }
                        None
                    }
                    InstKind::Bin { op, ty, lhs, rhs } => {
                        let (a, b) = (opv!(*lhs), opv!(*rhs));
                        match ops::eval_bin(*op, *ty, a, b) {
                            Ok(v) => Some(v),
                            Err(t) => {
                                return finish(
                                    ExecStatus::Trapped(t),
                                    output,
                                    dyn_insts,
                                    fault_sites,
                                    injected_at,
                                    profile,
                                )
                            }
                        }
                    }
                    InstKind::ICmp { pred, ty, lhs, rhs } => Some(ops::eval_icmp(*pred, *ty, opv!(*lhs), opv!(*rhs))),
                    InstKind::FCmp { pred, ty, lhs, rhs } => Some(ops::eval_fcmp(*pred, *ty, opv!(*lhs), opv!(*rhs))),
                    InstKind::Cast { kind, from, to, val } => Some(ops::eval_cast(*kind, *from, *to, opv!(*val))),
                    InstKind::Gep { base, index, elem } => {
                        let b = opv!(*base);
                        let i = opv!(*index) as i64;
                        Some(b.wrapping_add_signed(i.wrapping_mul(elem.size() as i64)))
                    }
                    InstKind::Select { cond, t, f, .. } => Some(if opv!(*cond) & 1 == 1 { opv!(*t) } else { opv!(*f) }),
                    InstKind::Call { callee, args } => match callee {
                        Callee::Intrinsic(intr) => match intr {
                            Intrinsic::OutputI64 => {
                                output.push(TAG_I64);
                                output.extend_from_slice(&opv!(args[0]).to_le_bytes());
                                if output.len() > config.max_output {
                                    return finish(
                                        ExecStatus::Trapped(TrapKind::OutputFlood),
                                        output,
                                        dyn_insts,
                                        fault_sites,
                                        injected_at,
                                        profile,
                                    );
                                }
                                None
                            }
                            Intrinsic::OutputF64 => {
                                output.push(TAG_F64);
                                output.extend_from_slice(&opv!(args[0]).to_le_bytes());
                                if output.len() > config.max_output {
                                    return finish(
                                        ExecStatus::Trapped(TrapKind::OutputFlood),
                                        output,
                                        dyn_insts,
                                        fault_sites,
                                        injected_at,
                                        profile,
                                    );
                                }
                                None
                            }
                            Intrinsic::OutputByte => {
                                output.push(TAG_BYTE);
                                output.push(opv!(args[0]) as u8);
                                if output.len() > config.max_output {
                                    return finish(
                                        ExecStatus::Trapped(TrapKind::OutputFlood),
                                        output,
                                        dyn_insts,
                                        fault_sites,
                                        injected_at,
                                        profile,
                                    );
                                }
                                None
                            }
                            Intrinsic::DetectError => {
                                return finish(
                                    ExecStatus::Detected,
                                    output,
                                    dyn_insts,
                                    fault_sites,
                                    injected_at,
                                    profile,
                                )
                            }
                            math => {
                                let vals: Vec<u64> = args.iter().map(|a| opv!(*a)).collect();
                                Some(ops::eval_math(*math, &vals))
                            }
                        },
                        Callee::Func(callee_id) => {
                            // Push a frame; the call instruction id receives the
                            // return value when the callee returns.
                            if depth >= config.max_call_depth {
                                return finish(
                                    ExecStatus::Trapped(TrapKind::CallDepth),
                                    output,
                                    dyn_insts,
                                    fault_sites,
                                    injected_at,
                                    profile,
                                );
                            }
                            let params: Vec<u64> = args.iter().map(|a| opv!(*a)).collect();
                            let callee = *callee_id;
                            let has_ret = self.module.func(callee).ret_ty.is_some();
                            let new_frame = Frame {
                                func: callee,
                                block: BlockId(0),
                                ip: 0,
                                values: vec![0; self.module.func(callee).insts.len()],
                                params,
                                saved_sp: sp,
                                ret_dest: has_ret.then_some(iid),
                            };
                            stack.push(new_frame);
                            continue; // do not fall through to result write
                        }
                    },
                };

                if let Some(mut v) = result {
                    let fr_func = stack.last().unwrap().func;
                    let ty = self.module.result_ty(fr_func, iid).expect("instruction with result has a type");
                    // ---- fault injection hook (IR level) -------------------
                    // LLFI-style site selection: only *compute* results are
                    // fault sites. `alloca` addresses are excluded (frame
                    // bookkeeping, not datapath), as are function-call
                    // returns (handled at `Ret`, also excluded) — matching
                    // the instruction-duplication literature's fault model.
                    let is_site = !matches!(self.module.func(fr_func).inst(iid).kind, InstKind::Alloca { .. });
                    if is_site {
                        if let Some(spec) = fault {
                            if fault_sites == spec.site_index {
                                v ^= 1u64 << (spec.bit % ty.bits());
                                if let Some(b2) = spec.second_bit {
                                    v ^= 1u64 << (b2 % ty.bits());
                                }
                                v = ty.canon(v);
                                injected_at = Some((fr_func, iid));
                            }
                        }
                        fault_sites += 1;
                    }
                    let fr = stack.last_mut().unwrap();
                    fr.values[iid.index()] = ty.canon(v);
                }
            } else {
                // ---- terminator --------------------------------------------
                match &block.term {
                    Terminator::Jmp { dest } => {
                        frame.block = *dest;
                        frame.ip = 0;
                    }
                    Terminator::Br { cond, then_bb, else_bb } => {
                        let c = self.op_value(frame, *cond);
                        frame.block = if c & 1 == 1 { *then_bb } else { *else_bb };
                        frame.ip = 0;
                    }
                    Terminator::Ret { val } => {
                        let rv = val.map(|v| self.op_value(frame, v));
                        let ret_dest = frame.ret_dest;
                        sp = frame.saved_sp;
                        stack.pop();
                        match stack.last_mut() {
                            None => {
                                return finish(
                                    ExecStatus::Completed(rv.unwrap_or(0)),
                                    output,
                                    dyn_insts,
                                    fault_sites,
                                    injected_at,
                                    profile,
                                );
                            }
                            Some(caller) => {
                                if let (Some(dest), Some(v)) = (ret_dest, rv) {
                                    let ty = self
                                        .module
                                        .result_ty(caller.func, dest)
                                        .expect("call with ret_dest has result type");
                                    // The call-return write is NOT an IR
                                    // fault site (calls are not duplicable;
                                    // LLFI-style compute-only selection).
                                    caller.values[dest.index()] = ty.canon(v);
                                }
                            }
                        }
                    }
                    Terminator::Unreachable => {
                        return finish(
                            ExecStatus::Trapped(TrapKind::BadControl),
                            output,
                            dyn_insts,
                            fault_sites,
                            injected_at,
                            profile,
                        );
                    }
                }
            }
        }
    }

    /// Count fault sites and dynamic instructions of a fault-free run.
    pub fn profile_run(&self, config: &ExecConfig) -> ExecResult {
        let cfg = ExecConfig { profile: true, ..config.clone() };
        self.run(&cfg, None)
    }

    fn op_value(&self, frame: &Frame, op: Op) -> u64 {
        match op {
            Op::Const(c) => c.bits(),
            Op::Global(g) => self.global_addrs[g.index()],
            Op::Value(Value::Param(p)) => frame.params[p as usize],
            Op::Value(Value::Inst(i)) => frame.values[i.index()],
        }
    }
}

/// Frame-size helper used by tests to sanity check alloca alignment.
#[allow(dead_code)]
fn frame_bytes(elem: Type, count: u64) -> u64 {
    align_up(elem.size() * count, elem.align())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::inst::{BinOp, IPred};
    use crate::verify::verify_module;

    /// Build: main() { s = 0; for i in 0..10 { s += i } ; output_i64(s); ret s }
    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("loop");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let s = fb.alloca(Type::I64, 1);
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(s));
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(10));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let sv = fb.load(Type::I64, Op::inst(s));
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let ns = fb.bin(BinOp::Add, Type::I64, Op::inst(sv), Op::inst(iv2));
        fb.store(Type::I64, Op::inst(ns), Op::inst(s));
        let ni = fb.bin(BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, Op::inst(s));
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        mb.finish()
    }

    #[test]
    fn loop_sums_correctly() {
        let m = loop_module();
        verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let r = interp.run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Completed(45));
        assert_eq!(crate::interp::decode_output(&r.output), vec!["i64:45"]);
        assert!(r.dyn_insts > 50);
        assert!(r.fault_sites > 0);
        assert!(r.fault_sites < r.dyn_insts, "stores/branches are not sites");
    }

    #[test]
    fn profile_counts_loop_body() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let r = interp.profile_run(&ExecConfig::default());
        let p = r.profile.unwrap();
        // The loop-body add executes 10 times.
        let f = FuncId(0);
        // find the Add instruction ids
        let adds: Vec<InstId> = m.functions[0]
            .insts
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d.kind, InstKind::Bin { op: BinOp::Add, .. }))
            .map(|(i, _)| InstId(i as u32))
            .collect();
        for a in adds {
            assert_eq!(p.count(f, a), 10);
        }
    }

    #[test]
    fn function_calls_and_recursion() {
        // fib(n) recursive
        let mut mb = ModuleBuilder::new("fib");
        let fib = mb.declare_func("fib", vec![Type::I64], Some(Type::I64));
        let mut fb = FuncBuilder::new("fib", vec![Type::I64], Some(Type::I64));
        let base = fb.new_block("base");
        let rec = fb.new_block("rec");
        let c = fb.icmp(IPred::Slt, Type::I64, Op::param(0), Op::ci64(2));
        fb.br(Op::inst(c), base, rec);
        fb.switch_to(base);
        fb.ret(Some(Op::param(0)));
        fb.switch_to(rec);
        let n1 = fb.bin(BinOp::Sub, Type::I64, Op::param(0), Op::ci64(1));
        let n2 = fb.bin(BinOp::Sub, Type::I64, Op::param(0), Op::ci64(2));
        let f1 = fb.call(fib, vec![Op::inst(n1)]);
        let f2 = fb.call(fib, vec![Op::inst(n2)]);
        let s = fb.bin(BinOp::Add, Type::I64, Op::inst(f1), Op::inst(f2));
        fb.ret(Some(Op::inst(s)));
        mb.define_func(fib, fb.finish());

        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let r = fb.call(fib, vec![Op::ci64(10)]);
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let r = interp.run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Completed(55));
    }

    #[test]
    fn fault_flips_result_bit() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let golden = interp.run(&ExecConfig::default(), None);
        // Inject into the very last fault site (the final load of s), bit 1.
        let spec = FaultSpec::single(golden.fault_sites - 1, 1);
        let faulty = interp.run(&ExecConfig::default(), Some(spec));
        assert!(faulty.injected_at.is_some());
        // 45 ^ 2 = 47
        assert_eq!(faulty.status, ExecStatus::Completed(47));
        assert!(!faulty.matches_output(&golden));
    }

    #[test]
    fn fault_can_be_benign() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let golden = interp.run(&ExecConfig::default(), None);
        // Inject into the loop-exit compare's *first* execution, which only
        // affects an intermediate i; flipping a high bit of the bool (mod 1
        // bit width -> bit 0) flips the branch though. Instead flip the
        // *alloca result* high bit? That would corrupt addresses. Use a
        // benign case: flip bit of iv load at final iteration-compare; the
        // simplest reliable benign case is flipping the same site twice is
        // not possible, so instead assert that SOME site is benign.
        let mut any_benign = false;
        for site in 0..golden.fault_sites {
            let r = interp.run(&ExecConfig::default(), Some(FaultSpec::single(site, 0)));
            if r.matches_output(&golden) {
                any_benign = true;
                break;
            }
        }
        assert!(any_benign, "expected at least one benign site");
    }

    #[test]
    fn fault_in_pointer_traps() {
        // A gep result IS a fault site; flipping a high bit yields a wild
        // pointer and the access traps (DUE).
        let mut mb = ModuleBuilder::new("p");
        let g = mb.global_i64("data", &[1, 2, 3]);
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let p = fb.gep(Op::Global(g), Op::ci64(1), Type::I64);
        let v = fb.load(Type::I64, Op::inst(p));
        fb.ret(Some(Op::inst(v)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let interp = Interpreter::new(&m);
        let r = interp.run(&ExecConfig::default(), Some(FaultSpec::single(0, 60)));
        assert!(matches!(r.status, ExecStatus::Trapped(TrapKind::OobLoad)), "{:?}", r.status);
    }

    #[test]
    fn allocas_and_call_returns_are_not_fault_sites() {
        // A function whose body is nothing but allocas and a call: the only
        // sites are the callee's compute instructions.
        let mut mb = ModuleBuilder::new("s");
        let callee = mb.declare_func("f", vec![], Some(Type::I64));
        let mut fb = FuncBuilder::new("f", vec![], Some(Type::I64));
        let v = fb.bin(BinOp::Add, Type::I64, Op::ci64(1), Op::ci64(2));
        fb.ret(Some(Op::inst(v)));
        mb.define_func(callee, fb.finish());
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let _a = fb.alloca(Type::I64, 4);
        let _b = fb.alloca(Type::I64, 4);
        let r = fb.call(callee, vec![]);
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let res = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(res.status, ExecStatus::Completed(3));
        assert_eq!(res.fault_sites, 1, "only the callee's add is a site");
    }

    #[test]
    fn inst_limit_catches_livelock() {
        let m = loop_module();
        let interp = Interpreter::new(&m);
        let cfg = ExecConfig { max_dyn_insts: 20, ..Default::default() };
        let r = interp.run(&cfg, None);
        assert_eq!(r.status, ExecStatus::Trapped(TrapKind::InstLimit));
    }

    #[test]
    fn detect_error_halts_with_detected() {
        let mut mb = ModuleBuilder::new("d");
        let mut fb = FuncBuilder::new("main", vec![], None);
        fb.intrinsic(Intrinsic::DetectError, vec![]);
        fb.ret(None);
        mb.add_func(fb.finish());
        let m = mb.finish();
        let interp = Interpreter::new(&m);
        let r = interp.run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Detected);
    }

    #[test]
    fn globals_readable_and_writable() {
        let mut mb = ModuleBuilder::new("g");
        let g = mb.global_i64("data", &[7, 8, 9]);
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let p1 = fb.gep(Op::Global(g), Op::ci64(2), Type::I64);
        let v = fb.load(Type::I64, Op::inst(p1));
        let p0 = fb.gep(Op::Global(g), Op::ci64(0), Type::I64);
        fb.store(Type::I64, Op::inst(v), Op::inst(p0));
        let v2 = fb.load(Type::I64, Op::inst(p0));
        fb.ret(Some(Op::inst(v2)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        verify_module(&m).unwrap();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Completed(9));
    }

    #[test]
    fn call_depth_trap() {
        let mut mb = ModuleBuilder::new("rec");
        let f = mb.declare_func("inf", vec![], None);
        let mut fb = FuncBuilder::new("inf", vec![], None);
        fb.call(f, vec![]);
        fb.ret(None);
        mb.define_func(f, fb.finish());
        let mut fb = FuncBuilder::new("main", vec![], None);
        fb.call(f, vec![]);
        fb.ret(None);
        mb.add_func(fb.finish());
        let m = mb.finish();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Trapped(TrapKind::CallDepth));
    }
}
