//! Flat, bounds-checked memory image shared by the IR interpreter (and
//! mirrored by the machine simulator in `flowery-backend`).
//!
//! Layout:
//!
//! ```text
//!   0x0000 .. 0x1000   reserved null guard page (all access traps)
//!   0x1000 .. G        module globals, in declaration order, aligned
//!   G      .. L        free (heap; unused by the current workloads)
//!   L      .. top      stack, growing downward from `top`
//! ```
//!
//! Faulty executions frequently produce wild pointers; every access is
//! bounds- and guard-checked so those become `Trap`s (the paper's DUE
//! outcome) rather than UB in the host.

use crate::module::{GlobalInit, Module};
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Base address of the globals segment.
pub const GLOBAL_BASE: u64 = 0x1000;

/// Granularity of dirty tracking and snapshot deltas.
pub const PAGE_SIZE: u64 = 4096;

/// A sparse page image: page index → page contents. Pages absent from the
/// map are identical to the base image. Contents are `Arc`-shared so
/// successive snapshots of a stable working set cost one pointer per page.
pub type PageMap = HashMap<u32, Arc<[u8]>>;

/// Why an execution stopped abnormally. These map to the paper's DUE
/// (detected unrecoverable error) failure class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrapKind {
    /// Load outside mapped memory or inside the null guard page.
    OobLoad,
    /// Store outside mapped memory or inside the null guard page.
    OobStore,
    /// Integer division by zero (or overflowing INT_MIN / -1).
    DivFault,
    /// Dynamic instruction budget exhausted (fault-induced livelock).
    InstLimit,
    /// Call depth exceeded (fault-induced runaway recursion).
    CallDepth,
    /// Stack pointer escaped the stack segment.
    StackOverflow,
    /// Control reached an `unreachable` terminator / bad control transfer.
    BadControl,
    /// Output stream exceeded its limit (fault-induced output flood).
    OutputFlood,
}

/// Byte-addressed memory image.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    /// Lowest valid stack address; below this is the heap/global area.
    stack_limit: u64,
    /// One bit per [`PAGE_SIZE`] page, set by every successful store. The
    /// snapshot machinery uses it to capture cheap deltas and to revert a
    /// scratch image between trials; plain executions pay only the two
    /// bit-set operations per store.
    dirty: Vec<u64>,
}

impl Memory {
    /// Create an image of `size` bytes with the given stack reservation and
    /// the module's globals materialized at [`GLOBAL_BASE`].
    ///
    /// The fresh image has an empty dirty set: globals materialized here
    /// are part of the *base* state that snapshot deltas are relative to.
    pub fn new(m: &Module, size: u64, stack_size: u64) -> Memory {
        assert!(size >= GLOBAL_BASE + stack_size + 0x1000, "memory too small");
        let pages = size.div_ceil(PAGE_SIZE) as usize;
        let mut mem = Memory {
            bytes: vec![0u8; size as usize],
            stack_limit: size - stack_size,
            dirty: vec![0u64; pages.div_ceil(64)],
        };
        let mut cursor = GLOBAL_BASE;
        for g in &m.globals {
            cursor = align_up(cursor, g.elem.align());
            let base = cursor;
            if let GlobalInit::Elems(vals) = &g.init {
                for (i, &v) in vals.iter().enumerate() {
                    mem.write_unchecked(base + i as u64 * g.elem.size(), g.elem.size(), v);
                }
            }
            cursor += g.size();
            assert!(cursor <= mem.stack_limit, "globals overflow memory image");
        }
        mem
    }

    /// Address of global number `idx` (same placement algorithm as `new`).
    pub fn layout_globals(m: &Module) -> Vec<u64> {
        let mut out = Vec::with_capacity(m.globals.len());
        let mut cursor = GLOBAL_BASE;
        for g in &m.globals {
            cursor = align_up(cursor, g.elem.align());
            out.push(cursor);
            cursor += g.size();
        }
        out
    }

    /// End of the globals segment (first free heap byte).
    pub fn globals_end(m: &Module) -> u64 {
        Memory::layout_globals(m).last().map_or(GLOBAL_BASE, |_| {
            let mut cursor = GLOBAL_BASE;
            for g in &m.globals {
                cursor = align_up(cursor, g.elem.align());
                cursor += g.size();
            }
            cursor
        })
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Lowest valid stack address.
    pub fn stack_limit(&self) -> u64 {
        self.stack_limit
    }

    /// Initial stack pointer (top of memory, 16-byte aligned).
    pub fn initial_sp(&self) -> u64 {
        self.size() & !0xF
    }

    #[inline(always)]
    fn in_bounds(&self, addr: u64, width: u64) -> bool {
        addr >= GLOBAL_BASE && addr.checked_add(width).is_some_and(|end| end <= self.size())
    }

    /// Checked load of `width` bytes (1/2/4/8), little-endian, zero-extended.
    pub fn load(&self, addr: u64, width: u64) -> Result<u64, TrapKind> {
        if !self.in_bounds(addr, width) {
            return Err(TrapKind::OobLoad);
        }
        Ok(self.read_unchecked(addr, width))
    }

    /// Checked store of the low `width` bytes of `val`, little-endian.
    pub fn store(&mut self, addr: u64, width: u64, val: u64) -> Result<(), TrapKind> {
        if !self.in_bounds(addr, width) {
            return Err(TrapKind::OobStore);
        }
        self.mark_dirty(addr, width);
        self.write_unchecked(addr, width, val);
        Ok(())
    }

    /// Width-specialized checked load for engines that know the access
    /// width statically (the machine layer's pre-lowered executor): the
    /// byte copy compiles to one fixed-size move instead of a variable
    /// `memcpy`. Semantics are identical to [`Memory::load`] with `W`.
    #[inline(always)]
    pub fn load_w<const W: usize>(&self, addr: u64) -> Result<u64, TrapKind> {
        if !self.in_bounds(addr, W as u64) {
            return Err(TrapKind::OobLoad);
        }
        let a = addr as usize;
        let mut buf = [0u8; 8];
        buf[..W].copy_from_slice(&self.bytes[a..a + W]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Width-specialized checked store; see [`Memory::load_w`].
    #[inline(always)]
    pub fn store_w<const W: usize>(&mut self, addr: u64, val: u64) -> Result<(), TrapKind> {
        if !self.in_bounds(addr, W as u64) {
            return Err(TrapKind::OobStore);
        }
        self.mark_dirty(addr, W as u64);
        let a = addr as usize;
        self.bytes[a..a + W].copy_from_slice(&val.to_le_bytes()[..W]);
        Ok(())
    }

    /// Typed load.
    pub fn load_ty(&self, addr: u64, ty: Type) -> Result<u64, TrapKind> {
        self.load(addr, ty.size()).map(|v| ty.canon(v))
    }

    /// Typed store.
    pub fn store_ty(&mut self, addr: u64, ty: Type, val: u64) -> Result<(), TrapKind> {
        self.store(addr, ty.size(), ty.canon(val))
    }

    fn read_unchecked(&self, addr: u64, width: u64) -> u64 {
        let a = addr as usize;
        let mut buf = [0u8; 8];
        buf[..width as usize].copy_from_slice(&self.bytes[a..a + width as usize]);
        u64::from_le_bytes(buf)
    }

    fn write_unchecked(&mut self, addr: u64, width: u64, val: u64) {
        let a = addr as usize;
        self.bytes[a..a + width as usize].copy_from_slice(&val.to_le_bytes()[..width as usize]);
    }

    // ---- page-granular dirty tracking (snapshot fast-forward) ----------

    #[inline]
    fn mark_dirty(&mut self, addr: u64, width: u64) {
        let first = (addr / PAGE_SIZE) as usize;
        let last = ((addr + width - 1) / PAGE_SIZE) as usize;
        self.dirty[first >> 6] |= 1 << (first & 63);
        if last != first {
            self.dirty[last >> 6] |= 1 << (last & 63);
        }
    }

    #[inline]
    fn mark_page(&mut self, page: u32) {
        self.dirty[page as usize >> 6] |= 1 << (page as usize & 63);
    }

    /// Number of [`PAGE_SIZE`] pages (the last one may be partial).
    pub fn page_count(&self) -> u32 {
        (self.size().div_ceil(PAGE_SIZE)) as u32
    }

    /// The bytes of one page (shorter for a trailing partial page).
    pub fn page_slice(&self, page: u32) -> &[u8] {
        let start = page as usize * PAGE_SIZE as usize;
        let end = (start + PAGE_SIZE as usize).min(self.bytes.len());
        &self.bytes[start..end]
    }

    /// Pages written since the last drain, in ascending order; clears the
    /// dirty set.
    pub fn drain_dirty_pages(&mut self) -> Vec<u32> {
        let mut out = Vec::new();
        for (w, word) in self.dirty.iter_mut().enumerate() {
            let mut bits = *word;
            *word = 0;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((w as u32) * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Revert this image to `base` overlaid with `pages`, touching only
    /// pages known to differ: every currently dirty page is restored from
    /// `base`, then the overlay pages are applied (and marked dirty, so a
    /// later `reset_to` knows to revert them again).
    ///
    /// Correctness rests on the invariant that a page never marked dirty
    /// is byte-identical to `base` — which holds because this image
    /// started as a clone of `base` and every store marks its pages.
    pub fn reset_to(&mut self, base: &Memory, pages: &PageMap) {
        debug_assert_eq!(self.size(), base.size(), "snapshot base size mismatch");
        for page in self.drain_dirty_pages() {
            if !pages.contains_key(&page) {
                let start = page as usize * PAGE_SIZE as usize;
                let end = (start + PAGE_SIZE as usize).min(self.bytes.len());
                self.bytes[start..end].copy_from_slice(&base.bytes[start..end]);
            }
        }
        for (&page, data) in pages {
            let start = page as usize * PAGE_SIZE as usize;
            self.bytes[start..start + data.len()].copy_from_slice(data);
            self.mark_page(page);
        }
    }
}

/// Accumulates the cumulative page overlay of a snapshot chain: after each
/// [`PageRecorder::sync`], the returned map turns the base image into the
/// current one. Pages unchanged since the previous sync are shared by
/// `Arc`, so a run with a stable working set pays one page copy per page
/// actually rewritten, not per snapshot.
#[derive(Default)]
pub struct PageRecorder {
    cum: PageMap,
    /// Weak handle to every page copy ever made, for live-byte accounting:
    /// a copy stays "live" while any snapshot (or the cumulative overlay
    /// itself) still holds it, so dropping snapshots that were the sole
    /// owners of superseded page versions lowers [`PageRecorder::live_bytes`].
    copies: Vec<std::sync::Weak<[u8]>>,
}

impl PageRecorder {
    pub fn new() -> PageRecorder {
        PageRecorder::default()
    }

    /// A recorder whose cumulative overlay starts from an existing snapshot
    /// overlay (shared-prefix continuation capture). The inherited pages are
    /// `Arc`-shared with their origin set and are *not* registered for
    /// live-byte accounting: only pages this recorder copies itself count
    /// against a budget, since the inherited ones cost nothing extra.
    pub fn from_overlay(pages: &PageMap) -> PageRecorder {
        PageRecorder { cum: pages.clone(), copies: Vec::new() }
    }

    /// Fold the pages dirtied since the last sync into the cumulative
    /// overlay and return a snapshot of it.
    pub fn sync(&mut self, mem: &mut Memory) -> PageMap {
        for page in mem.drain_dirty_pages() {
            let data: Arc<[u8]> = Arc::from(mem.page_slice(page));
            self.copies.push(Arc::downgrade(&data));
            self.cum.insert(page, data);
        }
        self.cum.clone()
    }

    /// Total bytes of page copies still referenced by any snapshot or by
    /// the cumulative overlay. The floor is one copy per distinct dirty
    /// page (the overlay always needs the latest version); rewritten pages
    /// held only by older snapshots add to it until those snapshots drop.
    pub fn live_bytes(&mut self) -> u64 {
        self.copies.retain(|w| w.strong_count() > 0);
        self.copies.iter().filter_map(|w| w.upgrade()).map(|p| p.len() as u64).sum()
    }
}

/// Round `v` up to a multiple of `align` (a power of two).
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn null_page_traps() {
        let m = Module::default();
        let mem = Memory::new(&m, 1 << 20, 1 << 16);
        assert_eq!(mem.load(0, 8), Err(TrapKind::OobLoad));
        assert_eq!(mem.load(0xFFF, 1), Err(TrapKind::OobLoad));
        let mut mem = mem;
        assert_eq!(mem.store(8, 4, 1), Err(TrapKind::OobStore));
    }

    #[test]
    fn out_of_range_traps() {
        let m = Module::default();
        let mut mem = Memory::new(&m, 1 << 20, 1 << 16);
        let sz = mem.size();
        assert_eq!(mem.load(sz, 1), Err(TrapKind::OobLoad));
        assert_eq!(mem.load(sz - 4, 8), Err(TrapKind::OobLoad));
        assert_eq!(mem.store(u64::MAX - 2, 8, 0), Err(TrapKind::OobStore));
        assert!(mem.store(sz - 8, 8, 0xdead).is_ok());
    }

    #[test]
    fn round_trip_widths() {
        let m = Module::default();
        let mut mem = Memory::new(&m, 1 << 20, 1 << 16);
        for (w, v) in [(1u64, 0xABu64), (2, 0xBEEF), (4, 0xDEADBEEF), (8, 0x0123456789ABCDEF)] {
            mem.store(0x2000, w, v).unwrap();
            assert_eq!(mem.load(0x2000, w).unwrap(), v);
        }
    }

    #[test]
    fn globals_materialized() {
        let mut mb = ModuleBuilder::new("m");
        mb.global_i64("a", &[10, 20]);
        mb.global_f64("b", &[1.5]);
        let m = mb.finish();
        let mem = Memory::new(&m, 1 << 20, 1 << 16);
        let addrs = Memory::layout_globals(&m);
        assert_eq!(mem.load(addrs[0], 8).unwrap(), 10);
        assert_eq!(mem.load(addrs[0] + 8, 8).unwrap(), 20);
        assert_eq!(f64::from_bits(mem.load(addrs[1], 8).unwrap()), 1.5);
        assert_eq!(Memory::globals_end(&m), addrs[1] + 8);
    }

    use crate::module::Module;

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 4), 12);
    }

    #[test]
    fn dirty_tracking_and_reset_roundtrip() {
        let m = Module::default();
        let base = Memory::new(&m, 1 << 20, 1 << 16);
        let mut mem = base.clone();
        assert!(mem.drain_dirty_pages().is_empty(), "fresh image is clean");
        // A store spanning a page boundary dirties both pages.
        mem.store(2 * PAGE_SIZE - 4, 8, 0xAABBCCDD_EEFF0011).unwrap();
        mem.store(0x2000, 8, 42).unwrap();
        let dirty = mem.drain_dirty_pages();
        assert_eq!(dirty, vec![1, 2]);
        assert!(mem.drain_dirty_pages().is_empty(), "drain clears the set");

        // Build an overlay from a recorder, then reset a scratch image.
        let mut golden = base.clone();
        let mut rec = PageRecorder::new();
        golden.store(0x2000, 8, 7).unwrap();
        let pages1 = rec.sync(&mut golden);
        golden.store(0x5000, 8, 9).unwrap();
        let pages2 = rec.sync(&mut golden);
        assert_eq!(pages1.len(), 1);
        assert_eq!(pages2.len(), 2);

        let mut scratch = base.clone();
        scratch.store(0x7000, 8, 0xDEAD).unwrap(); // trial-local damage
        scratch.reset_to(&base, &pages2);
        assert_eq!(scratch.load(0x2000, 8).unwrap(), 7);
        assert_eq!(scratch.load(0x5000, 8).unwrap(), 9);
        assert_eq!(scratch.load(0x7000, 8).unwrap(), 0, "trial damage reverted");
        // Resetting to the earlier overlay must undo the later one.
        scratch.reset_to(&base, &pages1);
        assert_eq!(scratch.load(0x2000, 8).unwrap(), 7);
        assert_eq!(scratch.load(0x5000, 8).unwrap(), 0);
    }

    #[test]
    fn typed_access_canonicalizes() {
        let m = Module::default();
        let mut mem = Memory::new(&m, 1 << 20, 1 << 16);
        mem.store_ty(0x2000, Type::I8, 0x1FF).unwrap();
        assert_eq!(mem.load_ty(0x2000, Type::I8).unwrap(), 0xFF);
    }
}
