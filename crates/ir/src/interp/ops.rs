//! Scalar operation semantics, shared verbatim by the IR interpreter and the
//! machine simulator in `flowery-backend`.
//!
//! Keeping a single implementation guarantees the two layers compute
//! identical results on fault-free runs, so any cross-layer divergence in
//! the experiments comes from *protection structure*, never from semantics.

use crate::inst::{BinOp, CastKind, FPred, IPred, Intrinsic};
use crate::interp::memory::TrapKind;
use crate::types::Type;

/// Evaluate a binary operation on canonical values. Shift amounts are masked
/// by the bit width (x86 semantics), keeping IR and assembly consistent.
pub fn eval_bin(op: BinOp, ty: Type, a: u64, b: u64) -> Result<u64, TrapKind> {
    if op.is_float() {
        return Ok(eval_fbin(op, ty, a, b));
    }
    let bits = ty.bits();
    let sa = ty.sext(a);
    let sb = ty.sext(b);
    let shift_mask = (bits.max(1) - 1) as u64;
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if sb == 0 || (sa == min_signed(bits) && sb == -1) {
                return Err(TrapKind::DivFault);
            }
            (sa / sb) as u64
        }
        BinOp::UDiv => {
            if b == 0 {
                return Err(TrapKind::DivFault);
            }
            a / b
        }
        BinOp::SRem => {
            if sb == 0 || (sa == min_signed(bits) && sb == -1) {
                return Err(TrapKind::DivFault);
            }
            (sa % sb) as u64
        }
        BinOp::URem => {
            if b == 0 {
                return Err(TrapKind::DivFault);
            }
            a % b
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a << (b & shift_mask),
        BinOp::LShr => a >> (b & shift_mask),
        BinOp::AShr => (sa >> (b & shift_mask)) as u64,
        _ => unreachable!("float op handled above"),
    };
    Ok(ty.canon(r))
}

fn min_signed(bits: u32) -> i64 {
    if bits == 64 {
        i64::MIN
    } else {
        -(1i64 << (bits - 1))
    }
}

fn eval_fbin(op: BinOp, ty: Type, a: u64, b: u64) -> u64 {
    match ty {
        Type::F64 => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            let r = match op {
                BinOp::FAdd => x + y,
                BinOp::FSub => x - y,
                BinOp::FMul => x * y,
                BinOp::FDiv => x / y,
                _ => unreachable!(),
            };
            r.to_bits()
        }
        Type::F32 => {
            let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
            let r = match op {
                BinOp::FAdd => x + y,
                BinOp::FSub => x - y,
                BinOp::FMul => x * y,
                BinOp::FDiv => x / y,
                _ => unreachable!(),
            };
            r.to_bits() as u64
        }
        _ => unreachable!("float op on non-float type (verifier-rejected)"),
    }
}

/// Evaluate an integer comparison; returns 0 or 1.
pub fn eval_icmp(pred: IPred, ty: Type, a: u64, b: u64) -> u64 {
    let (sa, sb) = (ty.sext(a), ty.sext(b));
    let r = match pred {
        IPred::Eq => a == b,
        IPred::Ne => a != b,
        IPred::Slt => sa < sb,
        IPred::Sle => sa <= sb,
        IPred::Sgt => sa > sb,
        IPred::Sge => sa >= sb,
        IPred::Ult => a < b,
        IPred::Ule => a <= b,
        IPred::Ugt => a > b,
        IPred::Uge => a >= b,
    };
    r as u64
}

/// Evaluate a float comparison; unordered inputs compare false.
pub fn eval_fcmp(pred: FPred, ty: Type, a: u64, b: u64) -> u64 {
    let (x, y) = match ty {
        Type::F64 => (f64::from_bits(a), f64::from_bits(b)),
        Type::F32 => (f32::from_bits(a as u32) as f64, f32::from_bits(b as u32) as f64),
        _ => unreachable!("fcmp on non-float"),
    };
    let r = match pred {
        FPred::Oeq => x == y,
        FPred::One => x != y && !x.is_nan() && !y.is_nan(),
        FPred::Olt => x < y,
        FPred::Ole => x <= y,
        FPred::Ogt => x > y,
        FPred::Oge => x >= y,
    };
    r as u64
}

/// Evaluate a cast.
pub fn eval_cast(kind: CastKind, from: Type, to: Type, v: u64) -> u64 {
    match kind {
        CastKind::Zext => to.canon(v),
        CastKind::Sext => to.canon(from.sext(v) as u64),
        CastKind::Trunc => to.canon(v),
        CastKind::SiToFp => {
            let s = from.sext(v);
            match to {
                Type::F64 => (s as f64).to_bits(),
                Type::F32 => (s as f32).to_bits() as u64,
                _ => unreachable!(),
            }
        }
        CastKind::FpToSi => {
            let x = match from {
                Type::F64 => f64::from_bits(v),
                Type::F32 => f32::from_bits(v as u32) as f64,
                _ => unreachable!(),
            };
            // Saturating conversion (Rust `as` semantics); real x86 cvttsd2si
            // produces INT_MIN on overflow, but no golden-path workload
            // overflows, and saturation keeps faulty paths well defined.
            let s = x as i64;
            to.canon(s as u64)
        }
        CastKind::FpCast => match (from, to) {
            (Type::F32, Type::F64) => (f32::from_bits(v as u32) as f64).to_bits(),
            (Type::F64, Type::F32) => ((f64::from_bits(v) as f32).to_bits()) as u64,
            _ => unreachable!(),
        },
        CastKind::Bitcast => to.canon(v),
    }
}

/// Evaluate a pure math intrinsic on f64 bit patterns.
pub fn eval_math(which: Intrinsic, args: &[u64]) -> u64 {
    let a = |i: usize| f64::from_bits(args[i]);
    let r = match which {
        Intrinsic::Sqrt => a(0).sqrt(),
        Intrinsic::Sin => a(0).sin(),
        Intrinsic::Cos => a(0).cos(),
        Intrinsic::Exp => a(0).exp(),
        Intrinsic::Log => a(0).ln(),
        Intrinsic::Fabs => a(0).abs(),
        Intrinsic::Floor => a(0).floor(),
        Intrinsic::Pow => a(0).powf(a(1)),
        _ => unreachable!("not a math intrinsic"),
    };
    r.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps_at_width() {
        assert_eq!(eval_bin(BinOp::Add, Type::I8, 0xFF, 1).unwrap(), 0);
        assert_eq!(eval_bin(BinOp::Add, Type::I32, 0xFFFF_FFFF, 1).unwrap(), 0);
        assert_eq!(eval_bin(BinOp::Add, Type::I64, u64::MAX, 1).unwrap(), 0);
    }

    #[test]
    fn sdiv_semantics() {
        assert_eq!(
            eval_bin(BinOp::SDiv, Type::I32, Type::I32.canon(-7i64 as u64), 2).unwrap(),
            Type::I32.canon(-3i64 as u64)
        );
        assert_eq!(eval_bin(BinOp::SDiv, Type::I32, 5, 0), Err(TrapKind::DivFault));
        let int_min = Type::I32.canon(i32::MIN as i64 as u64);
        let neg1 = Type::I32.canon(-1i64 as u64);
        assert_eq!(eval_bin(BinOp::SDiv, Type::I32, int_min, neg1), Err(TrapKind::DivFault));
    }

    #[test]
    fn srem_and_urem() {
        assert_eq!(
            eval_bin(BinOp::SRem, Type::I32, Type::I32.canon(-7i64 as u64), 3).unwrap(),
            Type::I32.canon(-1i64 as u64)
        );
        assert_eq!(eval_bin(BinOp::URem, Type::I32, 7, 3).unwrap(), 1);
        assert_eq!(eval_bin(BinOp::URem, Type::I32, 7, 0), Err(TrapKind::DivFault));
    }

    #[test]
    fn shifts_mask_amount() {
        // x86 masks the shift amount by width-1.
        assert_eq!(eval_bin(BinOp::Shl, Type::I32, 1, 33).unwrap(), 2);
        assert_eq!(eval_bin(BinOp::LShr, Type::I32, 0x8000_0000, 31).unwrap(), 1);
        assert_eq!(eval_bin(BinOp::AShr, Type::I32, 0x8000_0000, 31).unwrap(), 0xFFFF_FFFF);
    }

    #[test]
    fn icmp_signedness() {
        let m1 = Type::I32.canon(-1i64 as u64);
        assert_eq!(eval_icmp(IPred::Slt, Type::I32, m1, 0), 1);
        assert_eq!(eval_icmp(IPred::Ult, Type::I32, m1, 0), 0);
        assert_eq!(eval_icmp(IPred::Eq, Type::I32, 5, 5), 1);
        assert_eq!(eval_icmp(IPred::Sge, Type::I32, 5, 5), 1);
    }

    #[test]
    fn fcmp_handles_nan() {
        let nan = f64::NAN.to_bits();
        let one = 1.0f64.to_bits();
        assert_eq!(eval_fcmp(FPred::Oeq, Type::F64, nan, one), 0);
        assert_eq!(eval_fcmp(FPred::One, Type::F64, nan, one), 0);
        assert_eq!(eval_fcmp(FPred::Olt, Type::F64, one, 2.0f64.to_bits()), 1);
    }

    #[test]
    fn casts() {
        assert_eq!(eval_cast(CastKind::Sext, Type::I8, Type::I32, 0xFF), 0xFFFF_FFFF);
        assert_eq!(eval_cast(CastKind::Zext, Type::I8, Type::I32, 0xFF), 0xFF);
        assert_eq!(eval_cast(CastKind::Trunc, Type::I32, Type::I8, 0x1FF), 0xFF);
        assert_eq!(
            f64::from_bits(eval_cast(CastKind::SiToFp, Type::I32, Type::F64, Type::I32.canon(-2i64 as u64))),
            -2.0
        );
        assert_eq!(eval_cast(CastKind::FpToSi, Type::F64, Type::I32, 3.99f64.to_bits()), 3);
        assert_eq!(
            f64::from_bits(eval_cast(CastKind::FpCast, Type::F32, Type::F64, 1.5f32.to_bits() as u64)),
            1.5
        );
    }

    #[test]
    fn fp_to_si_saturates() {
        assert_eq!(
            eval_cast(CastKind::FpToSi, Type::F64, Type::I32, 1e300f64.to_bits()),
            Type::I32.canon(i64::MAX as u64)
        );
    }

    #[test]
    fn float_arith() {
        let r = eval_bin(BinOp::FMul, Type::F64, 3.0f64.to_bits(), 0.5f64.to_bits()).unwrap();
        assert_eq!(f64::from_bits(r), 1.5);
        let r32 = eval_bin(BinOp::FAdd, Type::F32, 1.5f32.to_bits() as u64, 0.25f32.to_bits() as u64).unwrap();
        assert_eq!(f32::from_bits(r32 as u32), 1.75);
    }

    #[test]
    fn math_intrinsics() {
        assert_eq!(f64::from_bits(eval_math(Intrinsic::Sqrt, &[4.0f64.to_bits()])), 2.0);
        assert_eq!(f64::from_bits(eval_math(Intrinsic::Pow, &[2.0f64.to_bits(), 10.0f64.to_bits()])), 1024.0);
        assert_eq!(f64::from_bits(eval_math(Intrinsic::Fabs, &[(-3.0f64).to_bits()])), 3.0);
    }
}
