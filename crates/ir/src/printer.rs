//! LLVM-flavoured textual printer for modules, used in docs, debugging and
//! golden tests.

use crate::inst::{Callee, InstKind, Terminator};
use crate::module::{Function, GlobalInit, Module};
use crate::value::{FuncId, Op, Value};
use std::fmt::Write;

/// Render a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for g in &m.globals {
        let init = match &g.init {
            GlobalInit::Zero => "zeroinitializer".to_string(),
            GlobalInit::Elems(e) => {
                format!("[{}]", e.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "))
            }
        };
        let _ = writeln!(out, "@{} = global [{} x {}] {}", g.name, g.count, g.elem, init);
    }
    for (i, f) in m.functions.iter().enumerate() {
        out.push('\n');
        out.push_str(&print_function(m, FuncId(i as u32), f));
    }
    out
}

/// Render one function.
pub fn print_function(m: &Module, fid: FuncId, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().enumerate().map(|(i, t)| format!("{t} %arg{i}")).collect();
    let ret = f.ret_ty.map(|t| t.to_string()).unwrap_or_else(|| "void".into());
    let _ = writeln!(out, "define {ret} @{}({}) {{", f.name, params.join(", "));
    for (_bid, block) in f.iter_blocks() {
        let _ = writeln!(out, "{}:", block.label);
        for &iid in &block.insts {
            let _ = writeln!(out, "  {}", print_inst(m, fid, f, iid));
        }
        let _ = writeln!(out, "  {}", print_term(f, &block.term));
    }
    out.push_str("}\n");
    out
}

fn op_str(op: &Op) -> String {
    match op {
        Op::Value(Value::Param(p)) => format!("%arg{p}"),
        Op::Value(Value::Inst(i)) => format!("%{}", i.0),
        Op::Const(c) => c.to_string(),
        Op::Global(g) => format!("@g{}", g.0),
    }
}

fn print_inst(m: &Module, _fid: FuncId, f: &Function, iid: crate::value::InstId) -> String {
    let inst = f.inst(iid);
    let lhs = format!("%{} = ", iid.0);
    let role = match inst.role {
        crate::inst::IrRole::App => "",
        crate::inst::IrRole::Shadow => " ; shadow",
        crate::inst::IrRole::Checker => " ; checker",
        crate::inst::IrRole::Patch => " ; patch",
    };
    let body = match &inst.kind {
        InstKind::Alloca { elem, count } => format!("{lhs}alloca {elem} x {count}"),
        InstKind::Load { ptr, ty } => format!("{lhs}load {ty}, {}", op_str(ptr)),
        InstKind::Store { val, ptr, ty } => {
            format!("store {ty} {}, {}", op_str(val), op_str(ptr))
        }
        InstKind::Bin { op, ty, lhs: a, rhs: b } => {
            format!("{lhs}{} {ty} {}, {}", op.mnemonic(), op_str(a), op_str(b))
        }
        InstKind::ICmp { pred, ty, lhs: a, rhs: b } => {
            format!("{lhs}icmp {} {ty} {}, {}", pred.mnemonic(), op_str(a), op_str(b))
        }
        InstKind::FCmp { pred, ty, lhs: a, rhs: b } => {
            format!("{lhs}fcmp {} {ty} {}, {}", pred.mnemonic(), op_str(a), op_str(b))
        }
        InstKind::Cast { kind, from, to, val } => {
            format!("{lhs}{:?} {} : {from} -> {to}", kind, op_str(val)).to_lowercase()
        }
        InstKind::Gep { base, index, elem } => {
            format!("{lhs}gep {elem}, {}, {}", op_str(base), op_str(index))
        }
        InstKind::Select { ty, cond, t, f: fv } => {
            format!("{lhs}select {ty} {}, {}, {}", op_str(cond), op_str(t), op_str(fv))
        }
        InstKind::Call { callee, args } => {
            let args_s = args.iter().map(op_str).collect::<Vec<_>>().join(", ");
            let (name, has_ret) = match callee {
                Callee::Func(cf) => {
                    let callee_f = &m.functions[cf.index()];
                    (callee_f.name.clone(), callee_f.ret_ty.is_some())
                }
                Callee::Intrinsic(i) => (i.name().to_string(), i.ret_ty().is_some()),
            };
            if has_ret {
                format!("{lhs}call @{name}({args_s})")
            } else {
                format!("call @{name}({args_s})")
            }
        }
    };
    format!("{body}{role}")
}

fn print_term(f: &Function, t: &Terminator) -> String {
    match t {
        Terminator::Br { cond, then_bb, else_bb } => format!(
            "br {} , label %{}, label %{}",
            op_str(cond),
            f.block(*then_bb).label,
            f.block(*else_bb).label
        ),
        Terminator::Jmp { dest } => format!("br label %{}", f.block(*dest).label),
        Terminator::Ret { val: Some(v) } => format!("ret {}", op_str(v)),
        Terminator::Ret { val: None } => "ret void".into(),
        Terminator::Unreachable => "unreachable".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::inst::{BinOp, IPred};
    use crate::types::Type;

    #[test]
    fn prints_module_shape() {
        let mut mb = ModuleBuilder::new("demo");
        mb.global_i64("tbl", &[1, 2, 3]);
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I32));
        let a = fb.bin(BinOp::Add, Type::I32, Op::ci32(1), Op::ci32(2));
        let c = fb.icmp(IPred::Slt, Type::I32, Op::inst(a), Op::ci32(10));
        let t = fb.new_block("t");
        let e = fb.new_block("e");
        fb.br(Op::inst(c), t, e);
        fb.switch_to(t);
        fb.ret(Some(Op::ci32(1)));
        fb.switch_to(e);
        fb.ret(Some(Op::ci32(0)));
        mb.add_func(fb.finish());
        let text = print_module(&mb.finish());
        assert!(text.contains("; module demo"));
        assert!(text.contains("@tbl = global [3 x i64]"));
        assert!(text.contains("define i32 @main()"));
        assert!(text.contains("icmp slt"));
        assert!(text.contains("br %1 , label %t, label %e"));
        assert!(text.contains("ret i32 1"));
    }

    #[test]
    fn prints_roles() {
        let mut fb = FuncBuilder::new("f", vec![], None);
        let id = fb.bin(BinOp::Add, Type::I32, Op::ci32(1), Op::ci32(1));
        fb.ret(None);
        let mut f = fb.finish();
        f.inst_mut(id).role = crate::inst::IrRole::Shadow;
        let mut m = Module::new("m");
        let fid = m.add_function(f);
        let text = print_function(&m, fid, m.func(fid));
        assert!(text.contains("; shadow"), "{text}");
    }
}
