//! Module, function and basic-block containers, plus the mutation helpers
//! used by transformation passes (block splitting, instruction insertion,
//! use replacement).

use crate::inst::{InstData, InstKind, Terminator};
use crate::types::Type;
use crate::value::{BlockId, FuncId, GlobalId, InstId, Op, Value};
use serde::{Deserialize, Serialize};

/// Initial contents of a global variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GlobalInit {
    /// Zero-filled.
    Zero,
    /// Element-wise initial values as canonical 64-bit patterns.
    Elems(Vec<u64>),
}

/// A module-level global array (scalars are arrays of length 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    pub name: String,
    pub elem: Type,
    pub count: u64,
    pub init: GlobalInit,
}

impl Global {
    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.elem.size() * self.count
    }
}

/// A basic block: a label, a list of instruction ids, and a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub label: String,
    pub insts: Vec<InstId>,
    pub term: Terminator,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    pub params: Vec<Type>,
    pub ret_ty: Option<Type>,
    /// Instruction arena; `Block::insts` holds indices into it. Slots are
    /// never removed (passes detach ids from blocks instead), so `InstId`s
    /// stay stable across transformations.
    pub insts: Vec<InstData>,
    /// Blocks; index 0 is the entry block.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    pub fn inst(&self, id: InstId) -> &InstData {
        &self.insts[id.index()]
    }

    pub fn inst_mut(&mut self, id: InstId) -> &mut InstData {
        &mut self.insts[id.index()]
    }

    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Allocate a new instruction in the arena (not yet placed in a block).
    pub fn add_inst(&mut self, data: InstData) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(data);
        id
    }

    /// Append a fresh, empty block and return its id.
    pub fn add_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            label: label.into(),
            insts: Vec::new(),
            term: Terminator::Unreachable,
        });
        id
    }

    /// Split `block` before position `at` (0-based index into its
    /// instruction list). The new block receives the instructions from `at`
    /// onward plus the original terminator; `block` is terminated with a
    /// jump to the new block. Returns the new block's id.
    ///
    /// This is the primitive the duplication pass uses to insert checkers —
    /// and precisely the operation that, at the assembly level, forces the
    /// -O0 register allocator to flush its intra-block register cache (the
    /// root of store and branch penetration; paper §6.1/§6.2).
    pub fn split_block(&mut self, block: BlockId, at: usize) -> BlockId {
        let label = format!("{}.cont{}", self.blocks[block.index()].label, self.blocks.len());
        let new_id = self.add_block(label);
        let src = &mut self.blocks[block.index()];
        let tail: Vec<InstId> = src.insts.split_off(at);
        let term = std::mem::replace(&mut src.term, Terminator::Jmp { dest: new_id });
        let dst = &mut self.blocks[new_id.index()];
        dst.insts = tail;
        dst.term = term;
        new_id
    }

    /// Replace every use of value `from` (in instruction operands and
    /// terminators) with operand `to`. Returns the number of uses rewritten.
    pub fn replace_all_uses(&mut self, from: Value, to: Op) -> usize {
        let mut n = 0;
        let from_op = Op::Value(from);
        for inst in &mut self.insts {
            for op in inst.operands_mut() {
                if *op == from_op {
                    *op = to;
                    n += 1;
                }
            }
        }
        for block in &mut self.blocks {
            if let Some(op) = block.term.operand_mut() {
                if *op == from_op {
                    *op = to;
                    n += 1;
                }
            }
        }
        n
    }

    /// Number of *static* instructions currently reachable from blocks
    /// (terminators included, matching how the paper counts program size).
    pub fn static_size(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }

    /// Iterate `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// All instruction ids currently attached to blocks, in layout order.
    pub fn live_insts(&self) -> Vec<InstId> {
        self.blocks.iter().flat_map(|b| b.insts.iter().copied()).collect()
    }

    /// Find which block currently holds instruction `id`, with its position.
    pub fn position_of(&self, id: InstId) -> Option<(BlockId, usize)> {
        for (bi, b) in self.iter_blocks() {
            if let Some(pos) = b.insts.iter().position(|&i| i == id) {
                return Some((bi, pos));
            }
        }
        None
    }
}

/// A whole program: globals plus functions. `main` must exist to execute.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    pub globals: Vec<Global>,
    pub functions: Vec<Function>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            globals: Vec::new(),
            functions: Vec::new(),
        }
    }

    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Look up a function by name.
    pub fn find_func(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Look up a global by name.
    pub fn find_global(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(|i| GlobalId(i as u32))
    }

    /// The `main` entry function.
    pub fn main_func(&self) -> Option<FuncId> {
        self.find_func("main")
    }

    /// Result type of instruction `id` in function `f`.
    pub fn result_ty(&self, f: FuncId, id: InstId) -> Option<Type> {
        self.functions[f.index()]
            .inst(id)
            .result_ty(|callee| self.functions[callee.index()].ret_ty)
    }

    /// The type of an operand in the context of function `f`.
    pub fn op_ty(&self, f: FuncId, op: Op) -> Option<Type> {
        match op {
            Op::Const(c) => Some(c.ty()),
            Op::Global(_) => Some(Type::Ptr),
            Op::Value(Value::Param(i)) => self.functions[f.index()].params.get(i as usize).copied(),
            Op::Value(Value::Inst(id)) => self.result_ty(f, id),
        }
    }

    /// Total static instruction count across all functions.
    pub fn static_size(&self) -> usize {
        self.functions.iter().map(|f| f.static_size()).sum()
    }
}

/// Convenience: true if this instruction kind is a *synchronization point*
/// in the sense of the duplication literature: its effect escapes the
/// data-flow graph (memory write, call, control flow, output).
pub fn is_sync_point(kind: &InstKind) -> bool {
    matches!(kind, InstKind::Store { .. } | InstKind::Call { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn tiny_func() -> Function {
        let mut f = Function {
            name: "f".into(),
            params: vec![Type::I32],
            ret_ty: Some(Type::I32),
            insts: vec![],
            blocks: vec![],
        };
        let b0 = f.add_block("entry");
        let add = f.add_inst(InstData::new(InstKind::Bin {
            op: BinOp::Add,
            ty: Type::I32,
            lhs: Op::param(0),
            rhs: Op::ci32(1),
        }));
        let mul = f.add_inst(InstData::new(InstKind::Bin {
            op: BinOp::Mul,
            ty: Type::I32,
            lhs: Op::inst(add),
            rhs: Op::ci32(2),
        }));
        f.block_mut(b0).insts = vec![add, mul];
        f.block_mut(b0).term = Terminator::Ret { val: Some(Op::inst(mul)) };
        f
    }

    #[test]
    fn split_block_moves_tail_and_terminator() {
        let mut f = tiny_func();
        let new_bb = f.split_block(BlockId(0), 1);
        assert_eq!(f.block(BlockId(0)).insts.len(), 1);
        assert_eq!(f.block(new_bb).insts.len(), 1);
        assert!(matches!(f.block(BlockId(0)).term, Terminator::Jmp { dest } if dest == new_bb));
        assert!(matches!(f.block(new_bb).term, Terminator::Ret { .. }));
    }

    #[test]
    fn replace_all_uses_rewrites_operands_and_terminators() {
        let mut f = tiny_func();
        let add = InstId(0);
        let n = f.replace_all_uses(Value::Inst(add), Op::ci32(42));
        assert_eq!(n, 1);
        match &f.inst(InstId(1)).kind {
            InstKind::Bin { lhs, .. } => assert_eq!(*lhs, Op::ci32(42)),
            other => panic!("unexpected {other:?}"),
        }
        let n2 = f.replace_all_uses(Value::Inst(InstId(1)), Op::ci32(7));
        assert_eq!(n2, 1);
        assert!(matches!(f.block(BlockId(0)).term, Terminator::Ret { val: Some(v) } if v == Op::ci32(7)));
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("t");
        let f = tiny_func();
        let fid = m.add_function(f);
        assert_eq!(m.find_func("f"), Some(fid));
        assert_eq!(m.find_func("g"), None);
        assert_eq!(m.result_ty(fid, InstId(0)), Some(Type::I32));
        assert_eq!(m.op_ty(fid, Op::param(0)), Some(Type::I32));
        assert_eq!(m.op_ty(fid, Op::cf64(1.0)), Some(Type::F64));
    }

    #[test]
    fn static_size_counts_terminators() {
        let f = tiny_func();
        assert_eq!(f.static_size(), 3);
    }

    #[test]
    fn position_of_finds_block() {
        let f = tiny_func();
        assert_eq!(f.position_of(InstId(1)), Some((BlockId(0), 1)));
        let mut f2 = f.clone();
        let nb = f2.split_block(BlockId(0), 1);
        assert_eq!(f2.position_of(InstId(1)), Some((nb, 0)));
    }
}
