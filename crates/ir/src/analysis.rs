//! Control-flow analyses: predecessors, reverse postorder, dominators.
//!
//! Used by the verifier (defs dominate uses) and by the passes crate
//! (duplication must know where values are available).

use crate::module::Function;
use crate::value::BlockId;

/// Predecessor lists for every block.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for (bid, block) in f.iter_blocks() {
        for s in block.term.successors() {
            preds[s.index()].push(bid);
        }
    }
    preds
}

/// Blocks in reverse postorder from the entry. Unreachable blocks are
/// excluded.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = Vec::new();
    if n == 0 {
        return post;
    }
    visited[0] = true;
    stack.push((BlockId(0), 0));
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.block(b).term.successors();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate-dominator tree computed with the Cooper–Harvey–Kennedy
/// iterative algorithm.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; entry's idom is itself.
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse-postorder number per block (`usize::MAX` if unreachable).
    rpo_number: Vec<usize>,
}

impl DomTree {
    pub fn compute(f: &Function) -> DomTree {
        let n = f.blocks.len();
        let rpo = reverse_postorder(f);
        let mut rpo_number = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_number[b.index()] = i;
        }
        let preds = predecessors(f);
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom, rpo_number };
        }
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self_intersect(&idom, &rpo_number, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo_number }
    }

    /// Reverse-postorder index of a block (`None` if unreachable).
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        match self.rpo_number.get(b.index()) {
            Some(&n) if n != usize::MAX => Some(n),
            _ => None,
        }
    }

    /// Is `a` reachable from the entry?
    pub fn reachable(&self, b: BlockId) -> bool {
        self.idom.get(b.index()).is_some_and(|i| i.is_some())
    }

    /// Immediate dominator (entry maps to itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Does block `a` dominate block `b`? (Reflexive.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.reachable(a) || !self.reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let id = self.idom[cur.index()].expect("reachable block has idom");
            if id == cur {
                return false; // reached entry
            }
            cur = id;
        }
    }
}

/// A program point inside a function: an instruction's position within its
/// block, or the block's terminator (`TERM_POS`).
pub type Point = (BlockId, usize);

/// Position marker for a block's terminator, ordered after every body
/// instruction of the block.
pub const TERM_POS: usize = usize::MAX;

/// Positions of every live instruction: `InstId -> (block, index)`.
/// Detached instructions are absent.
pub fn inst_points(f: &Function) -> std::collections::HashMap<crate::value::InstId, Point> {
    let mut map = std::collections::HashMap::new();
    for (bid, block) in f.iter_blocks() {
        for (i, &iid) in block.insts.iter().enumerate() {
            map.insert(iid, (bid, i));
        }
    }
    map
}

impl DomTree {
    /// Does program point `a` dominate program point `b`? Within one block,
    /// earlier positions dominate later ones (reflexively); across blocks
    /// this is block dominance. Used by the sphere-of-replication invariant
    /// lint: a checker guards a sync point only if it dominates it.
    pub fn dominates_point(&self, a: Point, b: Point) -> bool {
        if a.0 == b.0 {
            return self.reachable(a.0) && a.1 <= b.1;
        }
        self.dominates(a.0, b.0)
    }
}

fn self_intersect(idom: &[Option<BlockId>], rpo_number: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while rpo_number[a.index()] > rpo_number[b.index()] {
            a = idom[a.index()].expect("processed block");
        }
        while rpo_number[b.index()] > rpo_number[a.index()] {
            b = idom[b.index()].expect("processed block");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{IPred, Terminator};
    use crate::types::Type;
    use crate::value::Op;

    /// Diamond: entry -> {l, r} -> join
    fn diamond() -> Function {
        let mut fb = FuncBuilder::new("d", vec![Type::I32], Some(Type::I32));
        let l = fb.new_block("l");
        let r = fb.new_block("r");
        let j = fb.new_block("j");
        let c = fb.icmp(IPred::Slt, Type::I32, Op::param(0), Op::ci32(0));
        fb.br(Op::inst(c), l, r);
        fb.switch_to(l);
        fb.jmp(j);
        fb.switch_to(r);
        fb.jmp(j);
        fb.switch_to(j);
        fb.ret(Some(Op::ci32(0)));
        fb.finish()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let (e, l, r, j) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert!(dt.dominates(e, l));
        assert!(dt.dominates(e, j));
        assert!(!dt.dominates(l, j));
        assert!(!dt.dominates(r, j));
        assert_eq!(dt.idom(j), Some(e));
        assert!(dt.dominates(j, j));
    }

    #[test]
    fn unreachable_blocks_are_not_reachable() {
        let mut f = diamond();
        let dead = f.add_block("dead");
        f.block_mut(dead).term = Terminator::Ret { val: Some(Op::ci32(1)) };
        let dt = DomTree::compute(&f);
        assert!(!dt.reachable(dead));
        assert!(!dt.dominates(BlockId(0), dead));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn predecessors_of_join() {
        let f = diamond();
        let preds = predecessors(&f);
        let mut p = preds[3].clone();
        p.sort();
        assert_eq!(p, vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn point_dominance_orders_within_and_across_blocks() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let (e, l, j) = (BlockId(0), BlockId(1), BlockId(3));
        // Within a block: earlier dominates later, terminator comes last.
        assert!(dt.dominates_point((e, 0), (e, 1)));
        assert!(dt.dominates_point((e, 0), (e, TERM_POS)));
        assert!(!dt.dominates_point((e, TERM_POS), (e, 0)));
        // Across blocks: plain block dominance.
        assert!(dt.dominates_point((e, TERM_POS), (j, 0)));
        assert!(!dt.dominates_point((l, 0), (j, 0)));
        // inst_points covers the entry's compare.
        let pts = inst_points(&f);
        assert!(pts.values().any(|&p| p == (e, 0)));
    }

    #[test]
    fn loop_dominators() {
        // entry -> header <-> body, header -> exit
        let mut fb = FuncBuilder::new("l", vec![Type::I32], None);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let c = fb.icmp(IPred::Slt, Type::I32, Op::param(0), Op::ci32(10));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        fb.jmp(header);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(body), Some(header));
        assert_eq!(dt.idom(exit), Some(header));
        assert!(dt.dominates(header, body));
        assert!(!dt.dominates(body, exit));
    }
}
