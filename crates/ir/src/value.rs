//! Value and operand representation.
//!
//! Every instruction that produces a result *is* a value (LLVM-style).
//! Constants are immediate operands rather than arena entities, which keeps
//! transformation passes (duplication, folding) simple.

use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an instruction within a function's instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(pub u32);

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Index of a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Index of a global variable within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

impl InstId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl FuncId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl GlobalId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A runtime-defined value: either a function parameter or the result of an
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// A compile-time constant, carried inline on operands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Const {
    /// Integer constant of the given type; the payload is the canonical
    /// (zero-extended) bit pattern.
    Int(Type, u64),
    /// `f32` constant.
    F32(f32),
    /// `f64` constant.
    F64(f64),
    /// The null pointer.
    NullPtr,
}

impl Const {
    /// Boolean `true` (`i1 1`).
    pub fn bool(v: bool) -> Const {
        Const::Int(Type::I1, v as u64)
    }

    /// `i32` constant from a signed value.
    pub fn i32(v: i32) -> Const {
        Const::Int(Type::I32, Type::I32.canon(v as i64 as u64))
    }

    /// `i64` constant from a signed value.
    pub fn i64(v: i64) -> Const {
        Const::Int(Type::I64, v as u64)
    }

    /// `i8` constant.
    pub fn i8(v: i8) -> Const {
        Const::Int(Type::I8, Type::I8.canon(v as i64 as u64))
    }

    /// The type of this constant.
    pub fn ty(self) -> Type {
        match self {
            Const::Int(t, _) => t,
            Const::F32(_) => Type::F32,
            Const::F64(_) => Type::F64,
            Const::NullPtr => Type::Ptr,
        }
    }

    /// Canonical 64-bit payload (float constants as IEEE bit patterns).
    pub fn bits(self) -> u64 {
        match self {
            Const::Int(t, v) => t.canon(v),
            Const::F32(f) => f.to_bits() as u64,
            Const::F64(f) => f.to_bits(),
            Const::NullPtr => 0,
        }
    }
}

impl Eq for Const {}

impl std::hash::Hash for Const {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        self.ty().hash(state);
        self.bits().hash(state);
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A runtime value.
    Value(Value),
    /// An inline constant.
    Const(Const),
    /// The address of a module global.
    Global(GlobalId),
}

impl Op {
    /// Shorthand for a value operand referring to an instruction result.
    pub fn inst(id: InstId) -> Op {
        Op::Value(Value::Inst(id))
    }

    /// Shorthand for a parameter operand.
    pub fn param(n: u32) -> Op {
        Op::Value(Value::Param(n))
    }

    /// Shorthand for an integer constant operand.
    pub fn cint(ty: Type, v: u64) -> Op {
        Op::Const(Const::Int(ty, ty.canon(v)))
    }

    /// Shorthand for an `i32` constant operand.
    pub fn ci32(v: i32) -> Op {
        Op::Const(Const::i32(v))
    }

    /// Shorthand for an `i64` constant operand.
    pub fn ci64(v: i64) -> Op {
        Op::Const(Const::i64(v))
    }

    /// Shorthand for an `f64` constant operand.
    pub fn cf64(v: f64) -> Op {
        Op::Const(Const::F64(v))
    }

    /// If this operand is an instruction result, its `InstId`.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Op::Value(Value::Inst(id)) => Some(id),
            _ => None,
        }
    }

    /// True if this operand is any runtime value (param or instruction).
    pub fn is_value(self) -> bool {
        matches!(self, Op::Value(_))
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(t, v) => write!(f, "{} {}", t, t.sext(*v)),
            Const::F32(x) => write!(f, "f32 {x}"),
            Const::F64(x) => write!(f, "f64 {x}"),
            Const::NullPtr => write!(f, "ptr null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_canonicalizes() {
        let c = Const::i32(-1);
        assert_eq!(c.bits(), 0xFFFF_FFFF);
        assert_eq!(c.ty(), Type::I32);
    }

    #[test]
    fn const_float_bits() {
        assert_eq!(Const::F64(1.0).bits(), 1.0f64.to_bits());
        assert_eq!(Const::F32(2.5).bits(), 2.5f32.to_bits() as u64);
    }

    #[test]
    fn op_accessors() {
        let id = InstId(7);
        assert_eq!(Op::inst(id).as_inst(), Some(id));
        assert_eq!(Op::ci32(3).as_inst(), None);
        assert!(Op::param(0).is_value());
        assert!(!Op::cf64(0.0).is_value());
    }

    #[test]
    fn const_eq_hash_consistent() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Const::i32(4));
        assert!(s.contains(&Const::i32(4)));
        assert!(!s.contains(&Const::i64(4)));
    }
}
