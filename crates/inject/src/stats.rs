//! Statistics for fault-injection results: SDC coverage and confidence
//! intervals (paper §2.1: coverage = (SDC_raw − SDC_prot) / SDC_raw).

use crate::outcome::OutcomeCounts;
use serde::{Deserialize, Serialize};

/// z-score for a two-sided 95% interval.
const Z95: f64 = 1.959963984540054;

/// A proportion estimate with a 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    pub value: f64,
    /// Half-width of the 95% Wilson score interval.
    pub ci95: f64,
}

impl Estimate {
    /// Estimate a proportion from `hits` out of `n`.
    ///
    /// `value` is the plain point estimate `hits / n`; `ci95` is the
    /// half-width of the Wilson score interval. The Wald (normal
    /// approximation) interval degenerates to width zero at p = 0 and
    /// p = 1, which would make an adaptive stopping rule declare perfect
    /// confidence after a single trial; Wilson stays strictly positive
    /// for any finite `n`.
    pub fn proportion(hits: u64, n: u64) -> Estimate {
        if n == 0 {
            return Estimate { value: 0.0, ci95: 0.0 };
        }
        let p = hits as f64 / n as f64;
        Estimate { value: p, ci95: wilson_half_width(hits, n) }
    }
}

/// Half-width of the 95% Wilson score interval for `hits` successes out
/// of `n` trials. Strictly positive for all `hits` whenever `n > 0`.
pub fn wilson_half_width(hits: u64, n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    let p = hits as f64 / n;
    let z2 = Z95 * Z95;
    (Z95 / (1.0 + z2 / n)) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt()
}

/// SDC coverage of a protection technique given raw (unprotected) and
/// protected campaign counts, measured at the same layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    /// `(SDC_raw - SDC_prot) / SDC_raw`, clamped to [0, 1].
    pub coverage: f64,
    pub sdc_raw: Estimate,
    pub sdc_prot: Estimate,
}

impl Coverage {
    pub fn compute(raw: &OutcomeCounts, prot: &OutcomeCounts) -> Coverage {
        let sdc_raw = Estimate::proportion(raw.sdc, raw.total());
        let sdc_prot = Estimate::proportion(prot.sdc, prot.total());
        let coverage = if sdc_raw.value <= 0.0 {
            1.0
        } else {
            ((sdc_raw.value - sdc_prot.value) / sdc_raw.value).clamp(0.0, 1.0)
        };
        Coverage { coverage, sdc_raw, sdc_prot }
    }

    /// Coverage as a percentage.
    pub fn percent(&self) -> f64 {
        self.coverage * 100.0
    }
}

/// Relative overhead of `b` over `a` (e.g. dynamic instructions or cycles).
pub fn relative_overhead(a: u64, b: u64) -> f64 {
    if a == 0 {
        0.0
    } else {
        (b as f64 - a as f64) / a as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportion_estimates() {
        let e = Estimate::proportion(50, 100);
        assert!((e.value - 0.5).abs() < 1e-12);
        // Wilson at p = 0.5, n = 100: close to but slightly below Wald.
        let wald = 1.96 * (0.25f64 / 100.0).sqrt();
        assert!(e.ci95 > 0.9 * wald && e.ci95 < wald, "{}", e.ci95);
        assert_eq!(Estimate::proportion(0, 0).value, 0.0);
        assert_eq!(Estimate::proportion(0, 0).ci95, 0.0);
    }

    #[test]
    fn wilson_interval_is_positive_at_extremes() {
        // The Wald interval collapses to zero width at p = 0 and p = 1;
        // Wilson must not, or adaptive stopping would fire after 1 trial.
        for n in [1u64, 10, 100, 10_000] {
            assert!(wilson_half_width(0, n) > 0.0, "n={n}");
            assert!(wilson_half_width(n, n) > 0.0, "n={n}");
        }
        // Width shrinks roughly as 1/sqrt(n).
        assert!(wilson_half_width(0, 10_000) < wilson_half_width(0, 100));
        // Point estimate stays the plain proportion even at the extremes.
        assert_eq!(Estimate::proportion(100, 100).value, 1.0);
        assert_eq!(Estimate::proportion(0, 100).value, 0.0);
    }

    #[test]
    fn coverage_formula() {
        let raw = OutcomeCounts { benign: 50, sdc: 40, detected: 0, due: 10 };
        let prot = OutcomeCounts { benign: 60, sdc: 10, detected: 25, due: 5 };
        let c = Coverage::compute(&raw, &prot);
        assert!((c.coverage - 0.75).abs() < 1e-12, "{}", c.coverage);
        assert!((c.percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_clamps() {
        let raw = OutcomeCounts { benign: 90, sdc: 10, detected: 0, due: 0 };
        let worse = OutcomeCounts { benign: 70, sdc: 30, detected: 0, due: 0 };
        assert_eq!(Coverage::compute(&raw, &worse).coverage, 0.0);
        let zero_raw = OutcomeCounts { benign: 100, sdc: 0, detected: 0, due: 0 };
        assert_eq!(Coverage::compute(&zero_raw, &zero_raw).coverage, 1.0);
    }

    #[test]
    fn overhead_math() {
        assert!((relative_overhead(100, 150) - 0.5).abs() < 1e-12);
        assert!((relative_overhead(200, 190) + 0.05).abs() < 1e-12);
        assert_eq!(relative_overhead(0, 10), 0.0);
    }
}
