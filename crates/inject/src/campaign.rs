//! Fault-injection campaigns at both layers, with parallel execution.
//!
//! Each campaign (paper §4.3): pick a random executed *fault site*, pick a
//! random bit of its destination, run to completion, classify the outcome
//! against the golden run. Every trial's fault spec is derived purely from
//! `(base seed, trial index)` — see [`ir_fault_spec`] / [`asm_fault_spec`] —
//! so campaign results are **bit-identical regardless of thread count,
//! shard layout, or early-stop point**. The large-matrix scheduler in
//! `flowery-harness` builds on the same per-trial primitives; the functions
//! here remain the convenient single-campaign entry points.

use crate::outcome::{classify, Outcome, OutcomeCounts};
use flowery_backend::{AsmFaultSpec, AsmProgram, AsmScratch, AsmSnapshotSet, MachResult, Machine};
use flowery_faultmodel::{any_catches, classify_asm_fault, classify_ir_fault, flip_count, DetectorSpec, ModelSpec};
use flowery_ir::interp::{ExecConfig, ExecResult, FaultSpec, Interpreter, IrScratch, IrSnapshotSet, Profile};
use flowery_ir::module::Module;
use flowery_ir::value::{FuncId, InstId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Campaign parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of fault injections (the paper uses 3,000 per configuration).
    pub trials: u64,
    /// Base RNG seed; trial `i` derives its fault from `(seed, i)`.
    pub seed: u64,
    /// Worker threads (0 = use all available cores).
    pub threads: usize,
    /// Inject two bit flips per fault instead of one (the emerging
    /// multi-bit model the paper cites in §2.2; default off = the standard
    /// single-bit datapath model). Legacy switch: shorthand for
    /// `fault_model: double-bit-reg`, kept for config compatibility.
    pub double_bit: bool,
    /// The fault model to sample trials from. Defaults to
    /// [`ModelSpec::SingleBitReg`], the classic single-bit register flip.
    #[serde(default)]
    pub fault_model: ModelSpec,
    /// Modeled hardware detectors running alongside the software
    /// protection; a would-be SDC in a class a detector covers is
    /// reclassified as a detection. Default: none.
    #[serde(default)]
    pub detectors: Vec<DetectorSpec>,
    /// Fast-forward trials from golden-run snapshots instead of
    /// re-executing the golden prefix (bit-identical results; default on).
    pub snapshots: bool,
    /// Collect the golden run's per-instruction execution profile during
    /// the capture run (IR campaigns only). The profile rides along in
    /// [`IrCampaign::golden_profile`] without a second golden execution.
    #[serde(default)]
    pub golden_profile: bool,
    /// Execution limits for each run.
    pub exec: ExecConfig,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            trials: 3000,
            seed: 0x0F10_EE41,
            threads: 0,
            double_bit: false,
            fault_model: ModelSpec::SingleBitReg,
            detectors: Vec::new(),
            snapshots: true,
            golden_profile: false,
            exec: ExecConfig::default(),
        }
    }
}

impl CampaignConfig {
    pub fn with_trials(trials: u64) -> CampaignConfig {
        CampaignConfig { trials, ..Default::default() }
    }

    /// The model trials are sampled from, resolving the legacy
    /// `double_bit` switch against the explicit `fault_model` field.
    pub fn effective_model(&self) -> ModelSpec {
        if self.double_bit && self.fault_model == ModelSpec::SingleBitReg {
            ModelSpec::DoubleBitReg
        } else {
            self.fault_model
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// Result of an IR-level campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IrCampaign {
    pub counts: OutcomeCounts,
    /// SDC-causing injections attributed to their static instruction.
    pub sdc_by_inst: HashMap<(FuncId, InstId), u64>,
    /// Golden-run dynamic instruction count.
    pub golden_dyn_insts: u64,
    /// Golden-run fault-site count.
    pub golden_sites: u64,
    /// Golden-prefix instructions skipped across all trials by snapshot
    /// fast-forward (0 when snapshots are disabled).
    pub ff_insts: u64,
    /// Instructions actually executed across all trials.
    pub exec_insts: u64,
    /// The golden run's per-instruction execution counts, when
    /// [`CampaignConfig::golden_profile`] was set.
    #[serde(default)]
    pub golden_profile: Option<Profile>,
}

/// Result of an assembly-level campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsmCampaign {
    pub counts: OutcomeCounts,
    /// Program instruction index of every SDC-causing injection — the
    /// input to penetration root-cause classification.
    pub sdc_insts: Vec<u32>,
    pub golden_dyn_insts: u64,
    pub golden_sites: u64,
    pub golden_cycles: u64,
    /// Golden-prefix instructions skipped across all trials by snapshot
    /// fast-forward (0 when snapshots are disabled).
    pub ff_insts: u64,
    /// Instructions actually executed across all trials.
    pub exec_insts: u64,
}

/// Resolve the legacy `double_bit` switch to a model.
fn legacy_model(double_bit: bool) -> ModelSpec {
    if double_bit {
        ModelSpec::DoubleBitReg
    } else {
        ModelSpec::SingleBitReg
    }
}

/// The fault injected by IR-level trial `trial_index` — a pure function of
/// `(seed, trial_index)`. Legacy entry point for the single/double-bit
/// register models; arbitrary models go through
/// [`ModelSpec::sample_ir`](flowery_faultmodel::ModelSpec::sample_ir).
pub fn ir_fault_spec(seed: u64, trial_index: u64, sites: u64, double_bit: bool) -> FaultSpec {
    legacy_model(double_bit).sample_ir(seed, trial_index, sites)
}

/// The fault injected by assembly-level trial `trial_index`.
pub fn asm_fault_spec(seed: u64, trial_index: u64, sites: u64, double_bit: bool) -> AsmFaultSpec {
    legacy_model(double_bit).sample_asm(seed, trial_index, sites)
}

/// Outcome of one IR-level trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrTrialOutcome {
    pub outcome: Outcome,
    /// Static location of the injection when it landed.
    pub injected_at: Option<(FuncId, InstId)>,
    /// Golden-prefix instructions skipped by snapshot fast-forward.
    pub ff_insts: u64,
    /// Instructions actually executed by this trial.
    pub exec_insts: u64,
}

/// Outcome of one assembly-level trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsmTrialOutcome {
    pub outcome: Outcome,
    /// Program instruction index of the injection when it landed.
    pub injected_inst: Option<u32>,
    /// Golden-prefix instructions skipped by snapshot fast-forward.
    pub ff_insts: u64,
    /// Instructions actually executed by this trial.
    pub exec_insts: u64,
}

/// Reusable single-trial executor for IR-level injections. Construct once
/// per (module, golden) pair, then run any subset of trial indices in any
/// order — results depend only on the trial index and seed.
pub struct IrTrialRunner<'m> {
    interp: Interpreter<'m>,
    golden: ExecResult,
    exec: ExecConfig,
    sites: u64,
    /// Golden-run snapshots for fast-forwarded trials (shared read-only
    /// across the worker threads of a campaign).
    snapshots: Option<Arc<IrSnapshotSet>>,
    /// Per-runner reusable memory image, output buffer, and frame pool.
    scratch: IrScratch,
}

impl<'m> IrTrialRunner<'m> {
    /// Runs the golden execution.
    pub fn new(module: &'m Module, exec: &ExecConfig) -> IrTrialRunner<'m> {
        let interp = Interpreter::new(module);
        let golden = interp.run(exec, None);
        Self::with_golden(module, golden, exec)
    }

    /// Build from an already-computed golden run (e.g. the harness's
    /// golden-run cache). `exec` supplies the base limits; the dynamic
    /// instruction budget is tightened around the golden run to catch
    /// fault-induced livelock quickly.
    pub fn with_golden(module: &'m Module, golden: ExecResult, exec: &ExecConfig) -> IrTrialRunner<'m> {
        assert!(golden.status.is_completed(), "golden run must complete: {:?}", golden.status);
        let sites = golden.fault_sites;
        assert!(sites > 0, "program has no IR fault sites");
        let exec = ExecConfig {
            max_dyn_insts: golden.dyn_insts.saturating_mul(4).max(100_000),
            ..exec.clone()
        };
        IrTrialRunner {
            interp: Interpreter::new(module),
            golden,
            exec,
            sites,
            snapshots: None,
            scratch: IrScratch::new(),
        }
    }

    pub fn golden(&self) -> &ExecResult {
        &self.golden
    }

    pub fn sites(&self) -> u64 {
        self.sites
    }

    /// Capture a snapshot set from this runner's golden execution, with the
    /// self-tuning site-spaced cadence. The set can be shared across the
    /// campaign's worker threads via [`IrTrialRunner::attach_snapshots`].
    pub fn build_snapshots(&self) -> IrSnapshotSet {
        let set = self.interp.capture_snapshots_auto(&self.exec);
        debug_assert_eq!(set.golden().dyn_insts, self.golden.dyn_insts, "capture run diverged from golden");
        debug_assert_eq!(set.golden().output, self.golden.output, "capture run diverged from golden");
        set
    }

    /// Fast-forward subsequent trials from `set`. The set must stem from
    /// the same program content as this runner's golden run.
    pub fn attach_snapshots(&mut self, set: Arc<IrSnapshotSet>) {
        debug_assert_eq!(set.golden().dyn_insts, self.golden.dyn_insts, "snapshot set golden mismatch");
        debug_assert_eq!(set.golden().fault_sites, self.golden.fault_sites, "snapshot set golden mismatch");
        self.snapshots = Some(set);
    }

    /// Capture and attach in one step (single-threaded convenience).
    pub fn enable_snapshots(&mut self) {
        let set = Arc::new(self.build_snapshots());
        self.attach_snapshots(set);
    }

    /// The attached snapshot set, for sharing with sibling runners.
    pub fn snapshots(&self) -> Option<Arc<IrSnapshotSet>> {
        self.snapshots.clone()
    }

    /// Execute trial `trial_index` of the campaign identified by `seed`,
    /// under the legacy single/double-bit model with no detectors.
    pub fn run_trial(&mut self, seed: u64, trial_index: u64, double_bit: bool) -> IrTrialOutcome {
        self.run_trial_model(seed, trial_index, legacy_model(double_bit), &[])
    }

    /// Execute trial `trial_index` under an arbitrary fault model, with a
    /// set of modeled hardware detectors post-classifying the outcome.
    pub fn run_trial_model(
        &mut self,
        seed: u64,
        trial_index: u64,
        model: ModelSpec,
        detectors: &[DetectorSpec],
    ) -> IrTrialOutcome {
        let spec = model.sample_ir(seed, trial_index, self.sites);
        self.run_spec(spec, detectors)
    }

    /// Execute trial `trial_index` re-sampled *inside one region*: the
    /// model's site draw indexes only the `mass` fault sites of `scope`'s
    /// function body (region-local stream; see `FaultSpec::scope`).
    pub fn run_trial_model_scoped(
        &mut self,
        seed: u64,
        trial_index: u64,
        model: ModelSpec,
        detectors: &[DetectorSpec],
        scope: flowery_ir::value::FuncId,
        mass: u64,
    ) -> IrTrialOutcome {
        assert!(mass > 0, "scoped trials need a nonzero region site mass");
        let spec = model.sample_ir(seed, trial_index, mass).scoped(scope);
        self.run_spec(spec, detectors)
    }

    fn run_spec(&mut self, spec: FaultSpec, detectors: &[DetectorSpec]) -> IrTrialOutcome {
        let (r, skipped) = match self.snapshots.clone() {
            Some(set) => self.interp.run_fast_forward(&self.exec, spec, &set, &mut self.scratch),
            None => (self.interp.run_scratch(&self.exec, Some(spec), &mut self.scratch), 0),
        };
        let mut outcome = classify(r.status, &r.output, self.golden.status, &self.golden.output);
        if outcome == Outcome::Sdc
            && any_catches(detectors, classify_ir_fault(spec.effect), flip_count(spec.second_bit, spec.effect))
        {
            outcome = Outcome::Detected;
        }
        let out = IrTrialOutcome {
            outcome,
            injected_at: r.injected_at,
            ff_insts: skipped,
            exec_insts: r.dyn_insts - skipped,
        };
        self.scratch.recycle_output(r.output);
        out
    }
}

/// Reusable single-trial executor for assembly-level injections.
pub struct AsmTrialRunner<'p> {
    mach: Machine<'p>,
    program: &'p AsmProgram,
    golden: MachResult,
    exec: ExecConfig,
    sites: u64,
    /// Golden-run snapshots for fast-forwarded trials.
    snapshots: Option<Arc<AsmSnapshotSet>>,
    /// Per-runner reusable memory image and output buffer.
    scratch: AsmScratch,
}

impl<'p> AsmTrialRunner<'p> {
    pub fn new(module: &'p Module, program: &'p AsmProgram, exec: &ExecConfig) -> AsmTrialRunner<'p> {
        let mach = Machine::new(module, program);
        let golden = mach.run(exec, None);
        Self::with_golden(module, program, golden, exec)
    }

    pub fn with_golden(
        module: &'p Module,
        program: &'p AsmProgram,
        golden: MachResult,
        exec: &ExecConfig,
    ) -> AsmTrialRunner<'p> {
        assert!(golden.status.is_completed(), "golden run must complete: {:?}", golden.status);
        let sites = golden.fault_sites;
        assert!(sites > 0, "program has no assembly fault sites");
        let exec = ExecConfig {
            max_dyn_insts: golden.dyn_insts.saturating_mul(4).max(100_000),
            ..exec.clone()
        };
        AsmTrialRunner {
            mach: Machine::new(module, program),
            program,
            golden,
            exec,
            sites,
            snapshots: None,
            scratch: AsmScratch::new(),
        }
    }

    pub fn golden(&self) -> &MachResult {
        &self.golden
    }

    pub fn sites(&self) -> u64 {
        self.sites
    }

    /// Capture a snapshot set from this runner's golden execution, with the
    /// self-tuning site-spaced cadence.
    pub fn build_snapshots(&self) -> AsmSnapshotSet {
        let set = self.mach.capture_snapshots_auto(&self.exec);
        debug_assert_eq!(set.golden().dyn_insts, self.golden.dyn_insts, "capture run diverged from golden");
        debug_assert_eq!(set.golden().output, self.golden.output, "capture run diverged from golden");
        set
    }

    /// Fast-forward subsequent trials from `set`.
    pub fn attach_snapshots(&mut self, set: Arc<AsmSnapshotSet>) {
        debug_assert_eq!(set.golden().dyn_insts, self.golden.dyn_insts, "snapshot set golden mismatch");
        debug_assert_eq!(set.golden().fault_sites, self.golden.fault_sites, "snapshot set golden mismatch");
        self.snapshots = Some(set);
    }

    /// Capture and attach in one step (single-threaded convenience).
    pub fn enable_snapshots(&mut self) {
        let set = Arc::new(self.build_snapshots());
        self.attach_snapshots(set);
    }

    /// The attached snapshot set, for sharing with sibling runners.
    pub fn snapshots(&self) -> Option<Arc<AsmSnapshotSet>> {
        self.snapshots.clone()
    }

    /// Execute trial `trial_index` under the legacy single/double-bit
    /// model with no detectors.
    pub fn run_trial(&mut self, seed: u64, trial_index: u64, double_bit: bool) -> AsmTrialOutcome {
        self.run_trial_model(seed, trial_index, legacy_model(double_bit), &[])
    }

    /// Execute trial `trial_index` under an arbitrary fault model, with a
    /// set of modeled hardware detectors post-classifying the outcome.
    /// Detector coverage is decided against the *architected destination*
    /// of the instruction the fault actually landed on.
    pub fn run_trial_model(
        &mut self,
        seed: u64,
        trial_index: u64,
        model: ModelSpec,
        detectors: &[DetectorSpec],
    ) -> AsmTrialOutcome {
        let spec = model.sample_asm(seed, trial_index, self.sites);
        self.run_spec(spec, detectors)
    }

    /// Like [`AsmTrialRunner::run_trial_model`], but with a static prune
    /// oracle: `prune(spec)` returns the instruction index the fault would
    /// land on when the (site, bit) pair is *statically proven masked*.
    /// Such trials resolve as Benign with golden-identical attribution
    /// without executing — the sample draw itself is unchanged, so the
    /// trial stream (and therefore every count and Wilson interval) stays
    /// bit-identical to the unpruned campaign. Returns the outcome and
    /// whether the trial was pruned.
    pub fn run_trial_model_pruned(
        &mut self,
        seed: u64,
        trial_index: u64,
        model: ModelSpec,
        detectors: &[DetectorSpec],
        prune: &dyn Fn(&AsmFaultSpec) -> Option<u32>,
    ) -> (AsmTrialOutcome, bool) {
        let spec = model.sample_asm(seed, trial_index, self.sites);
        if let Some(inst) = prune(&spec) {
            let out = AsmTrialOutcome {
                outcome: Outcome::Benign,
                injected_inst: Some(inst),
                ff_insts: 0,
                exec_insts: 0,
            };
            return (out, true);
        }
        (self.run_spec(spec, detectors), false)
    }

    /// Execute trial `trial_index` re-sampled *inside one region*: the
    /// model's site draw indexes only the `mass` fault sites executed in
    /// the program instruction `range` (region-local stream; see
    /// `AsmFaultSpec::scope`).
    pub fn run_trial_model_scoped(
        &mut self,
        seed: u64,
        trial_index: u64,
        model: ModelSpec,
        detectors: &[DetectorSpec],
        range: std::ops::Range<u32>,
        mass: u64,
    ) -> AsmTrialOutcome {
        assert!(mass > 0, "scoped trials need a nonzero region site mass");
        let spec = model.sample_asm(seed, trial_index, mass).scoped(range.start, range.end);
        self.run_spec(spec, detectors)
    }

    fn run_spec(&mut self, spec: AsmFaultSpec, detectors: &[DetectorSpec]) -> AsmTrialOutcome {
        let (r, skipped) = match self.snapshots.clone() {
            Some(set) => self.mach.run_fast_forward(&self.exec, spec, &set, &mut self.scratch),
            None => (self.mach.run_scratch(&self.exec, Some(spec), &mut self.scratch), 0),
        };
        let mut outcome = classify(r.status, &r.output, self.golden.status, &self.golden.output);
        if outcome == Outcome::Sdc && !detectors.is_empty() {
            if let Some(idx) = r.injected_inst {
                let dest = self.program.insts[idx as usize].kind.fault_dest();
                if any_catches(
                    detectors,
                    classify_asm_fault(spec.effect, dest),
                    flip_count(spec.second_bit, spec.effect),
                ) {
                    outcome = Outcome::Detected;
                }
            }
        }
        let out = AsmTrialOutcome {
            outcome,
            injected_inst: r.injected_inst,
            ff_insts: skipped,
            exec_insts: r.dyn_insts - skipped,
        };
        self.scratch.recycle_output(r.output);
        out
    }
}

/// Dynamic work distribution over the trial-index space: threads claim
/// fixed-size chunks from a shared cursor, so a slow chunk on one thread
/// never leaves the others idle.
fn for_each_trial<R, W>(
    trials: u64,
    threads: usize,
    make_worker: impl Fn() -> W + Sync,
    collect: impl Fn(u64, R) + Sync,
) where
    R: Send,
    W: FnMut(u64) -> R + Send,
{
    const CHUNK: u64 = 32;
    let threads = threads.max(1);
    let cursor = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let make_worker = &make_worker;
            let collect = &collect;
            scope.spawn(move || {
                let mut work = make_worker();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= trials {
                        return;
                    }
                    let end = (start + CHUNK).min(trials);
                    for i in start..end {
                        collect(i, work(i));
                    }
                }
            });
        }
    });
}

/// Run an IR-level ("LLVM level") campaign.
pub fn run_ir_campaign(m: &Module, cfg: &CampaignConfig) -> IrCampaign {
    // A single execution provides the golden result, the snapshot set, and
    // (when requested) the golden profile; the capture run *is* the golden
    // run, so enabling snapshots or profiling never adds a second pass.
    let interp = Interpreter::new(m);
    let capture_exec = ExecConfig { profile: cfg.golden_profile, ..cfg.exec.clone() };
    let (mut golden, snaps) = if cfg.snapshots {
        let set = interp.capture_snapshots_auto(&capture_exec);
        (set.golden().clone(), Some(Arc::new(set)))
    } else {
        (interp.run(&capture_exec, None), None)
    };
    let golden_profile = golden.profile.take();
    let results = std::sync::Mutex::new(Vec::<(u64, IrTrialOutcome)>::with_capacity(cfg.trials as usize));
    for_each_trial(
        cfg.trials,
        cfg.effective_threads(),
        || {
            let mut local = IrTrialRunner::with_golden(m, golden.clone(), &cfg.exec);
            if let Some(set) = &snaps {
                local.attach_snapshots(set.clone());
            }
            let seed = cfg.seed;
            let model = cfg.effective_model();
            let detectors = &cfg.detectors;
            move |i| local.run_trial_model(seed, i, model, detectors)
        },
        |i, r| results.lock().unwrap().push((i, r)),
    );
    let mut results = results.into_inner().unwrap();
    // Merge in trial order so aggregate structures are deterministic.
    results.sort_unstable_by_key(|(i, _)| *i);

    let mut counts = OutcomeCounts::default();
    let mut sdc_by_inst: HashMap<(FuncId, InstId), u64> = HashMap::new();
    let (mut ff_insts, mut exec_insts) = (0u64, 0u64);
    for (_, t) in &results {
        counts.record(t.outcome);
        ff_insts += t.ff_insts;
        exec_insts += t.exec_insts;
        if t.outcome == Outcome::Sdc {
            if let Some(loc) = t.injected_at {
                *sdc_by_inst.entry(loc).or_insert(0) += 1;
            }
        }
    }
    IrCampaign {
        counts,
        sdc_by_inst,
        golden_dyn_insts: golden.dyn_insts,
        golden_sites: golden.fault_sites,
        ff_insts,
        exec_insts,
        golden_profile,
    }
}

/// Run an assembly-level campaign on a compiled program.
pub fn run_asm_campaign(m: &Module, program: &AsmProgram, cfg: &CampaignConfig) -> AsmCampaign {
    // As at the IR layer, the capture run doubles as the golden run.
    let mach = Machine::new(m, program);
    let (golden, snaps) = if cfg.snapshots {
        let set = mach.capture_snapshots_auto(&cfg.exec);
        (set.golden().clone(), Some(Arc::new(set)))
    } else {
        (mach.run(&cfg.exec, None), None)
    };
    let results = std::sync::Mutex::new(Vec::<(u64, AsmTrialOutcome)>::with_capacity(cfg.trials as usize));
    for_each_trial(
        cfg.trials,
        cfg.effective_threads(),
        || {
            let mut local = AsmTrialRunner::with_golden(m, program, golden.clone(), &cfg.exec);
            if let Some(set) = &snaps {
                local.attach_snapshots(set.clone());
            }
            let seed = cfg.seed;
            let model = cfg.effective_model();
            let detectors = &cfg.detectors;
            move |i| local.run_trial_model(seed, i, model, detectors)
        },
        |i, r| results.lock().unwrap().push((i, r)),
    );
    let mut results = results.into_inner().unwrap();
    results.sort_unstable_by_key(|(i, _)| *i);

    let mut counts = OutcomeCounts::default();
    let mut sdc_insts = Vec::new();
    let (mut ff_insts, mut exec_insts) = (0u64, 0u64);
    for (_, t) in &results {
        counts.record(t.outcome);
        ff_insts += t.ff_insts;
        exec_insts += t.exec_insts;
        if t.outcome == Outcome::Sdc {
            if let Some(idx) = t.injected_inst {
                sdc_insts.push(idx);
            }
        }
    }
    AsmCampaign {
        counts,
        sdc_insts,
        golden_dyn_insts: golden.dyn_insts,
        golden_sites: golden.fault_sites,
        golden_cycles: golden.cycles,
        ff_insts,
        exec_insts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str =
        "int main() { int s = 0; int i; for (i = 0; i < 20; i = i + 1) { s = s + i * i; } output(s); return s % 251; }";

    fn module() -> Module {
        flowery_lang::compile("t", SRC).unwrap()
    }

    #[test]
    fn fault_specs_are_pure_functions_of_seed_and_index() {
        for trial in [0u64, 1, 7, 2999] {
            let a = ir_fault_spec(42, trial, 100, false);
            let b = ir_fault_spec(42, trial, 100, false);
            assert_eq!(a, b);
            assert!(a.site_index < 100 && a.bit < 64 && a.second_bit.is_none());
            let d = ir_fault_spec(42, trial, 100, true);
            assert!(d.second_bit.is_some());
        }
        // The layers draw from distinct streams.
        let ir = ir_fault_spec(42, 0, 1000, false);
        let asm = asm_fault_spec(42, 0, 1000, false);
        assert!(ir.site_index != asm.site_index || ir.bit != asm.bit);
    }

    #[test]
    fn ir_campaign_is_deterministic_across_thread_counts() {
        let m = module();
        let mut c1 = CampaignConfig::with_trials(200);
        c1.threads = 1;
        let mut c4 = CampaignConfig::with_trials(200);
        c4.threads = 4;
        let r1 = run_ir_campaign(&m, &c1);
        let r4 = run_ir_campaign(&m, &c4);
        // Trials are seeded by index, not by shard: any thread count gives
        // exactly the same campaign.
        assert_eq!(r1.counts, r4.counts);
        assert_eq!(r1.sdc_by_inst, r4.sdc_by_inst);
        assert_eq!(r1.golden_sites, r4.golden_sites);

        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let a1 = run_asm_campaign(&m, &prog, &c1);
        let a4 = run_asm_campaign(&m, &prog, &c4);
        assert_eq!(a1.counts, a4.counts);
        assert_eq!(a1.sdc_insts, a4.sdc_insts);
    }

    #[test]
    fn snapshot_campaigns_match_scratch_campaigns() {
        // Long enough that the auto-tuned cadence (>= 512 insts) captures
        // snapshots; the short `module()` program finishes before the first.
        let m = flowery_lang::compile(
            "t",
            "int main() { int s = 0; int i; for (i = 0; i < 1500; i = i + 1) { s = s + i * i; } output(s); return s % 251; }",
        )
        .unwrap();
        let mut on = CampaignConfig::with_trials(200);
        on.threads = 2;
        let mut off = on.clone();
        off.snapshots = false;
        let r_on = run_ir_campaign(&m, &on);
        let r_off = run_ir_campaign(&m, &off);
        assert_eq!(r_on.counts, r_off.counts);
        assert_eq!(r_on.sdc_by_inst, r_off.sdc_by_inst);
        // Fast-forward must actually skip work, and the totals must agree:
        // a trial's skipped + executed instructions is independent of path.
        assert!(r_on.ff_insts > 0, "expected fast-forwarded instructions");
        assert_eq!(r_off.ff_insts, 0);
        assert_eq!(r_on.ff_insts + r_on.exec_insts, r_off.exec_insts);

        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let a_on = run_asm_campaign(&m, &prog, &on);
        let a_off = run_asm_campaign(&m, &prog, &off);
        assert_eq!(a_on.counts, a_off.counts);
        assert_eq!(a_on.sdc_insts, a_off.sdc_insts);
        assert!(a_on.ff_insts > 0);
        assert_eq!(a_on.ff_insts + a_on.exec_insts, a_off.exec_insts);
    }

    #[test]
    fn ir_campaign_produces_all_outcome_kinds() {
        let m = module();
        let r = run_ir_campaign(&m, &CampaignConfig::with_trials(400));
        assert_eq!(r.counts.total(), 400);
        assert!(r.counts.sdc > 0, "unprotected program must show SDCs: {:?}", r.counts);
        assert!(r.counts.benign > 0);
        assert_eq!(r.counts.detected, 0, "no checkers -> no detections");
        assert!(!r.sdc_by_inst.is_empty());
    }

    #[test]
    fn asm_campaign_runs_and_records_sdc_sites() {
        let m = module();
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let r = run_asm_campaign(&m, &prog, &CampaignConfig::with_trials(400));
        assert_eq!(r.counts.total(), 400);
        assert!(r.counts.sdc > 0);
        assert_eq!(r.sdc_insts.len() as u64, r.counts.sdc);
        assert!(r.golden_cycles > 0);
        for &idx in &r.sdc_insts {
            assert!((idx as usize) < prog.insts.len());
        }
    }

    #[test]
    fn protected_program_detects_faults() {
        let mut m = module();
        let plan = flowery_passes::ProtectionPlan::full(&m);
        flowery_passes::duplicate_module(&mut m, &plan, &flowery_passes::DupConfig::default());
        let r = run_ir_campaign(&m, &CampaignConfig::with_trials(400));
        assert!(r.counts.detected > 0, "{:?}", r.counts);
        assert_eq!(r.counts.sdc, 0, "full IR protection leaves no SDC: {:?}", r.counts);
    }
}
