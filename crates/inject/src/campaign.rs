//! Fault-injection campaigns at both layers, with parallel execution.
//!
//! Each campaign (paper §4.3): pick a random executed *fault site*, pick a
//! random bit of its destination, run to completion, classify the outcome
//! against the golden run. Campaigns are embarrassingly parallel; shards
//! run on crossbeam scoped threads with independent deterministically
//! seeded RNGs, so results are reproducible regardless of thread count.

use crate::outcome::{classify, Outcome, OutcomeCounts};
use flowery_backend::{AsmFaultSpec, AsmProgram, Machine};
use flowery_ir::interp::{ExecConfig, FaultSpec, Interpreter};
use flowery_ir::module::Module;
use flowery_ir::value::{FuncId, InstId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Campaign parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of fault injections (the paper uses 3,000 per configuration).
    pub trials: u64,
    /// Base RNG seed; shard `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads (0 = use all available cores).
    pub threads: usize,
    /// Inject two bit flips per fault instead of one (the emerging
    /// multi-bit model the paper cites in §2.2; default off = the standard
    /// single-bit datapath model).
    pub double_bit: bool,
    /// Execution limits for each run.
    pub exec: ExecConfig,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            trials: 3000,
            seed: 0xF10E_E41,
            threads: 0,
            double_bit: false,
            exec: ExecConfig::default(),
        }
    }
}

impl CampaignConfig {
    pub fn with_trials(trials: u64) -> CampaignConfig {
        CampaignConfig { trials, ..Default::default() }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// Result of an IR-level campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IrCampaign {
    pub counts: OutcomeCounts,
    /// SDC-causing injections attributed to their static instruction.
    pub sdc_by_inst: HashMap<(FuncId, InstId), u64>,
    /// Golden-run dynamic instruction count.
    pub golden_dyn_insts: u64,
    /// Golden-run fault-site count.
    pub golden_sites: u64,
}

/// Result of an assembly-level campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsmCampaign {
    pub counts: OutcomeCounts,
    /// Program instruction index of every SDC-causing injection — the
    /// input to penetration root-cause classification.
    pub sdc_insts: Vec<u32>,
    pub golden_dyn_insts: u64,
    pub golden_sites: u64,
    pub golden_cycles: u64,
}

/// Run an IR-level ("LLVM level") campaign.
pub fn run_ir_campaign(m: &Module, cfg: &CampaignConfig) -> IrCampaign {
    let interp = Interpreter::new(m);
    let golden = interp.run(&cfg.exec, None);
    assert!(golden.status.is_completed(), "golden run must complete: {:?}", golden.status);
    let sites = golden.fault_sites;
    assert!(sites > 0, "program has no IR fault sites");
    let exec = ExecConfig {
        max_dyn_insts: golden.dyn_insts.saturating_mul(4).max(100_000),
        ..cfg.exec.clone()
    };

    let shards = shard_trials(cfg.trials, cfg.effective_threads());
    let results: Vec<(OutcomeCounts, HashMap<(FuncId, InstId), u64>)> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    let exec = exec.clone();
                    let golden = &golden;
                    let interp = Interpreter::new(m);
                    let seed = cfg.seed.wrapping_add(i as u64);
                    let double_bit = cfg.double_bit;
                    scope.spawn(move |_| {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        let mut counts = OutcomeCounts::default();
                        let mut by_inst: HashMap<(FuncId, InstId), u64> = HashMap::new();
                        for _ in 0..n {
                            let spec = FaultSpec {
                                site_index: rng.gen_range(0..sites),
                                bit: rng.gen_range(0..64),
                                second_bit: double_bit.then(|| rng.gen_range(0..64)),
                            };
                            let r = interp.run(&exec, Some(spec));
                            let o = classify(r.status, &r.output, golden.status, &golden.output);
                            counts.record(o);
                            if o == Outcome::Sdc {
                                if let Some(loc) = r.injected_at {
                                    *by_inst.entry(loc).or_insert(0) += 1;
                                }
                            }
                        }
                        (counts, by_inst)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard panicked")).collect()
        })
        .expect("campaign scope");

    let mut counts = OutcomeCounts::default();
    let mut sdc_by_inst: HashMap<(FuncId, InstId), u64> = HashMap::new();
    for (c, by) in results {
        counts.merge(&c);
        for (k, v) in by {
            *sdc_by_inst.entry(k).or_insert(0) += v;
        }
    }
    IrCampaign { counts, sdc_by_inst, golden_dyn_insts: golden.dyn_insts, golden_sites: sites }
}

/// Run an assembly-level campaign on a compiled program.
pub fn run_asm_campaign(m: &Module, program: &AsmProgram, cfg: &CampaignConfig) -> AsmCampaign {
    let mach = Machine::new(m, program);
    let golden = mach.run(&cfg.exec, None);
    assert!(golden.status.is_completed(), "golden run must complete: {:?}", golden.status);
    let sites = golden.fault_sites;
    assert!(sites > 0, "program has no assembly fault sites");
    let exec = ExecConfig {
        max_dyn_insts: golden.dyn_insts.saturating_mul(4).max(100_000),
        ..cfg.exec.clone()
    };

    let shards = shard_trials(cfg.trials, cfg.effective_threads());
    let results: Vec<(OutcomeCounts, Vec<u32>)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let exec = exec.clone();
                let golden = &golden;
                let mach = Machine::new(m, program);
                let seed = cfg.seed.wrapping_add(0x5151_0000).wrapping_add(i as u64);
                let double_bit = cfg.double_bit;
                scope.spawn(move |_| {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let mut counts = OutcomeCounts::default();
                    let mut sdc_insts = Vec::new();
                    for _ in 0..n {
                        let spec = AsmFaultSpec {
                            site_index: rng.gen_range(0..sites),
                            bit: rng.gen_range(0..64),
                            second_bit: double_bit.then(|| rng.gen_range(0..64)),
                        };
                        let r = mach.run(&exec, Some(spec));
                        let o = classify(r.status, &r.output, golden.status, &golden.output);
                        counts.record(o);
                        if o == Outcome::Sdc {
                            if let Some(idx) = r.injected_inst {
                                sdc_insts.push(idx);
                            }
                        }
                    }
                    (counts, sdc_insts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard panicked")).collect()
    })
    .expect("campaign scope");

    let mut counts = OutcomeCounts::default();
    let mut sdc_insts = Vec::new();
    for (c, v) in results {
        counts.merge(&c);
        sdc_insts.extend(v);
    }
    AsmCampaign {
        counts,
        sdc_insts,
        golden_dyn_insts: golden.dyn_insts,
        golden_sites: sites,
        golden_cycles: golden.cycles,
    }
}

/// Split `trials` across `threads` as evenly as possible.
fn shard_trials(trials: u64, threads: usize) -> Vec<u64> {
    let threads = threads.max(1) as u64;
    let base = trials / threads;
    let extra = trials % threads;
    (0..threads).map(|i| base + u64::from(i < extra)).filter(|&n| n > 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int main() { int s = 0; int i; for (i = 0; i < 20; i = i + 1) { s = s + i * i; } output(s); return s % 251; }";

    fn module() -> Module {
        flowery_lang::compile("t", SRC).unwrap()
    }

    #[test]
    fn shards_cover_all_trials() {
        assert_eq!(shard_trials(10, 3), vec![4, 3, 3]);
        assert_eq!(shard_trials(2, 8), vec![1, 1]);
        assert_eq!(shard_trials(0, 4), Vec::<u64>::new());
        assert_eq!(shard_trials(9, 1), vec![9]);
    }

    #[test]
    fn ir_campaign_is_deterministic_across_thread_counts() {
        let m = module();
        let mut c1 = CampaignConfig::with_trials(200);
        c1.threads = 1;
        let mut c4 = CampaignConfig::with_trials(200);
        c4.threads = 4;
        let r1 = run_ir_campaign(&m, &c1);
        let r4 = run_ir_campaign(&m, &c4);
        // Seeds are per-shard, so exact equality needs equal shard counts;
        // verify totals and rough agreement instead.
        assert_eq!(r1.counts.total(), 200);
        assert_eq!(r4.counts.total(), 200);
        assert_eq!(r1.golden_sites, r4.golden_sites);
        // Same shard layout => identical results.
        let r1b = run_ir_campaign(&m, &c1);
        assert_eq!(r1.counts, r1b.counts);
    }

    #[test]
    fn ir_campaign_produces_all_outcome_kinds() {
        let m = module();
        let r = run_ir_campaign(&m, &CampaignConfig::with_trials(400));
        assert_eq!(r.counts.total(), 400);
        assert!(r.counts.sdc > 0, "unprotected program must show SDCs: {:?}", r.counts);
        assert!(r.counts.benign > 0);
        assert_eq!(r.counts.detected, 0, "no checkers -> no detections");
        assert!(!r.sdc_by_inst.is_empty());
    }

    #[test]
    fn asm_campaign_runs_and_records_sdc_sites() {
        let m = module();
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let r = run_asm_campaign(&m, &prog, &CampaignConfig::with_trials(400));
        assert_eq!(r.counts.total(), 400);
        assert!(r.counts.sdc > 0);
        assert_eq!(r.sdc_insts.len() as u64, r.counts.sdc);
        assert!(r.golden_cycles > 0);
        for &idx in &r.sdc_insts {
            assert!((idx as usize) < prog.insts.len());
        }
    }

    #[test]
    fn protected_program_detects_faults() {
        let mut m = module();
        let plan = flowery_passes::ProtectionPlan::full(&m);
        flowery_passes::duplicate_module(&mut m, &plan, &flowery_passes::DupConfig::default());
        let r = run_ir_campaign(&m, &CampaignConfig::with_trials(400));
        assert!(r.counts.detected > 0, "{:?}", r.counts);
        assert_eq!(r.counts.sdc, 0, "full IR protection leaves no SDC: {:?}", r.counts);
    }
}
