//! SDC profiling: estimate per-instruction SDC contribution on the
//! *unprotected* program, feeding the knapsack protection selection
//! (paper §3: "fault injection analysis is often used to assess the SDC
//! probabilities of each instruction").

use crate::campaign::{run_ir_campaign, CampaignConfig};
use flowery_ir::interp::{ExecConfig, Interpreter};
use flowery_ir::module::Module;
use flowery_passes::select::{build_profile, SdcProfile};

/// Run a profiling campaign and assemble the [`SdcProfile`] used by
/// [`flowery_passes::choose_protection`].
///
/// The golden execution profile rides along in the campaign's capture run
/// ([`CampaignConfig::golden_profile`]), so a profiling campaign costs the
/// same number of golden executions as a plain one — and with snapshots
/// enabled its trials fast-forward exactly like any other campaign's.
pub fn profile_sdc(m: &Module, cfg: &CampaignConfig) -> SdcProfile {
    let cfg = CampaignConfig { golden_profile: true, ..cfg.clone() };
    let campaign = run_ir_campaign(m, &cfg);
    let exec_profile = campaign.golden_profile.unwrap_or_else(|| {
        // Defensive fallback; the campaign always honors `golden_profile`.
        let exec = Interpreter::new(m).profile_run(&ExecConfig::default());
        exec.profile.expect("profiling run returns counts")
    });
    build_profile(m, &exec_profile, &campaign.sdc_by_inst, campaign.counts.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_passes::choose_protection;

    #[test]
    fn profile_feeds_selection() {
        let m = flowery_lang::compile(
            "t",
            "int main() { int s = 0; int i; for (i = 0; i < 25; i = i + 1) { s = s + i * 3; } output(s); return s; }",
        )
        .unwrap();
        let prof = profile_sdc(&m, &CampaignConfig::with_trials(300));
        assert!(prof.trials >= 300);
        assert!(!prof.entries.is_empty());
        assert!(prof.entries.iter().any(|e| e.sdc_hits > 0), "some instruction causes SDCs");
        let plan = choose_protection(&m, &prof, 0.5);
        assert!(plan.selected_count() > 0);
        let full = choose_protection(&m, &prof, 1.0);
        assert!(full.selected_count() >= plan.selected_count());
    }

    #[test]
    fn profiled_campaign_is_identical_with_and_without_snapshots() {
        // Long enough that the site-spaced cadence captures snapshots, so
        // the snapshot path genuinely fast-forwards profiled trials.
        let m = flowery_lang::compile(
            "t",
            "int main() { int s = 0; int i; for (i = 0; i < 1200; i = i + 1) { s = s + i * 7; } output(s); return s % 97; }",
        )
        .unwrap();
        let mut on = CampaignConfig::with_trials(200);
        on.threads = 2;
        let mut off = on.clone();
        off.snapshots = false;
        let p_on = profile_sdc(&m, &on);
        let p_off = profile_sdc(&m, &off);
        assert_eq!(p_on, p_off, "snapshot fast-forward changed the SDC profile");

        // And the underlying campaign really skipped golden-prefix work.
        let mut cfg = on.clone();
        cfg.golden_profile = true;
        let c = run_ir_campaign(&m, &cfg);
        assert!(c.ff_insts > 0, "profiled campaign did not fast-forward");
        assert!(c.golden_profile.is_some());
    }
}
