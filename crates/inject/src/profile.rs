//! SDC profiling: estimate per-instruction SDC contribution on the
//! *unprotected* program, feeding the knapsack protection selection
//! (paper §3: "fault injection analysis is often used to assess the SDC
//! probabilities of each instruction").

use crate::campaign::{run_ir_campaign, CampaignConfig};
use flowery_ir::interp::{ExecConfig, Interpreter};
use flowery_ir::module::Module;
use flowery_passes::select::{build_profile, SdcProfile};

/// Run a profiling campaign and assemble the [`SdcProfile`] used by
/// [`flowery_passes::choose_protection`].
pub fn profile_sdc(m: &Module, cfg: &CampaignConfig) -> SdcProfile {
    let campaign = run_ir_campaign(m, cfg);
    let exec = Interpreter::new(m).profile_run(&ExecConfig::default());
    let exec_profile = exec.profile.expect("profiling run returns counts");
    build_profile(m, &exec_profile, &campaign.sdc_by_inst, campaign.counts.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_passes::choose_protection;

    #[test]
    fn profile_feeds_selection() {
        let m = flowery_lang::compile(
            "t",
            "int main() { int s = 0; int i; for (i = 0; i < 25; i = i + 1) { s = s + i * 3; } output(s); return s; }",
        )
        .unwrap();
        let prof = profile_sdc(&m, &CampaignConfig::with_trials(300));
        assert!(prof.trials >= 300);
        assert!(!prof.entries.is_empty());
        assert!(prof.entries.iter().any(|e| e.sdc_hits > 0), "some instruction causes SDCs");
        let plan = choose_protection(&m, &prof, 0.5);
        assert!(plan.selected_count() > 0);
        let full = choose_protection(&m, &prof, 1.0);
        assert!(full.selected_count() >= plan.selected_count());
    }
}
