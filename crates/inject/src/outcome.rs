//! Fault-injection outcome classification (paper §2.1).

use flowery_ir::interp::ExecStatus;
use serde::{Deserialize, Serialize};

/// The four outcome classes of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Execution completed with output identical to the golden run.
    Benign,
    /// Execution completed but the output differs — silent data corruption.
    Sdc,
    /// A duplication checker caught the fault (`detect_error` fired).
    Detected,
    /// Detectable unrecoverable error: trap, crash, livelock.
    Due,
}

/// Classify one faulty run against the golden run.
///
/// The return value of `main` counts as program output (the benchmarks
/// also emit explicit `output()` records; both must match for Benign).
pub fn classify(status: ExecStatus, output: &[u8], golden_status: ExecStatus, golden_output: &[u8]) -> Outcome {
    match status {
        ExecStatus::Detected => Outcome::Detected,
        ExecStatus::Trapped(_) => Outcome::Due,
        ExecStatus::Completed(_) => {
            if status == golden_status && output == golden_output {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Aggregate outcome counts for one campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    pub benign: u64,
    pub sdc: u64,
    pub detected: u64,
    pub due: u64,
}

impl OutcomeCounts {
    pub fn record(&mut self, o: Outcome) {
        match o {
            Outcome::Benign => self.benign += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Due => self.due += 1,
        }
    }

    pub fn total(&self) -> u64 {
        self.benign + self.sdc + self.detected + self.due
    }

    /// SDC probability of the program under this campaign.
    pub fn sdc_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sdc as f64 / self.total() as f64
        }
    }

    pub fn detected_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.detected as f64 / self.total() as f64
        }
    }

    pub fn due_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.due as f64 / self.total() as f64
        }
    }

    /// Merge another campaign's counts (parallel shards).
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.benign += other.benign;
        self.sdc += other.sdc;
        self.detected += other.detected;
        self.due += other.due;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_ir::interp::memory::TrapKind;

    #[test]
    fn classification_rules() {
        let g = ExecStatus::Completed(42);
        let out = vec![1, 2, 3];
        assert_eq!(classify(ExecStatus::Completed(42), &out, g, &out), Outcome::Benign);
        assert_eq!(classify(ExecStatus::Completed(41), &out, g, &out), Outcome::Sdc);
        assert_eq!(classify(ExecStatus::Completed(42), &[1], g, &out), Outcome::Sdc);
        assert_eq!(classify(ExecStatus::Detected, &out, g, &out), Outcome::Detected);
        assert_eq!(classify(ExecStatus::Trapped(TrapKind::OobLoad), &out, g, &out), Outcome::Due);
    }

    #[test]
    fn counts_aggregate_and_merge() {
        let mut a = OutcomeCounts::default();
        a.record(Outcome::Sdc);
        a.record(Outcome::Sdc);
        a.record(Outcome::Benign);
        a.record(Outcome::Due);
        assert_eq!(a.total(), 4);
        assert_eq!(a.sdc_rate(), 0.5);
        let mut b = OutcomeCounts::default();
        b.record(Outcome::Detected);
        b.merge(&a);
        assert_eq!(b.total(), 5);
        assert_eq!(b.detected, 1);
        assert_eq!(b.sdc, 2);
    }

    #[test]
    fn empty_counts_have_zero_rates() {
        let c = OutcomeCounts::default();
        assert_eq!(c.sdc_rate(), 0.0);
        assert_eq!(c.due_rate(), 0.0);
        assert_eq!(c.detected_rate(), 0.0);
    }
}
