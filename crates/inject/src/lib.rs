//! # flowery-inject
//!
//! Fault-injection campaigns at the two layers of the SC'23 study — the IR
//! interpreter ("LLVM level") and the machine simulator ("assembly
//! level") — with parallel, deterministically seeded execution, outcome
//! classification (Benign / SDC / Detected / DUE), SDC-coverage statistics
//! and per-instruction SDC profiling for selective protection.

pub mod campaign;
pub mod outcome;
pub mod profile;
pub mod stats;

pub use campaign::{
    asm_fault_spec, ir_fault_spec, run_asm_campaign, run_ir_campaign, AsmCampaign, AsmTrialRunner, CampaignConfig,
    IrCampaign, IrTrialRunner,
};
pub use flowery_faultmodel::{DetectorSpec, FaultClass, ModelSpec};
pub use outcome::{classify, Outcome, OutcomeCounts};
pub use profile::profile_sdc;
pub use stats::{relative_overhead, wilson_half_width, Coverage, Estimate};
