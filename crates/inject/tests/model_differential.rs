//! Differential pinning for the fault-model refactor.
//!
//! The `FaultModel` trait indirection must leave the default single-bit
//! (and legacy double-bit) campaigns **bit-identical** to the pre-refactor
//! hard-wired injector. The constants below were captured by running the
//! pre-refactor code on two fixed programs with a fixed seed; the suite
//! replays the same campaigns through the trait path, with snapshots both
//! on and off, and demands the exact same aggregate outcome counts and
//! golden-run statistics (status/output equality is what the outcome
//! classifier aggregates, and cycles/site counts pin the execution path).

use flowery_faultmodel::{ModelSpec, REGISTERED_MODELS};
use flowery_inject::campaign::{run_asm_campaign, run_ir_campaign, AsmTrialRunner, CampaignConfig, IrTrialRunner};
use flowery_inject::{asm_fault_spec, ir_fault_spec, OutcomeCounts};
use flowery_ir::interp::ExecConfig;
use proptest::prelude::*;

const SEED: u64 = 0xDEAD_0FA1;
const TRIALS: u64 = 300;

/// Short program: finishes before the first auto-cadence snapshot, so the
/// snapshot path degenerates to scratch execution.
const PROG_A: &str =
    "int main() { int s = 0; int i; for (i = 0; i < 20; i = i + 1) { s = s + i * i; } output(s); return s % 251; }";

/// Long program: long enough that snapshot fast-forward actually engages.
const PROG_B: &str =
    "int main() { int s = 0; int i; for (i = 0; i < 1500; i = i + 1) { s = s + i * i; } output(s); return s % 251; }";

fn counts(benign: u64, sdc: u64, detected: u64, due: u64) -> OutcomeCounts {
    OutcomeCounts { benign, sdc, detected, due }
}

fn config(double_bit: bool, snapshots: bool) -> CampaignConfig {
    CampaignConfig {
        trials: TRIALS,
        seed: SEED,
        threads: 2,
        double_bit,
        snapshots,
        ..Default::default()
    }
}

struct Pin {
    src: &'static str,
    double_bit: bool,
    ir: OutcomeCounts,
    asm: OutcomeCounts,
    ir_golden: (u64, u64),       // (dyn_insts, fault_sites)
    asm_golden: (u64, u64, u64), // (dyn_insts, fault_sites, cycles)
}

fn pins() -> Vec<Pin> {
    vec![
        Pin {
            src: PROG_A,
            double_bit: false,
            ir: counts(12, 288, 0, 0),
            asm: counts(104, 163, 0, 33),
            ir_golden: (293, 185),
            asm_golden: (614, 549, 1254),
        },
        Pin {
            src: PROG_A,
            double_bit: true,
            ir: counts(47, 252, 0, 1),
            asm: counts(95, 155, 0, 50),
            ir_golden: (293, 185),
            asm_golden: (614, 549, 1254),
        },
        Pin {
            src: PROG_B,
            double_bit: false,
            ir: counts(10, 290, 0, 0),
            asm: counts(113, 154, 0, 33),
            ir_golden: (21013, 13505),
            asm_golden: (43534, 39029, 88574),
        },
        Pin {
            src: PROG_B,
            double_bit: true,
            ir: counts(32, 267, 0, 1),
            asm: counts(105, 156, 0, 39),
            ir_golden: (21013, 13505),
            asm_golden: (43534, 39029, 88574),
        },
    ]
}

#[test]
fn default_models_are_bit_identical_to_pre_refactor_injector() {
    for pin in pins() {
        let m = flowery_lang::compile("pin", pin.src).unwrap();
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        for snapshots in [true, false] {
            let cfg = config(pin.double_bit, snapshots);
            let ir = run_ir_campaign(&m, &cfg);
            assert_eq!(
                ir.counts, pin.ir,
                "IR counts diverged (double_bit={}, snapshots={snapshots})",
                pin.double_bit
            );
            assert_eq!((ir.golden_dyn_insts, ir.golden_sites), pin.ir_golden);
            let asm = run_asm_campaign(&m, &prog, &cfg);
            assert_eq!(
                asm.counts, pin.asm,
                "asm counts diverged (double_bit={}, snapshots={snapshots})",
                pin.double_bit
            );
            assert_eq!(asm.sdc_insts.len() as u64, asm.counts.sdc);
            assert_eq!((asm.golden_dyn_insts, asm.golden_sites, asm.golden_cycles), pin.asm_golden);
        }
    }
}

#[test]
fn every_model_is_snapshot_path_independent() {
    // Snapshot fast-forward must be invisible to every fault model, not
    // just the default: each effect applies at the site using only
    // at-site state.
    let m = flowery_lang::compile("snap", PROG_B).unwrap();
    let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
    let exec = ExecConfig::default();

    let mut ir_scratch = IrTrialRunner::new(&m, &exec);
    let mut ir_snap = IrTrialRunner::new(&m, &exec);
    ir_snap.enable_snapshots();
    let mut asm_scratch = AsmTrialRunner::new(&m, &prog, &exec);
    let mut asm_snap = AsmTrialRunner::new(&m, &prog, &exec);
    asm_snap.enable_snapshots();

    for &model in REGISTERED_MODELS {
        let mut ff = 0u64;
        for trial in 0..40 {
            let a = ir_scratch.run_trial_model(SEED, trial, model, &[]);
            let b = ir_snap.run_trial_model(SEED, trial, model, &[]);
            assert_eq!(a.outcome, b.outcome, "IR {model} trial {trial}");
            assert_eq!(a.injected_at, b.injected_at, "IR {model} trial {trial}");
            assert_eq!(a.ff_insts + a.exec_insts, b.ff_insts + b.exec_insts, "IR {model} trial {trial}");
            let c = asm_scratch.run_trial_model(SEED, trial, model, &[]);
            let d = asm_snap.run_trial_model(SEED, trial, model, &[]);
            assert_eq!(c.outcome, d.outcome, "asm {model} trial {trial}");
            assert_eq!(c.injected_inst, d.injected_inst, "asm {model} trial {trial}");
            assert_eq!(c.ff_insts + c.exec_insts, d.ff_insts + d.exec_insts, "asm {model} trial {trial}");
            ff += b.ff_insts + d.ff_insts;
        }
        assert!(ff > 0, "snapshots never engaged for {model}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The legacy spec-derivation entry points and the trait path must
    /// produce identical specs for any (seed, trial, sites) — the RNG
    /// draw order through the indirection is unchanged.
    #[test]
    fn spec_derivation_matches_legacy((seed, trial, sites) in (0u64..u64::MAX, 0u64..u64::MAX, 1u64..100_000)) {
        for double in [false, true] {
            let model = if double { ModelSpec::DoubleBitReg } else { ModelSpec::SingleBitReg };
            prop_assert_eq!(ir_fault_spec(seed, trial, sites, double), model.sample_ir(seed, trial, sites));
            prop_assert_eq!(asm_fault_spec(seed, trial, sites, double), model.sample_asm(seed, trial, sites));
        }
    }

    /// Trials under the default model with no detectors are identical
    /// through `run_trial` (legacy) and `run_trial_model` (trait path).
    #[test]
    fn trial_path_matches_legacy((seed, trial) in (0u64..u64::MAX, 0u64..5_000)) {
        let m = flowery_lang::compile("pp", PROG_A).unwrap();
        let exec = ExecConfig::default();
        let mut a = IrTrialRunner::new(&m, &exec);
        let mut b = IrTrialRunner::new(&m, &exec);
        let x = a.run_trial(seed, trial, false);
        let y = b.run_trial_model(seed, trial, ModelSpec::SingleBitReg, &[]);
        prop_assert_eq!(x, y);
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let mut c = AsmTrialRunner::new(&m, &prog, &exec);
        let mut d = AsmTrialRunner::new(&m, &prog, &exec);
        let x = c.run_trial(seed, trial, false);
        let y = d.run_trial_model(seed, trial, ModelSpec::SingleBitReg, &[]);
        prop_assert_eq!(x, y);
    }
}
