//! # flowery-backend
//!
//! An x86-64-flavoured backend for `flowery-ir`: instruction selection with
//! a fast (`-O0`-style) register allocator, the compare-folding model behind
//! the paper's comparison penetration, and a machine simulator with
//! destination-register fault injection (the "assembly level" of the SC'23
//! study).
//!
//! ```
//! use flowery_backend::{compile_module, BackendConfig, Machine};
//! use flowery_ir::interp::{ExecConfig, ExecStatus};
//!
//! let module = flowery_lang::compile("demo", "int main() { return 6 * 7; }").unwrap();
//! let program = compile_module(&module, &BackendConfig::default());
//! let result = Machine::new(&module, &program).run(&ExecConfig::default(), None);
//! assert_eq!(result.status, ExecStatus::Completed(42));
//! ```

pub mod exec;
pub mod fold;
pub mod frame;
pub mod harden;
pub mod isel;
pub mod machine;
pub mod mir;
pub mod regcache;
pub mod snapio;
pub mod snapshot;

pub use exec::{executor_for, CompiledExec, Executor, InterpExec};
pub use flowery_ir::interp::{ExecMode, FaultEffect};
pub use harden::{harden_program, HardenConfig, HardenStats};
pub use isel::{compile_module, BackendConfig};
pub use machine::{AsmFaultSpec, MachResult, Machine};
pub use mir::{print_program, AInst, AKind, AsmProgram, AsmRole, FaultDest, Loc, Reg};
pub use snapshot::{AsmScratch, AsmSnapshotSet};
