//! Stable binary serialization for [`AsmSnapshotSet`] — the asm twin of
//! `flowery_ir::interp::snapio`, persisted next to a campaign checkpoint so
//! `--resume` skips the capture runs.
//!
//! Format (all integers little-endian):
//!
//! ```text
//!   magic "FLSNAPAS" | version u32 | content_hash u64
//!   mem_size u64 | stack_size u64            (base image is rebuilt, not stored)
//!   cadence tag u8 + value u64 | shared_snaps u64
//!   golden MachResult | first_exec option | snapshot count u64
//!   per snapshot: counters, ip, register file, optional profile, page DELTA
//!   fnv1a-64 checksum over everything above
//! ```
//!
//! Page overlays are cumulative and `Arc`-shared across snapshots, so each
//! snapshot stores only the pages whose `Arc` differs from the predecessor's
//! entry; the loader rebuilds each overlay as `prev.clone()` plus the delta.
//!
//! Loading never panics on bad input: the checksum is verified before any
//! parsing, and every length/index is validated against the program.

use crate::machine::MachResult;
use crate::mir::{AsmProgram, Reg};
use crate::snapshot::{AsmSnapshot, AsmSnapshotSet};
use flowery_ir::interp::memory::{Memory, PageMap, TrapKind};
use flowery_ir::interp::{Cadence, ExecStatus, GLOBAL_BASE};
use flowery_ir::module::Module;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"FLSNAPAS";
const VERSION: u32 = 1;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- writer helpers -------------------------------------------------------

fn w_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn w_bytes(w: &mut Vec<u8>, b: &[u8]) {
    w_u64(w, b.len() as u64);
    w.extend_from_slice(b);
}

fn w_u64s(w: &mut Vec<u8>, vs: &[u64]) {
    w_u64(w, vs.len() as u64);
    for &v in vs {
        w_u64(w, v);
    }
}

fn trap_code(t: TrapKind) -> u8 {
    match t {
        TrapKind::OobLoad => 0,
        TrapKind::OobStore => 1,
        TrapKind::DivFault => 2,
        TrapKind::InstLimit => 3,
        TrapKind::CallDepth => 4,
        TrapKind::StackOverflow => 5,
        TrapKind::BadControl => 6,
        TrapKind::OutputFlood => 7,
    }
}

fn trap_from(c: u8) -> Result<TrapKind, String> {
    Ok(match c {
        0 => TrapKind::OobLoad,
        1 => TrapKind::OobStore,
        2 => TrapKind::DivFault,
        3 => TrapKind::InstLimit,
        4 => TrapKind::CallDepth,
        5 => TrapKind::StackOverflow,
        6 => TrapKind::BadControl,
        7 => TrapKind::OutputFlood,
        _ => return Err(format!("snapshot file: unknown trap kind {c}")),
    })
}

fn write_counts(w: &mut Vec<u8>, p: Option<&Vec<u64>>) {
    match p {
        None => w.push(0),
        Some(v) => {
            w.push(1);
            w_u64s(w, v);
        }
    }
}

fn write_result(w: &mut Vec<u8>, r: &MachResult) {
    match r.status {
        ExecStatus::Completed(v) => {
            w.push(0);
            w_u64(w, v);
        }
        ExecStatus::Detected => w.push(1),
        ExecStatus::Trapped(t) => {
            w.push(2);
            w.push(trap_code(t));
        }
    }
    w_bytes(w, &r.output);
    w_u64(w, r.dyn_insts);
    w_u64(w, r.fault_sites);
    w_u64(w, r.cycles);
    match r.injected_inst {
        None => w.push(0),
        Some(i) => {
            w.push(1);
            w_u32(w, i);
        }
    }
    write_counts(w, r.profile.as_ref());
}

// ---- reader ---------------------------------------------------------------

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.b.len() - self.pos < n {
            return Err("snapshot file: truncated".into());
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A count of items that each occupy at least `elem` bytes — bounds the
    /// allocation a corrupt length field could otherwise trigger.
    fn count(&mut self, elem: usize) -> Result<usize, String> {
        let n = self.u64()?;
        let remaining = (self.b.len() - self.pos) as u64;
        if n.saturating_mul(elem as u64) > remaining {
            return Err("snapshot file: length field exceeds file size".into());
        }
        Ok(n as usize)
    }

    fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }
}

fn read_counts(c: &mut Cursor, program: &AsmProgram) -> Result<Option<Vec<u64>>, String> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let v = c.u64s()?;
            if v.len() != program.insts.len() {
                return Err("snapshot file: profile shape does not match program".into());
            }
            Ok(Some(v))
        }
        t => Err(format!("snapshot file: bad profile tag {t}")),
    }
}

fn read_result(c: &mut Cursor, program: &AsmProgram) -> Result<MachResult, String> {
    let status = match c.u8()? {
        0 => ExecStatus::Completed(c.u64()?),
        1 => ExecStatus::Detected,
        2 => ExecStatus::Trapped(trap_from(c.u8()?)?),
        t => return Err(format!("snapshot file: bad status tag {t}")),
    };
    let output = c.bytes()?;
    let dyn_insts = c.u64()?;
    let fault_sites = c.u64()?;
    let cycles = c.u64()?;
    let injected_inst = match c.u8()? {
        0 => None,
        1 => Some(c.u32()?),
        t => return Err(format!("snapshot file: bad injected_inst tag {t}")),
    };
    let profile = read_counts(c, program)?;
    Ok(MachResult {
        status,
        output,
        dyn_insts,
        fault_sites,
        cycles,
        injected_inst,
        profile,
    })
}

impl AsmSnapshotSet {
    /// Serialize to the stable on-disk format. `content_hash` covers the
    /// module *and* program this set was captured from; the loader refuses
    /// a file whose hash does not match.
    pub fn to_bytes(&self, content_hash: u64) -> Vec<u8> {
        let mut w = Vec::new();
        w.extend_from_slice(MAGIC);
        w_u32(&mut w, VERSION);
        w_u64(&mut w, content_hash);
        w_u64(&mut w, self.base.size());
        w_u64(&mut w, self.base.size() - self.base.stack_limit());
        match self.cadence {
            Cadence::Insts(k) => {
                w.push(0);
                w_u64(&mut w, k);
            }
            Cadence::Sites(k) => {
                w.push(1);
                w_u64(&mut w, k);
            }
        }
        w_u64(&mut w, self.shared_snaps as u64);
        write_result(&mut w, &self.golden);
        match &self.first_exec {
            None => w.push(0),
            Some(e) => {
                w.push(1);
                w_u64s(&mut w, e);
            }
        }
        w_u64(&mut w, self.snaps.len() as u64);
        let mut prev: Option<&PageMap> = None;
        for s in &self.snaps {
            w_u64(&mut w, s.dyn_insts);
            w_u64(&mut w, s.fault_sites);
            w_u64(&mut w, s.cycles);
            w_u32(&mut w, s.ip);
            for &r in &s.regs {
                w_u64(&mut w, r);
            }
            w_u64(&mut w, s.output_len as u64);
            write_counts(&mut w, s.profile.as_ref());
            // Overlays only grow; encode the pages whose Arc is new.
            debug_assert!(prev.is_none_or(|p| p.keys().all(|k| s.pages.contains_key(k))));
            let mut delta: Vec<(u32, &Arc<[u8]>)> = s
                .pages
                .iter()
                .filter(|(k, v)| prev.and_then(|p| p.get(k)).is_none_or(|pv| !Arc::ptr_eq(pv, v)))
                .map(|(k, v)| (*k, v))
                .collect();
            delta.sort_unstable_by_key(|(k, _)| *k);
            w_u64(&mut w, delta.len() as u64);
            for (k, v) in delta {
                w_u32(&mut w, k);
                w_u32(&mut w, v.len() as u32);
                w.extend_from_slice(v);
            }
            prev = Some(&s.pages);
        }
        let c = fnv1a(&w);
        w_u64(&mut w, c);
        w
    }

    /// Deserialize a set previously written by [`AsmSnapshotSet::to_bytes`]
    /// for the same module+program. Rejects corrupt, truncated, version-
    /// mismatched, or wrong-content files with a descriptive error — never
    /// panics.
    pub fn from_bytes(
        bytes: &[u8],
        module: &Module,
        program: &AsmProgram,
        content_hash: u64,
    ) -> Result<AsmSnapshotSet, String> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err("snapshot file: truncated".into());
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err("snapshot file: checksum mismatch (corrupt or truncated)".into());
        }
        let mut c = Cursor { b: body, pos: 0 };
        if c.take(MAGIC.len())? != MAGIC {
            return Err("snapshot file: bad magic (not an asm snapshot set)".into());
        }
        let version = c.u32()?;
        if version != VERSION {
            return Err(format!("snapshot file: unsupported format version {version} (expected {VERSION})"));
        }
        let hash = c.u64()?;
        if hash != content_hash {
            return Err("snapshot file: content hash mismatch".into());
        }
        let mem_size = c.u64()?;
        let stack_size = c.u64()?;
        if stack_size > mem_size || mem_size < GLOBAL_BASE + stack_size + 0x1000 {
            return Err("snapshot file: implausible memory geometry".into());
        }
        let cadence = match c.u8()? {
            0 => Cadence::Insts(c.u64()?),
            1 => Cadence::Sites(c.u64()?),
            t => return Err(format!("snapshot file: bad cadence tag {t}")),
        };
        if cadence.value() == 0 {
            return Err("snapshot file: zero cadence".into());
        }
        let shared_snaps = c.u64()? as usize;
        let golden = read_result(&mut c, program)?;
        let first_exec = match c.u8()? {
            0 => None,
            1 => {
                let e = c.u64s()?;
                if e.len() != program.insts.len() {
                    return Err("snapshot file: first-exec shape does not match program".into());
                }
                Some(e)
            }
            t => return Err(format!("snapshot file: bad first-exec tag {t}")),
        };
        let base = Memory::new(module, mem_size, stack_size);
        let n_snaps = c.count(8)?;
        let mut snaps = Vec::with_capacity(n_snaps);
        let mut prev = PageMap::new();
        for _ in 0..n_snaps {
            let dyn_insts = c.u64()?;
            let fault_sites = c.u64()?;
            let cycles = c.u64()?;
            let ip = c.u32()?;
            if ip as usize > program.insts.len() {
                return Err("snapshot file: snapshot ip out of range".into());
            }
            let mut regs = [0u64; Reg::COUNT];
            for r in regs.iter_mut() {
                *r = c.u64()?;
            }
            let output_len = c.u64()? as usize;
            if output_len > golden.output.len() {
                return Err("snapshot file: snapshot output length exceeds golden output".into());
            }
            let profile = read_counts(&mut c, program)?;
            let n_delta = c.count(8)?;
            let mut pages = prev.clone();
            for _ in 0..n_delta {
                let page = c.u32()?;
                let len = c.u32()? as usize;
                if page >= base.page_count() || len != base.page_slice(page).len() {
                    return Err("snapshot file: bad page record".into());
                }
                let data: Arc<[u8]> = Arc::from(c.take(len)?);
                pages.insert(page, data);
            }
            prev = pages.clone();
            snaps.push(AsmSnapshot {
                dyn_insts,
                fault_sites,
                cycles,
                ip,
                regs,
                output_len,
                profile,
                pages,
            });
        }
        if c.pos != body.len() {
            return Err("snapshot file: trailing garbage".into());
        }
        if shared_snaps > snaps.len() {
            return Err("snapshot file: shared_snaps exceeds snapshot count".into());
        }
        Ok(AsmSnapshotSet { base, golden, cadence, snaps, first_exec, shared_snaps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{compile_module, BackendConfig};
    use crate::machine::{AsmFaultSpec, Machine};
    use crate::snapshot::AsmScratch;
    use flowery_ir::builder::{FuncBuilder, ModuleBuilder};
    use flowery_ir::inst::{BinOp, IPred};
    use flowery_ir::interp::ExecConfig;
    use flowery_ir::types::Type;
    use flowery_ir::value::Op;

    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("loop");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let s = fb.alloca(Type::I64, 1);
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(s));
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(25));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let sv = fb.load(Type::I64, Op::inst(s));
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let ns = fb.bin(BinOp::Add, Type::I64, Op::inst(sv), Op::inst(iv2));
        fb.store(Type::I64, Op::inst(ns), Op::inst(s));
        let ni = fb.bin(BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, Op::inst(s));
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        mb.finish()
    }

    const HASH: u64 = 0x0F1E_2D3C_4B5A_6978;

    #[test]
    fn round_trip_is_bit_identical() {
        let m = loop_module();
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);
        let cfg = ExecConfig { profile: true, max_dyn_insts: 100_000, ..Default::default() };
        let set = mach.capture_snapshots(&cfg, 32);
        assert!(set.len() > 2);
        let bytes = set.to_bytes(HASH);
        let loaded = AsmSnapshotSet::from_bytes(&bytes, &m, &prog, HASH).unwrap();
        assert_eq!(loaded.golden.status, set.golden.status);
        assert_eq!(loaded.golden.output, set.golden.output);
        assert_eq!(loaded.golden.cycles, set.golden.cycles);
        assert_eq!(loaded.golden.profile, set.golden.profile);
        assert_eq!(loaded.cadence, set.cadence);
        assert_eq!(loaded.shared_snaps, set.shared_snaps);
        assert_eq!(loaded.first_exec, set.first_exec);
        assert_eq!(loaded.snaps.len(), set.snaps.len());
        for (a, b) in loaded.snaps.iter().zip(&set.snaps) {
            assert_eq!(a.dyn_insts, b.dyn_insts);
            assert_eq!(a.fault_sites, b.fault_sites);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.regs, b.regs);
            assert_eq!(a.output_len, b.output_len);
            assert_eq!(a.profile, b.profile);
            assert_eq!(a.pages.len(), b.pages.len());
            for (k, v) in &a.pages {
                assert_eq!(&b.pages[k][..], &v[..], "page {k} content differs");
            }
        }
        // Arc sharing survives the round trip.
        for (lw, ow) in loaded.snaps.windows(2).zip(set.snaps.windows(2)) {
            for (k, ov) in &ow[0].pages {
                if ow[1].pages.get(k).is_some_and(|ov2| Arc::ptr_eq(ov, ov2)) {
                    let (lv, lv2) = (&lw[0].pages[k], &lw[1].pages[k]);
                    assert!(Arc::ptr_eq(lv, lv2), "page {k} duplicated on load");
                }
            }
        }
        // Fast-forward from the loaded set is bit-identical at every site.
        let mut s1 = AsmScratch::new();
        let mut s2 = AsmScratch::new();
        for site in 0..set.golden.fault_sites {
            let spec = AsmFaultSpec::single(site, 7);
            let (a, ska) = mach.run_fast_forward(&cfg, spec, &set, &mut s1);
            let (b, skb) = mach.run_fast_forward(&cfg, spec, &loaded, &mut s2);
            assert_eq!(a.status, b.status, "site {site}");
            assert_eq!(a.output, b.output, "site {site}");
            assert_eq!(a.dyn_insts, b.dyn_insts, "site {site}");
            assert_eq!(a.cycles, b.cycles, "site {site}");
            assert_eq!(a.profile, b.profile, "site {site}");
            assert_eq!(ska, skb, "site {site}");
        }
    }

    #[test]
    fn rejects_corruption_and_mismatches() {
        let m = loop_module();
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);
        let cfg = ExecConfig { max_dyn_insts: 100_000, ..Default::default() };
        let set = mach.capture_snapshots(&cfg, 32);
        let bytes = set.to_bytes(HASH);
        assert!(AsmSnapshotSet::from_bytes(&bytes, &m, &prog, HASH).is_ok());

        for pos in [0usize, 9, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let err = AsmSnapshotSet::from_bytes(&bad, &m, &prog, HASH).unwrap_err();
            assert!(
                err.contains("checksum") || err.contains("magic") || err.contains("version"),
                "pos {pos}: {err}"
            );
        }
        for cut in (0..bytes.len()).step_by(7) {
            assert!(AsmSnapshotSet::from_bytes(&bytes[..cut], &m, &prog, HASH).is_err(), "cut {cut}");
        }
        let err = AsmSnapshotSet::from_bytes(&bytes, &m, &prog, HASH ^ 1).unwrap_err();
        assert!(err.contains("hash"), "{err}");
        // An IR-layer file is refused by magic even with a valid checksum.
        let mut wrong = bytes.clone();
        wrong[..8].copy_from_slice(b"FLSNAPIR");
        let l = wrong.len();
        let c = fnv1a(&wrong[..l - 8]);
        wrong[l - 8..].copy_from_slice(&c.to_le_bytes());
        let err = AsmSnapshotSet::from_bytes(&wrong, &m, &prog, HASH).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }
}
