//! Assembly-level hardening — the implementation option the paper sketches
//! but does not build (§8 *Other Implementation Options*: "it is also
//! possible to implement the patches at assembly level. We do not choose
//! this way since one rarely has a convenient backend compiler to do so").
//! This repository *has* the backend, so the remaining penetration classes
//! that are unfixable at IR level (call and mapping penetration, plus the
//! residual store-write corruption) get read-back verification here:
//!
//! - **argument moves** (call penetration): after `mov rdi, [slot]`,
//!   insert `cmp rdi, [slot]` + `jne detect` — a fault in the argument
//!   register is caught before the call;
//! - **parameter spills / return moves**: same read-back on the callee and
//!   return paths;
//! - **store writes** (residual store penetration): after `mov [p], v`,
//!   insert `cmp v, [p]` + `jne detect` — corruption of the stored value
//!   (or the value register) is caught immediately;
//! - **frame saves** (mapping penetration): after `push rbp`, insert
//!   `cmp rbp, [rsp]` + `jne detect`.
//!
//! Each check is a flags-safe insertion point (no live flags cross these
//! movs in code produced by this backend) and jumps to a per-program
//! detector island on mismatch.

use crate::mir::{AInst, AKind, AOp, AsmFunc, AsmProgram, AsmRole, MemRef, Reg, CC};
use serde::{Deserialize, Serialize};

/// Which read-back verifications to insert.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HardenConfig {
    /// Verify calling-convention argument moves (call penetration).
    pub verify_args: bool,
    /// Verify callee parameter spills.
    pub verify_param_spills: bool,
    /// Verify return-value moves.
    pub verify_ret_moves: bool,
    /// Verify application store writes (residual store penetration).
    pub verify_stores: bool,
    /// Verify the prologue's frame-pointer save (mapping penetration).
    pub verify_frame_saves: bool,
}

impl Default for HardenConfig {
    fn default() -> HardenConfig {
        HardenConfig {
            verify_args: true,
            verify_param_spills: true,
            verify_ret_moves: true,
            verify_stores: true,
            verify_frame_saves: true,
        }
    }
}

/// Statistics from a hardening run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardenStats {
    pub arg_checks: usize,
    pub spill_checks: usize,
    pub ret_checks: usize,
    pub store_checks: usize,
    pub frame_checks: usize,
}

impl HardenStats {
    pub fn total(&self) -> usize {
        self.arg_checks + self.spill_checks + self.ret_checks + self.store_checks + self.frame_checks
    }
}

/// The verification pair to append after instruction `inst`, if any.
fn check_for(inst: &AInst, cfg: &HardenConfig, stats: &mut HardenStats) -> Option<(AKind, u8)> {
    match (&inst.kind, inst.role) {
        // Argument move: `mov argreg, src` — re-compare against the source.
        (AKind::Mov { w, dst: AOp::Reg(r), src }, AsmRole::ArgMove) if cfg.verify_args => {
            stats.arg_checks += 1;
            Some((AKind::Cmp { w: *w, lhs: AOp::Reg(*r), rhs: *src }, *w))
        }
        (AKind::MovSd { w, dst: AOp::Reg(r), src }, AsmRole::ArgMove) if cfg.verify_args => {
            // Float read-back via ucomi. Equal bit patterns compare
            // equal; a corrupted value compares not-equal, below, or
            // unordered — the `jne` + `jb` pair after the check covers all
            // three (unordered sets CF).
            stats.arg_checks += 1;
            Some((AKind::Ucomi { w: *w, lhs: *r, rhs: *src }, *w))
        }
        // Callee parameter spill / return move / store write: memory
        // destination — read it back against the source register.
        (AKind::Mov { w, dst: AOp::Mem(m), src: AOp::Reg(r) }, AsmRole::ParamSpill) if cfg.verify_param_spills => {
            stats.spill_checks += 1;
            Some((AKind::Cmp { w: *w, lhs: AOp::Reg(*r), rhs: AOp::Mem(*m) }, *w))
        }
        (AKind::Mov { w, dst: AOp::Mem(m), src: AOp::Reg(r) }, AsmRole::RetMove) if cfg.verify_ret_moves => {
            stats.ret_checks += 1;
            Some((AKind::Cmp { w: *w, lhs: AOp::Reg(*r), rhs: AOp::Mem(*m) }, *w))
        }
        (AKind::Mov { w, dst: AOp::Mem(m), src: AOp::Reg(r) }, AsmRole::Compute) if cfg.verify_stores => {
            stats.store_checks += 1;
            Some((AKind::Cmp { w: *w, lhs: AOp::Reg(*r), rhs: AOp::Mem(*m) }, *w))
        }
        (AKind::MovSd { w, dst: AOp::Mem(m), src: AOp::Reg(r) }, AsmRole::Compute) if cfg.verify_stores => {
            stats.store_checks += 1;
            Some((AKind::Ucomi { w: *w, lhs: *r, rhs: AOp::Mem(*m) }, *w))
        }
        // Frame save: `push rbp` -> compare rbp with the just-pushed slot.
        (AKind::Push { src: AOp::Reg(Reg::Rbp) }, AsmRole::Prologue) if cfg.verify_frame_saves => {
            stats.frame_checks += 1;
            Some((
                AKind::Cmp {
                    w: 8,
                    lhs: AOp::Reg(Reg::Rbp),
                    rhs: AOp::Mem(MemRef { base: Some(Reg::Rsp), disp: 0 }),
                },
                8,
            ))
        }
        _ => None,
    }
}

/// Insert read-back verification into a linked program. Returns the
/// hardened program and statistics.
pub fn harden_program(prog: &AsmProgram, cfg: &HardenConfig) -> (AsmProgram, HardenStats) {
    let mut stats = HardenStats::default();
    // Plan: for each old instruction, how many instructions are emitted
    // (1, or 3 with a check pair).
    let checks: Vec<Option<(AKind, u8)>> = prog.insts.iter().map(|i| check_for(i, cfg, &mut stats)).collect();

    // Old index -> new index.
    let mut new_index = Vec::with_capacity(prog.insts.len() + 1);
    let mut acc = 0u32;
    for c in &checks {
        new_index.push(acc);
        acc += if c.is_some() { 4 } else { 1 };
    }
    let detect_index = acc; // the detector island at the end

    let mut insts: Vec<AInst> = Vec::with_capacity(acc as usize + 1);
    for (i, inst) in prog.insts.iter().enumerate() {
        let mut patched = *inst;
        // Retarget control flow through the mapping.
        match &mut patched.kind {
            AKind::Jcc { target, .. } | AKind::Jmp { target } if (*target as usize) < new_index.len() => {
                *target = new_index[*target as usize];
            }
            AKind::Call { target, .. } => {
                *target = new_index[*target as usize];
            }
            _ => {}
        }
        insts.push(patched);
        if let Some((check, _w)) = checks[i] {
            for kind in [
                check,
                // `jne` catches value mismatches; `jb` catches CF=1 cases
                // (unordered float read-backs). Redundant but harmless for
                // integer checks, where a mismatch always clears ZF.
                AKind::Jcc { cc: CC::Ne, target: detect_index },
                AKind::Jcc { cc: CC::B, target: detect_index },
            ] {
                insts.push(AInst {
                    kind,
                    role: AsmRole::Harden,
                    prov: inst.prov,
                    ir_role: inst.ir_role,
                });
            }
        }
    }
    debug_assert_eq!(insts.len() as u32, detect_index);
    insts.push(AInst {
        kind: AKind::DetectTrap,
        role: AsmRole::Harden,
        prov: None,
        ir_role: flowery_ir::IrRole::Patch,
    });

    let funcs: Vec<AsmFunc> = prog
        .funcs
        .iter()
        .map(|f| AsmFunc {
            name: f.name.clone(),
            ir_id: f.ir_id,
            entry: new_index[f.entry as usize],
            end: if (f.end as usize) < new_index.len() {
                new_index[f.end as usize]
            } else {
                detect_index
            },
            frame_size: f.frame_size,
        })
        .collect();

    let main_entry = new_index[prog.main_entry as usize];
    let static_sites = insts.iter().filter(|i| i.kind.is_fault_site()).count();
    (AsmProgram { insts, funcs, main_entry, static_sites }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{compile_module, BackendConfig};
    use crate::machine::{AsmFaultSpec, Machine};
    use flowery_ir::interp::{ExecConfig, ExecStatus};

    fn compiled(src: &str) -> (flowery_ir::Module, AsmProgram) {
        let m = flowery_lang::compile("h", src).unwrap();
        let prog = compile_module(&m, &BackendConfig::default());
        (m, prog)
    }

    const CALL_SRC: &str = "int add(int a, int b) { return a + b; }\n\
                            int main() { int r = add(20, 22); output(r); return r; }";

    #[test]
    fn hardening_preserves_golden_behaviour() {
        let (m, prog) = compiled(CALL_SRC);
        let golden = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
        let (hard, stats) = harden_program(&prog, &HardenConfig::default());
        assert!(stats.total() > 0);
        assert!(stats.arg_checks > 0);
        assert!(stats.frame_checks > 0);
        let r = Machine::new(&m, &hard).run(&ExecConfig::default(), None);
        assert_eq!(r.status, golden.status);
        assert_eq!(r.output, golden.output);
        assert!(r.dyn_insts > golden.dyn_insts);
    }

    #[test]
    fn arg_register_faults_are_detected() {
        let (m, prog) = compiled(CALL_SRC);
        let (hard, _) = harden_program(&prog, &HardenConfig::default());
        let mach = Machine::new(&m, &hard);
        let golden = mach.run(&ExecConfig::default(), None);
        let exec = ExecConfig::with_budget_for(golden.dyn_insts);
        // Sweep every site; count SDCs attributable to ArgMove faults on
        // the hardened program: the read-back must convert them into
        // detections.
        let mut arg_sdc = 0;
        let mut arg_detected = 0;
        let mut site = 0u64;
        // Map site index to instruction by re-running with each site.
        while site < golden.fault_sites {
            let r = mach.run(&exec, Some(AsmFaultSpec::single(site, 5)));
            if let Some(idx) = r.injected_inst {
                if hard.insts[idx as usize].role == AsmRole::ArgMove {
                    match r.status {
                        ExecStatus::Detected => arg_detected += 1,
                        ExecStatus::Completed(_) if r.output != golden.output => arg_sdc += 1,
                        _ => {}
                    }
                }
            }
            site += 1;
        }
        assert!(arg_detected > 0, "hardened arg moves must detect faults");
        assert_eq!(arg_sdc, 0, "no arg-move fault may escape as SDC");
    }

    #[test]
    fn store_writes_are_verified() {
        let src = "global int g[2];\n\
                   int main() { g[0] = 41; g[1] = g[0] + 1; output(g[1]); return g[1]; }";
        let (m, prog) = compiled(src);
        let (hard, stats) = harden_program(&prog, &HardenConfig::default());
        assert!(stats.store_checks > 0);
        let mach = Machine::new(&m, &hard);
        let golden = mach.run(&ExecConfig::default(), None);
        let exec = ExecConfig::with_budget_for(golden.dyn_insts);
        let mut escaped = 0;
        for site in 0..golden.fault_sites {
            let r = mach.run(&exec, Some(AsmFaultSpec::single(site, 3)));
            if let Some(idx) = r.injected_inst {
                let inst = &hard.insts[idx as usize];
                let is_store_write =
                    inst.role == AsmRole::Compute && matches!(inst.kind, AKind::Mov { dst: AOp::Mem(_), .. });
                if is_store_write {
                    if let ExecStatus::Completed(_) = r.status {
                        if r.output != golden.output {
                            escaped += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(escaped, 0, "store-write corruption must be caught by read-back");
    }

    #[test]
    fn selective_config_respected() {
        let (_, prog) = compiled(CALL_SRC);
        let none = HardenConfig {
            verify_args: false,
            verify_param_spills: false,
            verify_ret_moves: false,
            verify_stores: false,
            verify_frame_saves: false,
        };
        let (hard, stats) = harden_program(&prog, &none);
        assert_eq!(stats.total(), 0);
        // Only the detector island was appended.
        assert_eq!(hard.insts.len(), prog.insts.len() + 1);
        let only_args = HardenConfig { verify_args: true, ..none };
        let (_, s2) = harden_program(&prog, &only_args);
        assert!(s2.arg_checks > 0);
        assert_eq!(s2.store_checks, 0);
    }

    #[test]
    fn control_flow_survives_retargeting() {
        // A branchy, recursive program stresses jump/call retargeting.
        let src = "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
                   int main() { int r = fib(9); output(r); return r; }";
        let (m, prog) = compiled(src);
        let golden = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
        let (hard, _) = harden_program(&prog, &HardenConfig::default());
        let r = Machine::new(&m, &hard).run(&ExecConfig::default(), None);
        assert_eq!(r.status, ExecStatus::Completed(34));
        assert_eq!(r.status, golden.status);
        assert_eq!(r.output, golden.output);
    }
}
