//! Stack frame layout for the fast (-O0-style) allocator.
//!
//! Every IR value gets a *stack home* below `rbp`; `alloca`s additionally
//! get a contiguous region for their storage. Parameters are spilled to
//! homes in the prologue. This is the "everything lives in memory" shape of
//! `-O0` code that gives rise to the paper's store penetration.

use flowery_ir::inst::InstKind;
use flowery_ir::interp::memory::align_up;
use flowery_ir::module::{Function, Module};
use flowery_ir::value::{FuncId, InstId};

/// Sentinel for "no slot".
const NO_SLOT: i64 = i64::MIN;

/// Frame layout of one function: rbp-relative displacements (all negative).
#[derive(Debug, Clone)]
pub struct FrameLayout {
    /// Total frame size in bytes, 16-aligned.
    pub size: u64,
    /// Home of each instruction result, indexed by `InstId`.
    value_slot: Vec<i64>,
    /// Home of each parameter.
    param_slot: Vec<i64>,
    /// Base displacement of each `alloca`'s storage region.
    alloca_region: Vec<i64>,
}

impl FrameLayout {
    /// Compute the layout for `func`.
    pub fn compute(m: &Module, fid: FuncId, func: &Function) -> FrameLayout {
        let mut off: u64 = 0;
        let mut bump = |bytes: u64, align: u64| -> i64 {
            off = align_up(off + bytes, align);
            -(off as i64)
        };

        let param_slot: Vec<i64> = func.params.iter().map(|_| bump(8, 8)).collect();

        let mut value_slot = vec![NO_SLOT; func.insts.len()];
        let mut alloca_region = vec![NO_SLOT; func.insts.len()];
        for &iid in &func.live_insts() {
            let data = func.inst(iid);
            if let InstKind::Alloca { elem, count } = data.kind {
                let bytes = elem.size() * count as u64;
                alloca_region[iid.index()] = bump(bytes, elem.align().max(8));
            }
            if m.result_ty(fid, iid).is_some() {
                value_slot[iid.index()] = bump(8, 8);
            }
        }

        FrameLayout {
            size: align_up(off, 16),
            value_slot,
            param_slot,
            alloca_region,
        }
    }

    /// Home displacement of an instruction result.
    pub fn slot(&self, id: InstId) -> i64 {
        let s = self.value_slot[id.index()];
        assert_ne!(s, NO_SLOT, "instruction %{} has no stack home", id.0);
        s
    }

    /// Home displacement of a parameter.
    pub fn param(&self, idx: u32) -> i64 {
        self.param_slot[idx as usize]
    }

    /// Storage region displacement of an `alloca`.
    pub fn alloca(&self, id: InstId) -> i64 {
        let s = self.alloca_region[id.index()];
        assert_ne!(s, NO_SLOT, "%{} is not an alloca", id.0);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_ir::builder::{FuncBuilder, ModuleBuilder};
    use flowery_ir::types::Type;
    use flowery_ir::value::Op;

    #[test]
    fn slots_are_distinct_and_frame_aligned() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![Type::I64, Type::F64], Some(Type::I64));
        let a = fb.alloca(Type::I32, 10);
        let l = fb.load(Type::I32, Op::inst(a));
        let z = fb.cast(flowery_ir::CastKind::Sext, Type::I32, Type::I64, Op::inst(l));
        fb.ret(Some(Op::inst(z)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let fid = m.main_func().unwrap();
        let layout = FrameLayout::compute(&m, fid, m.func(fid));
        assert_eq!(layout.size % 16, 0);
        let mut seen = std::collections::HashSet::new();
        for d in [
            layout.param(0),
            layout.param(1),
            layout.slot(a),
            layout.slot(l),
            layout.slot(z),
            layout.alloca(a),
        ] {
            assert!(d < 0);
            assert!((-d) as u64 <= layout.size);
            assert!(seen.insert(d), "slot collision at {d}");
        }
        // The alloca region must hold 40 bytes without overlapping its own
        // address slot.
        assert!((layout.alloca(a) - layout.slot(a)).unsigned_abs() >= 8);
    }

    #[test]
    #[should_panic(expected = "not an alloca")]
    fn alloca_lookup_panics_for_non_alloca() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let v = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::ci64(1), Op::ci64(2));
        fb.ret(Some(Op::inst(v)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let fid = m.main_func().unwrap();
        let layout = FrameLayout::compute(&m, fid, m.func(fid));
        layout.alloca(v);
    }
}
