//! Instruction selection + fast register allocation (one pass, `-O0` style).
//!
//! Every IR value has a stack home ([`FrameLayout`]); operands are loaded
//! into scratch registers on demand with an intra-block [`RegCache`], and
//! results are eagerly stored back. Comparisons that immediately feed the
//! block terminator are fused into `cmp`+`jcc` (like LLVM FastISel);
//! everything else materializes through `set<cc>` and `test`.
//!
//! The five cross-layer penetration sites of the paper all *emerge* here:
//! - store penetration: `OperandReload` movs feeding a `mov [mem], reg`,
//! - branch penetration: the `test` re-establishing flags for an unfused
//!   branch,
//! - comparison penetration: constant conditions left by the backend's
//!   compare folding ([`crate::fold`]),
//! - call penetration: `ArgMove`s into the argument registers,
//! - mapping penetration: prologue/epilogue `push`/`pop`/`ret`.

use crate::frame::FrameLayout;
use crate::mir::{
    AInst, AKind, AOp, AluOp, AsmFunc, AsmProgram, AsmRole, MathKind, MemRef, OutKind, Reg, ShiftOp, SseOp, CC,
};
use crate::regcache::RegCache;
use flowery_ir::inst::{BinOp, Callee, CastKind, FPred, IPred, InstKind, Intrinsic, Terminator};
use flowery_ir::interp::Memory;
use flowery_ir::module::{Function, Module};
use flowery_ir::types::Type;
use flowery_ir::value::{BlockId, FuncId, InstId, Op, Value};
use flowery_ir::IrRole;

/// Backend configuration knobs (each is an ablation axis; see DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct BackendConfig {
    /// Intra-block register caching (off = every operand reloads).
    pub reg_cache: bool,
    /// Model the LLVM compare folding that causes comparison penetration.
    pub fold_compares: bool,
    /// Fuse `icmp`+`br` into `cmp`+`jcc` when adjacent and single-use.
    pub fuse_cmp_branch: bool,
    /// Number of allocatable scratch GPRs (4..=9; lowering needs up to four
    /// simultaneously live scratch registers). Smaller pools model
    /// register-scarce ISAs: more cache evictions, more reload `mov`s,
    /// more store-penetration surface (paper §8's RISC-V/ARM conjecture).
    pub gpr_pool: usize,
}

impl Default for BackendConfig {
    fn default() -> BackendConfig {
        BackendConfig {
            reg_cache: true,
            fold_compares: true,
            fuse_cmp_branch: true,
            gpr_pool: Reg::GPR_POOL.len(),
        }
    }
}

impl BackendConfig {
    /// The allocatable GPR slice for this configuration.
    pub(crate) fn gprs(&self) -> &'static [Reg] {
        let n = self.gpr_pool.clamp(4, Reg::GPR_POOL.len());
        &Reg::GPR_POOL[..n]
    }
}

/// Compile a verified module to a linked machine program.
///
/// The input module is not mutated; backend folding happens on a clone
/// (which is why IR-level fault injection on the protected module still
/// sees the full protection, while the assembly does not — the paper's
/// central observation).
pub fn compile_module(m: &Module, cfg: &BackendConfig) -> AsmProgram {
    let mut work = m.clone();
    if cfg.fold_compares {
        crate::fold::fold_redundant_compares(&mut work);
    }
    let global_addrs = Memory::layout_globals(&work);

    let mut insts: Vec<AInst> = Vec::new();
    let mut funcs: Vec<AsmFunc> = Vec::new();
    let mut call_fixups: Vec<(usize, FuncId)> = Vec::new();

    for (fi, f) in work.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        let entry = insts.len() as u32;
        let mut lower = FnLower::new(&work, fid, f, cfg, &global_addrs);
        lower.run();
        let FnLower { code, block_fix, call_fix, block_start, frame, .. } = lower;
        let base = insts.len();
        insts.extend(code);
        for (pos, bb) in block_fix {
            let target = base as u32 + block_start[bb.index()];
            match &mut insts[base + pos].kind {
                AKind::Jcc { target: t, .. } | AKind::Jmp { target: t } => *t = target,
                other => unreachable!("block fixup on {other:?}"),
            }
        }
        for (pos, callee) in call_fix {
            call_fixups.push((base + pos, callee));
        }
        funcs.push(AsmFunc {
            name: f.name.clone(),
            ir_id: fid,
            entry,
            end: insts.len() as u32,
            frame_size: frame.size,
        });
    }

    for (pos, callee) in call_fixups {
        let target = funcs[callee.index()].entry;
        match &mut insts[pos].kind {
            AKind::Call { target: t, .. } => *t = target,
            other => unreachable!("call fixup on {other:?}"),
        }
    }

    let main_entry = funcs[work.main_func().expect("module has @main").index()].entry;
    let static_sites = insts.iter().filter(|i| i.kind.is_fault_site()).count();
    AsmProgram { insts, funcs, main_entry, static_sites }
}

struct FnLower<'m> {
    m: &'m Module,
    fid: FuncId,
    f: &'m Function,
    cfg: &'m BackendConfig,
    global_addrs: &'m [u64],
    frame: FrameLayout,
    code: Vec<AInst>,
    block_fix: Vec<(usize, BlockId)>,
    call_fix: Vec<(usize, FuncId)>,
    block_start: Vec<u32>,
    cache: RegCache,
    use_counts: Vec<u32>,
    cur_prov: Option<(FuncId, InstId)>,
    cur_role: IrRole,
    /// A fused compare waiting for the terminator: (icmp id, cc).
    pending_cmp: Option<(InstId, CC)>,
}

impl<'m> FnLower<'m> {
    fn new(
        m: &'m Module,
        fid: FuncId,
        f: &'m Function,
        cfg: &'m BackendConfig,
        global_addrs: &'m [u64],
    ) -> FnLower<'m> {
        let frame = FrameLayout::compute(m, fid, f);
        let mut use_counts = vec![0u32; f.insts.len()];
        for block in &f.blocks {
            for &iid in &block.insts {
                for op in f.inst(iid).operands() {
                    if let Some(d) = op.as_inst() {
                        use_counts[d.index()] += 1;
                    }
                }
            }
            if let Some(op) = block.term.operand() {
                if let Some(d) = op.as_inst() {
                    use_counts[d.index()] += 1;
                }
            }
        }
        FnLower {
            m,
            fid,
            f,
            cfg,
            global_addrs,
            frame,
            code: Vec::new(),
            block_fix: Vec::new(),
            call_fix: Vec::new(),
            block_start: vec![0; f.blocks.len()],
            cache: RegCache::new(cfg.reg_cache),
            use_counts,
            cur_prov: None,
            cur_role: IrRole::App,
            pending_cmp: None,
        }
    }

    fn emit(&mut self, kind: AKind, role: AsmRole) -> usize {
        self.code
            .push(AInst { kind, role, prov: self.cur_prov, ir_role: self.cur_role });
        self.code.len() - 1
    }

    fn run(&mut self) {
        // Prologue.
        self.cur_prov = None;
        self.cur_role = IrRole::App;
        self.emit(AKind::Push { src: AOp::Reg(Reg::Rbp) }, AsmRole::Prologue);
        self.emit(AKind::Mov { w: 8, dst: AOp::Reg(Reg::Rbp), src: AOp::Reg(Reg::Rsp) }, AsmRole::Prologue);
        if self.frame.size > 0 {
            self.emit(
                AKind::Alu {
                    op: AluOp::Sub,
                    w: 8,
                    dst: Reg::Rsp,
                    src: AOp::Imm(self.frame.size as i64),
                },
                AsmRole::Prologue,
            );
        }
        // Parameter spills (SysV-ish: ints and floats counted separately).
        let (mut ints, mut floats) = (0usize, 0usize);
        for (i, &pty) in self.f.params.iter().enumerate() {
            let slot = MemRef::rbp(self.frame.param(i as u32));
            if pty.is_float() {
                let r = Reg::FLOAT_ARGS[floats];
                floats += 1;
                self.emit(AKind::MovSd { w: 8, dst: AOp::Mem(slot), src: AOp::Reg(r) }, AsmRole::ParamSpill);
            } else {
                let r = Reg::INT_ARGS[ints];
                ints += 1;
                self.emit(AKind::Mov { w: 8, dst: AOp::Mem(slot), src: AOp::Reg(r) }, AsmRole::ParamSpill);
            }
        }

        for (bi, block) in self.f.blocks.iter().enumerate() {
            self.block_start[bi] = self.code.len() as u32;
            self.cache.flush();
            self.pending_cmp = None;
            for (pos, &iid) in block.insts.iter().enumerate() {
                let is_last = pos + 1 == block.insts.len();
                self.lower_inst(iid, is_last, &block.term);
            }
            self.lower_terminator(&block.term);
        }
    }

    // ---- operand plumbing ------------------------------------------------

    fn slot_of(&self, v: Value) -> MemRef {
        match v {
            Value::Param(i) => MemRef::rbp(self.frame.param(i)),
            Value::Inst(id) => MemRef::rbp(self.frame.slot(id)),
        }
    }

    fn op_ty(&self, op: Op) -> Type {
        self.m.op_ty(self.fid, op).expect("operand has a type")
    }

    fn take_gpr(&mut self, avoid: &[Reg]) -> Reg {
        self.cache.take(self.cfg.gprs(), avoid)
    }

    fn take_xmm(&mut self, avoid: &[Reg]) -> Reg {
        self.cache.take(&Reg::XMM_POOL, avoid)
    }

    /// Load an integer/pointer operand into a GPR. Reloads from the stack
    /// home (or materializes a constant) on cache miss.
    fn load_gpr(&mut self, op: Op, reload_role: AsmRole, avoid: &[Reg]) -> Reg {
        match op {
            Op::Const(c) => {
                let r = self.take_gpr(avoid);
                self.emit(AKind::Mov { w: 8, dst: AOp::Reg(r), src: AOp::Imm(c.bits() as i64) }, reload_role);
                r
            }
            Op::Global(g) => {
                let r = self.take_gpr(avoid);
                let addr = self.global_addrs[g.index()];
                self.emit(AKind::Lea { dst: r, mem: MemRef::abs(addr) }, AsmRole::AddrCompute);
                r
            }
            Op::Value(v) => {
                if let Some(r) = self.cache.lookup(v) {
                    if !avoid.contains(&r) {
                        return r;
                    }
                }
                let r = self.take_gpr(avoid);
                let w = self.op_ty(op).size() as u8;
                self.emit(AKind::Mov { w, dst: AOp::Reg(r), src: AOp::Mem(self.slot_of(v)) }, reload_role);
                self.cache.bind(r, v);
                r
            }
        }
    }

    /// Load a float operand into an XMM register.
    fn load_xmm(&mut self, op: Op, reload_role: AsmRole, avoid: &[Reg]) -> Reg {
        match op {
            Op::Const(c) => {
                // Models a constant-pool load.
                let r = self.take_xmm(avoid);
                self.emit(AKind::MovSd { w: 8, dst: AOp::Reg(r), src: AOp::Imm(c.bits() as i64) }, reload_role);
                r
            }
            Op::Global(_) => unreachable!("globals are pointers, not floats"),
            Op::Value(v) => {
                if let Some(r) = self.cache.lookup(v) {
                    if !avoid.contains(&r) {
                        return r;
                    }
                }
                let r = self.take_xmm(avoid);
                let w = self.op_ty(op).size() as u8;
                self.emit(AKind::MovSd { w, dst: AOp::Reg(r), src: AOp::Mem(self.slot_of(v)) }, reload_role);
                self.cache.bind(r, v);
                r
            }
        }
    }

    /// An ALU right-hand operand: a small immediate if possible, else a
    /// register.
    fn rhs_operand(&mut self, op: Op, avoid: &[Reg]) -> (AOp, Option<Reg>) {
        if let Op::Const(c) = op {
            let bits = c.bits();
            if (bits as i64) >= i32::MIN as i64 && (bits as i64) <= i32::MAX as i64 {
                return (AOp::Imm(bits as i64), None);
            }
        }
        let r = self.load_gpr(op, AsmRole::OperandReload, avoid);
        (AOp::Reg(r), Some(r))
    }

    /// Store `dst` (holding the result of `iid`) to its home and cache it.
    fn finish_gpr(&mut self, iid: InstId, dst: Reg, role: AsmRole) {
        let w = self.m.result_ty(self.fid, iid).expect("result").size() as u8;
        let slot = MemRef::rbp(self.frame.slot(iid));
        self.emit(AKind::Mov { w, dst: AOp::Mem(slot), src: AOp::Reg(dst) }, role);
        self.cache.bind(dst, Value::Inst(iid));
    }

    fn finish_xmm(&mut self, iid: InstId, dst: Reg, role: AsmRole) {
        let w = self.m.result_ty(self.fid, iid).expect("result").size() as u8;
        let slot = MemRef::rbp(self.frame.slot(iid));
        self.emit(AKind::MovSd { w, dst: AOp::Mem(slot), src: AOp::Reg(dst) }, role);
        self.cache.bind(dst, Value::Inst(iid));
    }

    // ---- instruction lowering --------------------------------------------

    fn lower_inst(&mut self, iid: InstId, is_last: bool, term: &Terminator) {
        let inst = self.f.inst(iid).clone();
        self.cur_prov = Some((self.fid, iid));
        self.cur_role = inst.role;
        self.pending_cmp = None;

        match &inst.kind {
            InstKind::Alloca { .. } => {
                let dst = self.take_gpr(&[]);
                let disp = self.frame.alloca(iid);
                self.emit(AKind::Lea { dst, mem: MemRef::rbp(disp) }, AsmRole::AddrCompute);
                self.finish_gpr(iid, dst, AsmRole::ResultSpill);
            }
            InstKind::Load { ptr, ty } => {
                let p = self.load_gpr(*ptr, AsmRole::OperandReload, &[]);
                let mem = MemRef { base: Some(p), disp: 0 };
                if ty.is_float() {
                    let dst = self.take_xmm(&[]);
                    self.emit(
                        AKind::MovSd { w: ty.size() as u8, dst: AOp::Reg(dst), src: AOp::Mem(mem) },
                        AsmRole::Compute,
                    );
                    self.finish_xmm(iid, dst, AsmRole::ResultSpill);
                } else {
                    let dst = self.take_gpr(&[p]);
                    self.emit(
                        AKind::Mov { w: ty.size() as u8, dst: AOp::Reg(dst), src: AOp::Mem(mem) },
                        AsmRole::Compute,
                    );
                    self.finish_gpr(iid, dst, AsmRole::ResultSpill);
                }
            }
            InstKind::Store { val, ptr, ty } => {
                // The operand reload feeding this store is the paper's store
                // penetration site when `val`'s definition is in another
                // block (checker-split), because the cache was flushed.
                if ty.is_float() {
                    let v = self.load_xmm(*val, AsmRole::OperandReload, &[]);
                    let p = self.load_gpr(*ptr, AsmRole::OperandReload, &[]);
                    let mem = MemRef { base: Some(p), disp: 0 };
                    self.emit(
                        AKind::MovSd { w: ty.size() as u8, dst: AOp::Mem(mem), src: AOp::Reg(v) },
                        AsmRole::Compute,
                    );
                } else {
                    let v = self.load_gpr(*val, AsmRole::OperandReload, &[]);
                    let p = self.load_gpr(*ptr, AsmRole::OperandReload, &[v]);
                    let mem = MemRef { base: Some(p), disp: 0 };
                    self.emit(
                        AKind::Mov { w: ty.size() as u8, dst: AOp::Mem(mem), src: AOp::Reg(v) },
                        AsmRole::Compute,
                    );
                }
            }
            InstKind::Bin { op, ty, lhs, rhs } => {
                if op.is_float() {
                    self.lower_fbin(iid, *op, *ty, *lhs, *rhs);
                } else {
                    self.lower_ibin(iid, *op, *ty, *lhs, *rhs);
                }
            }
            InstKind::ICmp { pred, ty, lhs, rhs } => {
                let a = self.load_gpr(*lhs, AsmRole::OperandReload, &[]);
                let (rhs_op, _r) = self.rhs_operand(*rhs, &[a]);
                self.emit(AKind::Cmp { w: ty.size() as u8, lhs: AOp::Reg(a), rhs: rhs_op }, AsmRole::Compute);
                let cc = icmp_cc(*pred);
                if self.fusable(iid, is_last, term) {
                    self.pending_cmp = Some((iid, cc));
                    return; // do not clear pending below
                }
                let dst = self.take_gpr(&[a]);
                self.emit(AKind::SetCC { cc, dst }, AsmRole::FlagMaterialize);
                self.finish_gpr(iid, dst, AsmRole::ResultSpill);
            }
            InstKind::FCmp { pred, ty, lhs, rhs } => {
                let a = self.load_xmm(*lhs, AsmRole::OperandReload, &[]);
                let b = self.load_xmm(*rhs, AsmRole::OperandReload, &[a]);
                self.emit(AKind::Ucomi { w: ty.size() as u8, lhs: a, rhs: AOp::Reg(b) }, AsmRole::Compute);
                let cc = fcmp_cc(*pred);
                if self.fusable(iid, is_last, term) {
                    self.pending_cmp = Some((iid, cc));
                    return;
                }
                let dst = self.take_gpr(&[]);
                self.emit(AKind::SetCC { cc, dst }, AsmRole::FlagMaterialize);
                self.finish_gpr(iid, dst, AsmRole::ResultSpill);
            }
            InstKind::Cast { kind, from, to, val } => self.lower_cast(iid, *kind, *from, *to, *val),
            InstKind::Gep { base, index, elem } => {
                let b = self.load_gpr(*base, AsmRole::OperandReload, &[]);
                if let Op::Const(c) = index {
                    let disp = (c.bits() as i64).wrapping_mul(elem.size() as i64);
                    let dst = self.take_gpr(&[b]);
                    self.emit(AKind::Lea { dst, mem: MemRef { base: Some(b), disp } }, AsmRole::AddrCompute);
                    self.finish_gpr(iid, dst, AsmRole::ResultSpill);
                } else {
                    let i = self.load_gpr(*index, AsmRole::OperandReload, &[b]);
                    let dst = self.take_gpr(&[b, i]);
                    self.emit(AKind::Mov { w: 8, dst: AOp::Reg(dst), src: AOp::Reg(i) }, AsmRole::AddrCompute);
                    let size = elem.size();
                    if size > 1 {
                        if size.is_power_of_two() {
                            self.emit(
                                AKind::Shift {
                                    op: ShiftOp::Shl,
                                    w: 8,
                                    dst,
                                    amt: AOp::Imm(size.trailing_zeros() as i64),
                                },
                                AsmRole::AddrCompute,
                            );
                        } else {
                            self.emit(
                                AKind::Alu { op: AluOp::Imul, w: 8, dst, src: AOp::Imm(size as i64) },
                                AsmRole::AddrCompute,
                            );
                        }
                    }
                    self.emit(AKind::Alu { op: AluOp::Add, w: 8, dst, src: AOp::Reg(b) }, AsmRole::AddrCompute);
                    self.finish_gpr(iid, dst, AsmRole::ResultSpill);
                }
            }
            InstKind::Select { ty, cond, t, f } => {
                let c = self.load_gpr(*cond, AsmRole::OperandReload, &[]);
                if ty.is_float() {
                    // Branchless float select via GPR bits.
                    let tv = self.load_xmm(*t, AsmRole::OperandReload, &[]);
                    let fv = self.load_xmm(*f, AsmRole::OperandReload, &[tv]);
                    let tg = self.take_gpr(&[c]);
                    self.emit(AKind::MovQ { w: 8, dst: tg, src: tv }, AsmRole::Compute);
                    let fg = self.take_gpr(&[c, tg]);
                    self.emit(AKind::MovQ { w: 8, dst: fg, src: fv }, AsmRole::Compute);
                    self.emit(AKind::Test { w: 1, lhs: AOp::Reg(c), rhs: AOp::Imm(1) }, AsmRole::Compute);
                    self.emit(AKind::Cmov { cc: CC::Ne, w: 8, dst: fg, src: AOp::Reg(tg) }, AsmRole::Compute);
                    let dst = self.take_xmm(&[]);
                    self.emit(AKind::MovQ { w: 8, dst, src: fg }, AsmRole::Compute);
                    self.finish_xmm(iid, dst, AsmRole::ResultSpill);
                } else {
                    let fv = self.load_gpr(*f, AsmRole::OperandReload, &[c]);
                    let dst = self.take_gpr(&[c, fv]);
                    self.emit(AKind::Mov { w: 8, dst: AOp::Reg(dst), src: AOp::Reg(fv) }, AsmRole::Compute);
                    let (t_op, _tr) = self.rhs_operand(*t, &[c, dst]);
                    let t_op = match t_op {
                        AOp::Imm(_) => {
                            let r = self.load_gpr(*t, AsmRole::OperandReload, &[c, dst]);
                            AOp::Reg(r)
                        }
                        other => other,
                    };
                    self.emit(AKind::Test { w: 1, lhs: AOp::Reg(c), rhs: AOp::Imm(1) }, AsmRole::Compute);
                    self.emit(AKind::Cmov { cc: CC::Ne, w: 8, dst, src: t_op }, AsmRole::Compute);
                    self.finish_gpr(iid, dst, AsmRole::ResultSpill);
                }
            }
            InstKind::Call { callee, args } => match callee {
                Callee::Intrinsic(intr) => self.lower_intrinsic(iid, *intr, args),
                Callee::Func(callee_id) => self.lower_call(iid, *callee_id, args),
            },
        }
        self.pending_cmp = None;
    }

    fn lower_ibin(&mut self, iid: InstId, op: BinOp, ty: Type, lhs: Op, rhs: Op) {
        let w = ty.size() as u8;
        match op {
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => {
                let signed = matches!(op, BinOp::SDiv | BinOp::SRem);
                self.cache.invalidate_reg(Reg::Rax);
                self.cache.invalidate_reg(Reg::Rdx);
                let a = self.load_gpr(lhs, AsmRole::OperandReload, &[Reg::Rax, Reg::Rdx]);
                if signed && w < 8 {
                    self.emit(AKind::MovSx { wd: 8, ws: w, dst: Reg::Rax, src: AOp::Reg(a) }, AsmRole::Compute);
                } else {
                    self.emit(AKind::Mov { w: 8, dst: AOp::Reg(Reg::Rax), src: AOp::Reg(a) }, AsmRole::Compute);
                }
                let d = self.load_gpr(rhs, AsmRole::OperandReload, &[Reg::Rax, Reg::Rdx, a]);
                if signed && w < 8 {
                    self.emit(AKind::MovSx { wd: 8, ws: w, dst: d, src: AOp::Reg(d) }, AsmRole::Compute);
                    self.cache.invalidate_reg(d);
                }
                if signed {
                    self.emit(AKind::Cqo { w: 8 }, AsmRole::Compute);
                } else {
                    self.emit(AKind::ZeroRdx, AsmRole::Compute);
                }
                self.emit(AKind::Div { w: 8, signed, src: AOp::Reg(d) }, AsmRole::Compute);
                let res = if matches!(op, BinOp::SDiv | BinOp::UDiv) {
                    Reg::Rax
                } else {
                    Reg::Rdx
                };
                if w < 8 {
                    // Re-canonicalize at width (e.g. `mov eax, eax`).
                    self.emit(AKind::Mov { w, dst: AOp::Reg(res), src: AOp::Reg(res) }, AsmRole::Compute);
                }
                self.cache.invalidate_reg(Reg::Rax);
                self.cache.invalidate_reg(Reg::Rdx);
                self.finish_gpr(iid, res, AsmRole::ResultSpill);
            }
            BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                let sop = match op {
                    BinOp::Shl => ShiftOp::Shl,
                    BinOp::LShr => ShiftOp::Shr,
                    _ => ShiftOp::Sar,
                };
                let a = self.load_gpr(lhs, AsmRole::OperandReload, &[Reg::Rcx]);
                let dst = self.take_gpr(&[a, Reg::Rcx]);
                self.emit(AKind::Mov { w: 8, dst: AOp::Reg(dst), src: AOp::Reg(a) }, AsmRole::Compute);
                let amt = if let Op::Const(c) = rhs {
                    AOp::Imm((c.bits() & 63) as i64)
                } else {
                    self.cache.invalidate_reg(Reg::Rcx);
                    let src = if let Some(r) = self.cache.lookup_value_reg(rhs) {
                        AOp::Reg(r)
                    } else {
                        AOp::Mem(self.slot_of(match rhs {
                            Op::Value(v) => v,
                            _ => unreachable!("const handled above"),
                        }))
                    };
                    self.emit(AKind::Mov { w: 8, dst: AOp::Reg(Reg::Rcx), src }, AsmRole::OperandReload);
                    AOp::Reg(Reg::Rcx)
                };
                self.emit(AKind::Shift { op: sop, w, dst, amt }, AsmRole::Compute);
                self.finish_gpr(iid, dst, AsmRole::ResultSpill);
            }
            _ => {
                let aop = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::Mul => AluOp::Imul,
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Or,
                    BinOp::Xor => AluOp::Xor,
                    _ => unreachable!(),
                };
                let a = self.load_gpr(lhs, AsmRole::OperandReload, &[]);
                let (rhs_op, rr) = self.rhs_operand(rhs, &[a]);
                let mut avoid = vec![a];
                avoid.extend(rr);
                let dst = self.take_gpr(&avoid);
                self.emit(AKind::Mov { w: 8, dst: AOp::Reg(dst), src: AOp::Reg(a) }, AsmRole::Compute);
                self.emit(AKind::Alu { op: aop, w, dst, src: rhs_op }, AsmRole::Compute);
                self.finish_gpr(iid, dst, AsmRole::ResultSpill);
            }
        }
    }

    fn lower_fbin(&mut self, iid: InstId, op: BinOp, ty: Type, lhs: Op, rhs: Op) {
        let sse = match (op, ty) {
            (BinOp::FAdd, Type::F64) => SseOp::AddSd,
            (BinOp::FSub, Type::F64) => SseOp::SubSd,
            (BinOp::FMul, Type::F64) => SseOp::MulSd,
            (BinOp::FDiv, Type::F64) => SseOp::DivSd,
            (BinOp::FAdd, Type::F32) => SseOp::AddSs,
            (BinOp::FSub, Type::F32) => SseOp::SubSs,
            (BinOp::FMul, Type::F32) => SseOp::MulSs,
            (BinOp::FDiv, Type::F32) => SseOp::DivSs,
            other => unreachable!("float op {other:?}"),
        };
        let a = self.load_xmm(lhs, AsmRole::OperandReload, &[]);
        let b = self.load_xmm(rhs, AsmRole::OperandReload, &[a]);
        let dst = self.take_xmm(&[a, b]);
        self.emit(AKind::MovSd { w: 8, dst: AOp::Reg(dst), src: AOp::Reg(a) }, AsmRole::Compute);
        self.emit(AKind::Sse { op: sse, dst, src: AOp::Reg(b) }, AsmRole::Compute);
        self.finish_xmm(iid, dst, AsmRole::ResultSpill);
    }

    fn lower_cast(&mut self, iid: InstId, kind: CastKind, from: Type, to: Type, val: Op) {
        match kind {
            CastKind::Zext | CastKind::Trunc => {
                let a = self.load_gpr(val, AsmRole::OperandReload, &[]);
                let dst = self.take_gpr(&[a]);
                // Canonical forms make zext a plain move; trunc re-masks.
                self.emit(AKind::Mov { w: to.size() as u8, dst: AOp::Reg(dst), src: AOp::Reg(a) }, AsmRole::Compute);
                self.finish_gpr(iid, dst, AsmRole::ResultSpill);
            }
            CastKind::Sext => {
                let a = self.load_gpr(val, AsmRole::OperandReload, &[]);
                let dst = self.take_gpr(&[a]);
                self.emit(
                    AKind::MovSx {
                        wd: to.size() as u8,
                        ws: from.size() as u8,
                        dst,
                        src: AOp::Reg(a),
                    },
                    AsmRole::Compute,
                );
                self.finish_gpr(iid, dst, AsmRole::ResultSpill);
            }
            CastKind::SiToFp => {
                let a = self.load_gpr(val, AsmRole::OperandReload, &[]);
                let src = if from.size() < 8 {
                    let t = self.take_gpr(&[a]);
                    self.emit(
                        AKind::MovSx { wd: 8, ws: from.size() as u8, dst: t, src: AOp::Reg(a) },
                        AsmRole::Compute,
                    );
                    t
                } else {
                    a
                };
                let dst = self.take_xmm(&[]);
                self.emit(AKind::Cvtsi2f { wf: to.size() as u8, dst, src: AOp::Reg(src) }, AsmRole::Compute);
                self.finish_xmm(iid, dst, AsmRole::ResultSpill);
            }
            CastKind::FpToSi => {
                let a = self.load_xmm(val, AsmRole::OperandReload, &[]);
                let dst = self.take_gpr(&[]);
                self.emit(AKind::Cvtf2si { wf: from.size() as u8, dst, src: AOp::Reg(a) }, AsmRole::Compute);
                if to.size() < 8 {
                    self.emit(
                        AKind::Mov { w: to.size() as u8, dst: AOp::Reg(dst), src: AOp::Reg(dst) },
                        AsmRole::Compute,
                    );
                }
                self.finish_gpr(iid, dst, AsmRole::ResultSpill);
            }
            CastKind::FpCast => {
                let a = self.load_xmm(val, AsmRole::OperandReload, &[]);
                let dst = self.take_xmm(&[a]);
                self.emit(AKind::Cvtff { wd: to.size() as u8, dst, src: a }, AsmRole::Compute);
                self.finish_xmm(iid, dst, AsmRole::ResultSpill);
            }
            CastKind::Bitcast => match (from.is_float(), to.is_float()) {
                (true, false) => {
                    let a = self.load_xmm(val, AsmRole::OperandReload, &[]);
                    let dst = self.take_gpr(&[]);
                    self.emit(AKind::MovQ { w: to.size() as u8, dst, src: a }, AsmRole::Compute);
                    self.finish_gpr(iid, dst, AsmRole::ResultSpill);
                }
                (false, true) => {
                    let a = self.load_gpr(val, AsmRole::OperandReload, &[]);
                    let dst = self.take_xmm(&[]);
                    self.emit(AKind::MovQ { w: to.size() as u8, dst, src: a }, AsmRole::Compute);
                    self.finish_xmm(iid, dst, AsmRole::ResultSpill);
                }
                _ => {
                    let a = self.load_gpr(val, AsmRole::OperandReload, &[]);
                    let dst = self.take_gpr(&[a]);
                    self.emit(
                        AKind::Mov { w: to.size() as u8, dst: AOp::Reg(dst), src: AOp::Reg(a) },
                        AsmRole::Compute,
                    );
                    self.finish_gpr(iid, dst, AsmRole::ResultSpill);
                }
            },
        }
    }

    fn lower_intrinsic(&mut self, iid: InstId, intr: Intrinsic, args: &[Op]) {
        match intr {
            Intrinsic::OutputI64 | Intrinsic::OutputByte => {
                let a = self.load_gpr(args[0], AsmRole::OperandReload, &[]);
                let kind = if intr == Intrinsic::OutputI64 {
                    OutKind::I64
                } else {
                    OutKind::Byte
                };
                self.emit(AKind::Out { kind, src: AOp::Reg(a) }, AsmRole::Compute);
            }
            Intrinsic::OutputF64 => {
                let a = self.load_xmm(args[0], AsmRole::OperandReload, &[]);
                self.emit(AKind::Out { kind: OutKind::F64, src: AOp::Reg(a) }, AsmRole::Compute);
            }
            Intrinsic::DetectError => {
                self.emit(AKind::DetectTrap, AsmRole::Compute);
            }
            math => {
                let kind = match math {
                    Intrinsic::Sqrt => MathKind::Sqrt,
                    Intrinsic::Sin => MathKind::Sin,
                    Intrinsic::Cos => MathKind::Cos,
                    Intrinsic::Exp => MathKind::Exp,
                    Intrinsic::Log => MathKind::Log,
                    Intrinsic::Fabs => MathKind::Fabs,
                    Intrinsic::Floor => MathKind::Floor,
                    Intrinsic::Pow => MathKind::Pow,
                    other => unreachable!("{other:?}"),
                };
                let a = self.load_xmm(args[0], AsmRole::OperandReload, &[]);
                let b = if args.len() > 1 {
                    Some(self.load_xmm(args[1], AsmRole::OperandReload, &[a]))
                } else {
                    None
                };
                let mut avoid = vec![a];
                avoid.extend(b);
                let dst = self.take_xmm(&avoid);
                self.emit(AKind::Math { kind, dst, a, b }, AsmRole::Compute);
                self.finish_xmm(iid, dst, AsmRole::ResultSpill);
            }
        }
    }

    fn lower_call(&mut self, iid: InstId, callee_id: FuncId, args: &[Op]) {
        // -O0 reads every argument from its stack home straight into the
        // ABI register (paper Figure 11) — so flush the cache first.
        self.cache.flush();
        let (mut ints, mut floats) = (0usize, 0usize);
        for &arg in args {
            let ty = self.op_ty(arg);
            if ty.is_float() {
                assert!(floats < Reg::FLOAT_ARGS.len(), "too many float arguments");
                let dst = Reg::FLOAT_ARGS[floats];
                floats += 1;
                let src = match arg {
                    Op::Const(c) => AOp::Imm(c.bits() as i64),
                    Op::Value(v) => AOp::Mem(self.slot_of(v)),
                    Op::Global(_) => unreachable!(),
                };
                self.emit(AKind::MovSd { w: 8, dst: AOp::Reg(dst), src }, AsmRole::ArgMove);
            } else {
                assert!(ints < Reg::INT_ARGS.len(), "too many integer arguments");
                let dst = Reg::INT_ARGS[ints];
                ints += 1;
                let src = match arg {
                    Op::Const(c) => AOp::Imm(c.bits() as i64),
                    Op::Value(v) => AOp::Mem(self.slot_of(v)),
                    Op::Global(g) => AOp::Imm(self.global_addrs[g.index()] as i64),
                };
                self.emit(AKind::Mov { w: 8, dst: AOp::Reg(dst), src }, AsmRole::ArgMove);
            }
        }
        let pos = self.emit(AKind::Call { func: callee_id, target: 0 }, AsmRole::Compute);
        self.call_fix.push((pos, callee_id));
        self.cache.flush();
        if let Some(rty) = self.m.functions[callee_id.index()].ret_ty {
            if rty.is_float() {
                self.cache.bind(Reg::Xmm0, Value::Inst(iid));
                self.finish_xmm(iid, Reg::Xmm0, AsmRole::RetMove);
            } else {
                self.cache.bind(Reg::Rax, Value::Inst(iid));
                self.finish_gpr(iid, Reg::Rax, AsmRole::RetMove);
            }
        }
    }

    /// Is this compare fusable with the block terminator?
    fn fusable(&self, iid: InstId, is_last: bool, term: &Terminator) -> bool {
        if !self.cfg.fuse_cmp_branch || !is_last {
            return false;
        }
        if self.use_counts[iid.index()] != 1 {
            return false;
        }
        matches!(term, Terminator::Br { cond, .. } if cond.as_inst() == Some(iid))
    }

    fn lower_terminator(&mut self, term: &Terminator) {
        self.cur_prov = None;
        self.cur_role = IrRole::App;
        match term {
            Terminator::Jmp { dest } => {
                let pos = self.emit(AKind::Jmp { target: 0 }, AsmRole::Control);
                self.block_fix.push((pos, *dest));
            }
            Terminator::Br { cond, then_bb, else_bb } => {
                let cc = if let Some((iid, cc)) = self.pending_cmp.take() {
                    debug_assert_eq!(cond.as_inst(), Some(iid));
                    cc
                } else {
                    // Unfused: (re)materialize the condition and `test` it —
                    // the paper's branch penetration site (Figures 6/7),
                    // also produced for constant conditions left behind by
                    // compare folding (Figure 9).
                    let c = self.load_gpr(*cond, AsmRole::OperandReload, &[]);
                    self.emit(AKind::Test { w: 1, lhs: AOp::Reg(c), rhs: AOp::Imm(1) }, AsmRole::FlagSet);
                    CC::Ne
                };
                let jcc = self.emit(AKind::Jcc { cc, target: 0 }, AsmRole::Control);
                self.block_fix.push((jcc, *then_bb));
                let jmp = self.emit(AKind::Jmp { target: 0 }, AsmRole::Control);
                self.block_fix.push((jmp, *else_bb));
            }
            Terminator::Ret { val } => {
                if let Some(v) = val {
                    let ty = self.op_ty(*v);
                    if ty.is_float() {
                        let r = self.load_xmm(*v, AsmRole::OperandReload, &[]);
                        if r != Reg::Xmm0 {
                            self.cache.invalidate_reg(Reg::Xmm0);
                            self.emit(
                                AKind::MovSd { w: 8, dst: AOp::Reg(Reg::Xmm0), src: AOp::Reg(r) },
                                AsmRole::RetMove,
                            );
                        }
                    } else {
                        let r = self.load_gpr(*v, AsmRole::OperandReload, &[]);
                        if r != Reg::Rax {
                            self.cache.invalidate_reg(Reg::Rax);
                            self.emit(AKind::Mov { w: 8, dst: AOp::Reg(Reg::Rax), src: AOp::Reg(r) }, AsmRole::RetMove);
                        }
                    }
                }
                self.emit(AKind::Mov { w: 8, dst: AOp::Reg(Reg::Rsp), src: AOp::Reg(Reg::Rbp) }, AsmRole::Epilogue);
                self.emit(AKind::Pop { dst: Reg::Rbp }, AsmRole::Epilogue);
                self.emit(AKind::Ret, AsmRole::Epilogue);
            }
            Terminator::Unreachable => {
                // Jump to an out-of-range index: the simulator traps with
                // BadControl, matching the IR interpreter.
                self.emit(AKind::Jmp { target: u32::MAX }, AsmRole::Control);
            }
        }
    }
}

impl RegCache {
    /// Register holding operand `op`'s value, if cached (no LRU refresh —
    /// internal helper for the shift path).
    fn lookup_value_reg(&mut self, op: Op) -> Option<Reg> {
        match op {
            Op::Value(v) => self.lookup(v),
            _ => None,
        }
    }
}

fn icmp_cc(pred: IPred) -> CC {
    match pred {
        IPred::Eq => CC::E,
        IPred::Ne => CC::Ne,
        IPred::Slt => CC::L,
        IPred::Sle => CC::Le,
        IPred::Sgt => CC::G,
        IPred::Sge => CC::Ge,
        IPred::Ult => CC::B,
        IPred::Ule => CC::Be,
        IPred::Ugt => CC::A,
        IPred::Uge => CC::Ae,
    }
}

fn fcmp_cc(pred: FPred) -> CC {
    match pred {
        FPred::Oeq => CC::E,
        FPred::One => CC::Ne,
        FPred::Olt => CC::B,
        FPred::Ole => CC::Be,
        FPred::Ogt => CC::A,
        FPred::Oge => CC::Ae,
    }
}
