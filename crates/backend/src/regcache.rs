//! The intra-block register cache of the fast allocator.
//!
//! `-O0`-style code keeps every value in its stack home, but within a basic
//! block the allocator remembers which register currently holds which value
//! and reuses it instead of reloading (LLVM's `FastRegAlloc` does the
//! same). The cache is flushed at block boundaries and calls.
//!
//! This is the mechanism the paper's *eager store* patch exploits: a store
//! placed in the same block as the stored value's definition finds the
//! value still cached and needs no reload `mov` — removing the unprotected
//! store-penetration site (§6.1).

use crate::mir::Reg;
use flowery_ir::value::Value;
use std::collections::HashMap;

/// Intra-block value-to-register cache with LRU eviction.
#[derive(Debug, Default)]
pub struct RegCache {
    reg_of: HashMap<Value, Reg>,
    val_of: HashMap<Reg, Value>,
    /// Most-recently-used at the back.
    lru: Vec<Reg>,
    /// When disabled (ablation), lookups always miss and binds are ignored.
    disabled: bool,
}

impl RegCache {
    pub fn new(enabled: bool) -> RegCache {
        RegCache { disabled: !enabled, ..Default::default() }
    }

    /// Register currently caching `v`, refreshing its LRU position.
    pub fn lookup(&mut self, v: Value) -> Option<Reg> {
        if self.disabled {
            return None;
        }
        let r = *self.reg_of.get(&v)?;
        self.touch(r);
        Some(r)
    }

    fn touch(&mut self, r: Reg) {
        if let Some(pos) = self.lru.iter().position(|&x| x == r) {
            self.lru.remove(pos);
        }
        self.lru.push(r);
    }

    /// Pick a register from `pool` that is not in `avoid`: a free one if
    /// possible, otherwise the least-recently-used cached one (evicting its
    /// binding — no store needed, homes are written eagerly).
    pub fn take(&mut self, pool: &[Reg], avoid: &[Reg]) -> Reg {
        // Free register first.
        if let Some(&r) = pool.iter().find(|r| !avoid.contains(r) && !self.val_of.contains_key(r)) {
            self.touch(r);
            return r;
        }
        // Evict the LRU register of this pool.
        let victim = self
            .lru
            .iter()
            .copied()
            .find(|r| pool.contains(r) && !avoid.contains(r))
            .expect("register pool exhausted by avoid set");
        self.invalidate_reg(victim);
        self.touch(victim);
        victim
    }

    /// Record that `r` now holds `v`.
    pub fn bind(&mut self, r: Reg, v: Value) {
        if self.disabled {
            return;
        }
        self.invalidate_reg(r);
        if let Some(old) = self.reg_of.insert(v, r) {
            self.val_of.remove(&old);
        }
        self.val_of.insert(r, v);
        self.touch(r);
    }

    /// Drop any binding of `r` (it is about to be clobbered).
    pub fn invalidate_reg(&mut self, r: Reg) {
        if let Some(v) = self.val_of.remove(&r) {
            self.reg_of.remove(&v);
        }
    }

    /// Drop the binding of `v` (its home was overwritten / it went stale).
    pub fn invalidate_value(&mut self, v: Value) {
        if let Some(r) = self.reg_of.remove(&v) {
            self.val_of.remove(&r);
        }
    }

    /// Flush everything (block boundary / call).
    pub fn flush(&mut self) {
        self.reg_of.clear();
        self.val_of.clear();
        self.lru.clear();
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.reg_of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.reg_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_ir::value::InstId;

    fn v(n: u32) -> Value {
        Value::Inst(InstId(n))
    }

    #[test]
    fn hit_after_bind_miss_after_flush() {
        let mut c = RegCache::new(true);
        let r = c.take(&Reg::GPR_POOL, &[]);
        c.bind(r, v(1));
        assert_eq!(c.lookup(v(1)), Some(r));
        c.flush();
        assert_eq!(c.lookup(v(1)), None);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = RegCache::new(false);
        let r = c.take(&Reg::GPR_POOL, &[]);
        c.bind(r, v(1));
        assert_eq!(c.lookup(v(1)), None);
    }

    #[test]
    fn evicts_lru_when_pool_full() {
        let mut c = RegCache::new(true);
        let pool = [Reg::Rax, Reg::Rcx, Reg::Rdx];
        for i in 0..3 {
            let r = c.take(&pool, &[]);
            c.bind(r, v(i));
        }
        // Touch v0 so v1 becomes LRU.
        let r0 = c.lookup(v(0)).unwrap();
        let taken = c.take(&pool, &[]);
        assert_ne!(taken, r0, "most-recently-used must not be evicted");
        assert_eq!(c.lookup(v(1)), None, "LRU binding evicted");
        assert!(c.lookup(v(2)).is_some() || c.lookup(v(0)).is_some());
    }

    #[test]
    fn avoid_set_respected() {
        let mut c = RegCache::new(true);
        let pool = [Reg::Rax, Reg::Rcx];
        let r1 = c.take(&pool, &[Reg::Rax]);
        assert_eq!(r1, Reg::Rcx);
        c.bind(r1, v(1));
        let r2 = c.take(&pool, &[Reg::Rcx]);
        assert_eq!(r2, Reg::Rax);
    }

    #[test]
    fn rebinding_register_drops_old_value() {
        let mut c = RegCache::new(true);
        c.bind(Reg::Rax, v(1));
        c.bind(Reg::Rax, v(2));
        assert_eq!(c.lookup(v(1)), None);
        assert_eq!(c.lookup(v(2)), Some(Reg::Rax));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_value_and_reg() {
        let mut c = RegCache::new(true);
        c.bind(Reg::Rax, v(1));
        c.bind(Reg::Rcx, v(2));
        c.invalidate_value(v(1));
        assert_eq!(c.lookup(v(1)), None);
        c.invalidate_reg(Reg::Rcx);
        assert_eq!(c.lookup(v(2)), None);
        assert!(c.is_empty());
    }
}
